"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table/figure at a reduced scale, saves the
rendered rows/series under ``benchmarks/results/``, and asserts the
paper's qualitative claims (who wins, directionality, crossovers). See
EXPERIMENTS.md for full-scale outputs and paper-vs-measured discussion.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write an ExperimentResult's rendering to results/<name>.txt."""

    def _save(name, experiment_result):
        path = results_dir / f"{name}.txt"
        path.write_text(experiment_result.render() + "\n")
        return path

    return _save
