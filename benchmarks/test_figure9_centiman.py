"""Benchmark regenerating Figure 9: MILANA vs Centiman local validation.

Paper claims (§5.3):

* under low contention the two systems deliver similar throughput;
* under high contention Centiman's watermark check fails on hot (recently
  written) keys, forcing remote validation: its locally-validated
  fraction collapses (89 % -> 25 % in the paper) and MILANA ends up ~20 %
  ahead on throughput, while MILANA locally validates *all* read-only
  transactions.
"""

from repro.harness import run_figure9


def test_figure9_centiman_comparison(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_figure9(
            alphas=(0.4, 0.8),
            num_clients=18,
            num_keys=2000,
            duration=0.25,
            warmup=0.05,
            dissemination_every=100),
        rounds=1, iterations=1)
    save_result("figure9_centiman", result)

    by_cell = {(row[0], row[1]): row for row in result.rows}
    # rows: [system, alpha, txn/s, lv_fraction, abort_rate]

    # MILANA locally validates every read-only transaction.
    for alpha in (0.4, 0.8):
        assert by_cell[("milana", alpha)][3] == 1.0

    # Centiman's locally-validated fraction collapses with contention.
    cent_low = by_cell[("centiman", 0.4)][3]
    cent_high = by_cell[("centiman", 0.8)][3]
    assert cent_low > cent_high, (
        f"Centiman LV fraction should fall with contention: "
        f"{cent_low} -> {cent_high}")
    assert cent_high < 0.6

    # Similar throughput at low contention; MILANA ahead at high.
    milana_low = by_cell[("milana", 0.4)][2]
    cent_low_tput = by_cell[("centiman", 0.4)][2]
    assert abs(milana_low - cent_low_tput) / milana_low < 0.20

    milana_high = by_cell[("milana", 0.8)][2]
    cent_high_tput = by_cell[("centiman", 0.8)][2]
    assert milana_high > cent_high_tput
