"""Benchmark regenerating Figure 7: PTP vs NTP abort rates.

Paper claims (§5.2):

* PTP's tighter synchronization (53.2 us measured mean skew vs NTP's
  1.51 ms) yields lower abort rates for every storage backend, up to 43 %
  lower under high contention;
* under NTP the DRAM backend suffers the highest abort rates — its faster
  writes demand lower clock skew (the Figure 1 relationship).
"""

from repro.sweep import default_jobs, sweep_experiment


def test_figure7_ptp_beats_ntp(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: sweep_experiment(
            "figure7", jobs=default_jobs(),
            alphas=(0.5, 0.8),
            clock_presets=("ptp-sw", "ntp"),
            backends=("dram", "vftl", "mftl"),
            num_clients=10,
            num_keys=6000,
            duration=0.25,
            warmup=0.05),
        rounds=1, iterations=1)
    save_result("figure7_ptp_ntp", result)

    by_cell = {(row[0], row[1], row[2]): row[3] for row in result.rows}
    # rows: [clock, backend, alpha, abort_rate]

    # PTP at or below NTP for every backend and contention level.
    for backend in ("dram", "vftl", "mftl"):
        for alpha in (0.5, 0.8):
            ptp = by_cell[("ptp-sw", backend, alpha)]
            ntp = by_cell[("ntp", backend, alpha)]
            assert ptp <= ntp * 1.02, (
                f"PTP {ptp} above NTP {ntp} for {backend}@{alpha}")

    # The PTP advantage is substantial at high contention on the fastest
    # backend (paper: up to 43% lower).
    ptp_dram = by_cell[("ptp-sw", "dram", 0.8)]
    ntp_dram = by_cell[("ntp", "dram", 0.8)]
    assert ptp_dram < ntp_dram * 0.80, (
        f"expected >20% abort reduction with PTP on DRAM: "
        f"{ptp_dram} vs {ntp_dram}")

    # Under NTP, DRAM (fastest writes) is the most skew-exposed backend.
    assert by_cell[("ntp", "dram", 0.8)] >= \
        by_cell[("ntp", "mftl", 0.8)] * 0.95
