"""Benchmark regenerating Table 1: single-SSD MFTL vs VFTL performance.

Paper claims validated here (§5.1):

* MFTL delivers higher throughput at read-heavy mixes — at 100 % GET the
  paper measures 456 k vs 351 k req/s (both engines CPU-bound, MFTL's
  single map lookup and single layer crossing winning);
* MFTL's GET latency is lower across mixes with puts present (the paper
  reports up to 7x; the gap here is smaller because our emulated device
  saturates before its queues grow that deep — see EXPERIMENTS.md);
* the paper's 25 % GET row (VFTL slightly ahead via lower packing delay)
  does not reproduce under our device model and is documented as a
  deviation.
"""

from repro.harness import run_table1


def test_table1_single_ssd_ftl_performance(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_table1(num_keys=4000, duration=0.06, warmup=0.02,
                           num_workers=96),
        rounds=1, iterations=1)
    save_result("table1_ftl", result)

    cells = {row[0]: row for row in result.rows}
    # row: [get%, vftl_kreq, mftl_kreq, vftl_get, mftl_get, vftl_put,
    #       mftl_put]

    # 100% GET: CPU-bound regime calibrated to the paper's absolute
    # numbers (456k vs 351k req/s) within 10%.
    get100 = cells[100]
    assert get100[2] > get100[1], "MFTL must win at 100% GET"
    assert abs(get100[1] - 351.0) / 351.0 < 0.10
    assert abs(get100[2] - 456.0) / 456.0 < 0.10

    # MFTL throughput >= VFTL at every mix with >= 50% GETs.
    for get_percent in (75, 50):
        row = cells[get_percent]
        assert row[2] >= row[1] * 0.98, (
            f"MFTL should not lose at {get_percent}% GET: "
            f"{row[2]} vs {row[1]}")

    # MFTL GET latency strictly lower whenever puts are present.
    for get_percent in (75, 50, 25):
        row = cells[get_percent]
        assert row[4] < row[3], (
            f"MFTL GET latency should beat VFTL at {get_percent}% GET")
