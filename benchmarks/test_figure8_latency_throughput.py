"""Benchmark regenerating Figure 8: latency vs throughput with local
validation on/off.

Paper claims (§5.2): client-local validation of read-only transactions
saves two round trips, yielding up to 55 % higher throughput and 35 %
lower latency on the 75 %-read-only Retwis mix; MFTL modestly outperforms
VFTL; VFTL *with* local validation beats MFTL *without* it.
"""

from repro.sweep import default_jobs, sweep_experiment


def test_figure8_local_validation_gains(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: sweep_experiment(
            "figure8", jobs=default_jobs(),
            client_counts=(8, 24),
            backends=("dram", "vftl", "mftl"),
            local_validation=(True, False),
            alpha=0.6,
            num_keys=2000,
            duration=0.2,
            warmup=0.05),
        rounds=1, iterations=1)
    save_result("figure8_latency_throughput", result)

    by_cell = {(row[0], row[1], row[2]): (row[3], row[4])
               for row in result.rows}
    # rows: [backend, mode, clients, txn/s, latency_ms]

    for backend in ("dram", "vftl", "mftl"):
        for clients in (8, 24):
            lv_tput, lv_lat = by_cell[(backend, "LV", clients)]
            no_tput, no_lat = by_cell[(backend, "noLV", clients)]
            assert lv_tput > no_tput, (
                f"LV should raise throughput for {backend}@{clients}: "
                f"{lv_tput} vs {no_tput}")
            assert lv_lat < no_lat, (
                f"LV should cut latency for {backend}@{clients}: "
                f"{lv_lat} vs {no_lat}")

    # The gains are material at load (paper: +55% tput / -35% latency).
    lv_tput, lv_lat = by_cell[("mftl", "LV", 24)]
    no_tput, no_lat = by_cell[("mftl", "noLV", 24)]
    assert lv_tput > no_tput * 1.15
    assert lv_lat < no_lat * 0.90

    # VFTL with local validation beats MFTL without it (paper's point
    # about the importance of local validation).
    vftl_lv, _ = by_cell[("vftl", "LV", 24)]
    mftl_no, _ = by_cell[("mftl", "noLV", 24)]
    assert vftl_lv > mftl_no
