"""Benchmark regenerating Figure 6: abort rate vs clients, single- vs
multi-version FTL.

Paper claim (§5.2): with increased key contention, a multi-version FTL
reduces abort rates because tardy read-only transactions read from a
consistent snapshot and commit, where a single-version FTL forces them to
abort.
"""

from repro.sweep import default_jobs, sweep_experiment


def test_figure6_multiversion_cuts_aborts(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: sweep_experiment(
            "figure6", jobs=default_jobs(),
            client_counts=(2, 8, 16),
            alphas=(0.5, 0.95),
            num_keys=300,
            duration=0.2,
            warmup=0.05),
        rounds=1, iterations=1)
    save_result("figure6_multiversion", result)

    by_cell = {(row[0], row[1], row[2]): row[3] for row in result.rows}
    # rows: [backend, alpha, clients, abort_rate]

    # Multi-version below single-version at every (alpha, clients) point.
    for alpha in (0.5, 0.95):
        for clients in (2, 8, 16):
            sftl = by_cell[("sftl", alpha, clients)]
            mftl = by_cell[("mftl", alpha, clients)]
            assert mftl < sftl, (
                f"mftl {mftl} !< sftl {sftl} at alpha={alpha}, "
                f"clients={clients}")

    # Abort rate rises with client count (contention) on both backends.
    for backend in ("sftl", "mftl"):
        rates = [by_cell[(backend, 0.95, c)] for c in (2, 8, 16)]
        assert rates[-1] > rates[0], \
            f"{backend} abort rate flat across client counts: {rates}"

    # And rises with the contention parameter alpha.
    for backend in ("sftl", "mftl"):
        assert by_cell[(backend, 0.95, 16)] > by_cell[(backend, 0.5, 16)]
