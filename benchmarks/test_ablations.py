"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's published evaluation — these quantify knobs the
text discusses qualitatively (packing delay, replication factor,
watermark dissemination, GC retention window).
"""

from repro.harness import (
    run_gc_window_ablation,
    run_packing_delay_ablation,
    run_replication_factor_ablation,
    run_watermark_interval_ablation,
)


def test_packing_delay_ablation(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_packing_delay_ablation(
            delays=(0.0, 0.5e-3, 1e-3), num_keys=2000,
            duration=0.05, warmup=0.015, num_workers=48),
        rounds=1, iterations=1)
    save_result("ablation_packing_delay", result)
    by_delay = {row[0]: row for row in result.rows}
    # rows: [delay_ms, kreq/s, put_us, records_per_page, page_writes]
    # Zero delay packs ~1 record per page; with a deadline, pages fill.
    assert by_delay[0.0][3] < by_delay[1.0][3]
    # Write amplification: zero delay issues far more page writes.
    assert by_delay[0.0][4] > by_delay[1.0][4]


def test_replication_factor_ablation(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_replication_factor_ablation(
            replica_counts=(1, 3), num_clients=6, num_keys=800,
            duration=0.15, warmup=0.04),
        rounds=1, iterations=1)
    save_result("ablation_replication_factor", result)
    by_replicas = {row[0]: row for row in result.rows}
    # rows: [replicas, f, txn/s, latency_ms, abort_rate]
    # Replication costs latency (the backup round trip on prepares).
    assert by_replicas[3][3] > by_replicas[1][3]
    # But the shard keeps committing at a healthy rate.
    assert by_replicas[3][2] > 0.4 * by_replicas[1][2]


def test_watermark_interval_ablation(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_watermark_interval_ablation(
            intervals=(0.01, 0.2), num_clients=6, num_keys=400,
            duration=0.25, warmup=0.05),
        rounds=1, iterations=1)
    save_result("ablation_watermark_interval", result)
    by_interval = {row[0]: row for row in result.rows}
    # rows: [interval_ms, txn/s, mean_versions, max_versions]
    # Slower dissemination retains more versions...
    assert by_interval[200.0][2] >= by_interval[10.0][2]
    # ...while throughput stays in the same ballpark (off critical path).
    assert by_interval[200.0][1] > 0.8 * by_interval[10.0][1]


def test_gc_window_ablation(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_gc_window_ablation(
            windows=(0.002, 0.02), num_keys=2000,
            duration=0.06, warmup=0.02, num_workers=48),
        rounds=1, iterations=1)
    save_result("ablation_gc_window", result)
    by_window = {row[0]: row for row in result.rows}
    # rows: [window_ms, kreq/s, remapped, discarded]
    # A longer retention window forces GC to move more live records.
    assert by_window[20.0][2] >= by_window[2.0][2]


def test_client_caching_ablation(benchmark, save_result):
    from repro.harness import run_client_caching_ablation

    result = benchmark.pedantic(
        lambda: run_client_caching_ablation(
            num_clients=4, txns_per_client=80),
        rounds=1, iterations=1)
    save_result("ablation_client_caching", result)
    by_cell = {(row[0], row[1]): row for row in result.rows}
    # rows: [alpha, mode, txn/s, abort_rate, hit_rate]
    # Caching pays mandatory remote validation; under contention its
    # abort rate exceeds local validation's.
    assert by_cell[(0.8, "caching")][3] > \
        by_cell[(0.8, "local-validation")][3]
    # The cache does get hits (it is functioning).
    assert by_cell[(0.8, "caching")][4] > 0.05
