"""Benchmark regenerating Figure 1: impact of clock skew.

Paper claim (§2.1): a client with a lagging clock must wait for its clock
to pass a leading writer's timestamp before it can update a shared
object; if the skew epsilon greatly exceeds the device write latency t_w,
spurious rejections appear — and faster devices suffer at smaller skews.
"""

from repro.sweep import default_jobs, sweep_experiment


def test_figure1_clock_skew_impact(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: sweep_experiment(
            "figure1", jobs=default_jobs(),
            write_latencies=(0.2e-6, 100e-6),
            skews=(0.0, 1e-6, 10e-6, 100e-6, 1e-3),
            rounds=120),
        rounds=1, iterations=1)
    save_result("figure1_skew", result)

    by_cell = {(round(row[0], 3), round(row[1], 3)): row[2]
               for row in result.rows}
    # rows: [t_w_us, eps_us, reject_rate]

    # No spurious rejections when skew is far below the request cost.
    assert by_cell[(0.2, 0.0)] == 0.0
    assert by_cell[(100.0, 0.0)] == 0.0
    assert by_cell[(100.0, 1.0)] == 0.0, \
        "eps=1us << t_w=100us must be rejection-free"

    # Millisecond skew (NTP-class) forces heavy rejection for both
    # device classes.
    assert by_cell[(0.2, 1000.0)] > 0.5
    assert by_cell[(100.0, 1000.0)] > 0.5

    # Rejection rate is monotone non-decreasing in skew for each device.
    for t_w in (0.2, 100.0):
        rates = [by_cell[(t_w, eps)]
                 for eps in (0.0, 1.0, 10.0, 100.0, 1000.0)]
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:])), \
            f"rates not monotone for t_w={t_w}: {rates}"
