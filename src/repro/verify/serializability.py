"""Multi-version serializability checking.

Builds the multi-version serialization graph (MVSG) over committed
transactions and reports any cycle:

* **WR** edges: the writer of the version a transaction read precedes it;
* **WW** edges: writers of the same key, in version order;
* **RW** anti-dependencies: a reader precedes the writer of the next
  version after the one it observed.

Acyclicity of the MVSG is sufficient for (multi-version view)
serializability; crucially it *admits* histories where a slower-clocked
writer commits "into the past" without conflicting — which MVCC permits
and strict commit-timestamp replay would falsely reject.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TxnEntry", "check_serializability"]


@dataclass(frozen=True)
class TxnEntry:
    """One committed transaction, as the checker sees it."""

    txn_id: str
    #: key -> observed version (orderable, e.g. a Version tuple) or None
    #: for a key that was absent at the snapshot.
    reads: Dict[str, Any] = field(default_factory=dict)
    #: key -> written version.
    writes: Dict[str, Any] = field(default_factory=dict)
    ts: float = 0.0


def check_serializability(
        history: List[TxnEntry]) -> Tuple[bool, Optional[tuple]]:
    """Return ``(True, None)`` for a serializable history, else
    ``(False, witness)`` where the witness names an edge on a cycle."""
    writer_of: Dict[tuple, str] = {}
    versions_by_key: Dict[str, list] = {}
    for entry in history:
        for key, version in entry.writes.items():
            writer_of[(key, version)] = entry.txn_id
            versions_by_key.setdefault(key, []).append(version)
    for versions in versions_by_key.values():
        versions.sort()

    edges: Dict[str, set] = {entry.txn_id: set() for entry in history}

    def add_edge(src: str, dst: str) -> None:
        if src != dst:
            edges[src].add(dst)

    for key, versions in versions_by_key.items():
        for older, newer in zip(versions, versions[1:]):
            add_edge(writer_of[(key, older)], writer_of[(key, newer)])

    for entry in history:
        for key, observed in entry.reads.items():
            versions = versions_by_key.get(key, [])
            if (key, observed) in writer_of:
                add_edge(writer_of[(key, observed)], entry.txn_id)
                index = bisect.bisect_right(versions, observed)
            else:
                index = 0  # read initial state (or a pre-history write)
            if index < len(versions):
                add_edge(entry.txn_id, writer_of[(key, versions[index])])

    # Iterative three-colour DFS cycle detection.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in edges}
    for root in edges:
        if colour[root] != WHITE:
            continue
        stack = [(root, iter(edges[root]))]
        colour[root] = GREY
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for nxt in iterator:
                if colour[nxt] == GREY:
                    return False, ("cycle", node, nxt)
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(edges[nxt])))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return True, None
