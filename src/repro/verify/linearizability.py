"""Register linearizability checking (Wing & Gong).

SEMEL's §3.3 claim: current-time single-key RPCs are linearizable —
writes take effect in timestamp order consistent with real time, and a
read returns the value of the latest write linearized before it. The
checker takes a timed history of operations per key (invocation and
response instants from the client's point of view) and searches for a
legal linearization: a total order that respects real-time precedence
(op A precedes op B if A.end < B.start) and register semantics (every
read returns the most recently written value, or the initial value).

The search is the classic Wing & Gong backtracking over *minimal*
operations (those with no uncompleted predecessor), with a visited-state
cache. Exponential in the worst case, fine for the hundreds-of-ops
histories tests produce. Failed writes (rejected as stale, §3.3) must be
excluded by the caller — at-most-once means they never took effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

__all__ = ["Op", "check_linearizability"]


@dataclass(frozen=True)
class Op:
    """One completed operation on one register (key)."""

    kind: str          # "read" or "write"
    value: Any         # value written, or value returned by the read
    start: float       # invocation time
    end: float         # response time

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"kind must be read/write, got {self.kind}")
        if self.end < self.start:
            raise ValueError(
                f"response before invocation: {self.end} < {self.start}")


def check_linearizability(ops: List[Op],
                          initial: Any = None) -> bool:
    """True iff ``ops`` (one register's history) is linearizable.

    ``initial`` is the register's starting value; reads returning it are
    legal before any write linearizes (SEMEL returns None for a missing
    key, so the default fits). Values must be hashable.
    """
    n = len(ops)
    if n == 0:
        return True
    if n > 20:
        # The bitmask search below is exponential; histories this long
        # should be split by the caller (e.g. per key, per time window).
        raise ValueError(
            f"history too long for exact checking ({n} ops > 20); "
            "partition it per key or window")

    # precedes[i] = bitmask of ops that must linearize before op i.
    precedes = [0] * n
    for i in range(n):
        for j in range(n):
            if i != j and ops[j].end < ops[i].start:
                precedes[i] |= 1 << j

    full = (1 << n) - 1
    seen = set()

    def search(done_mask: int, current: Any) -> bool:
        if done_mask == full:
            return True
        state = (done_mask, current)
        if state in seen:
            return False
        seen.add(state)
        for i in range(n):
            bit = 1 << i
            if done_mask & bit:
                continue
            if (precedes[i] & done_mask) != precedes[i]:
                continue  # a required predecessor hasn't linearized yet
            op = ops[i]
            if op.kind == "write":
                if search(done_mask | bit, op.value):
                    return True
            else:
                if op.value == current and \
                        search(done_mask | bit, current):
                    return True
        return False

    return search(0, initial)
