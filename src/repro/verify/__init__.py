"""Offline correctness checkers.

Consistency claims deserve machine checking, not eyeballing. This
package provides the two checkers the test suite (and any downstream
experiment) uses to validate executions:

* :mod:`repro.verify.serializability` — multi-version serialization-graph
  test over committed transactions (the guarantee MILANA promises);
* :mod:`repro.verify.linearizability` — Wing & Gong register
  linearizability over timed single-key histories (the guarantee SEMEL's
  §3.3 RPCs promise for current-time operations).
"""

from .linearizability import Op, check_linearizability
from .serializability import TxnEntry, check_serializability

__all__ = [
    "TxnEntry",
    "check_serializability",
    "Op",
    "check_linearizability",
]
