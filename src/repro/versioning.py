"""Version identifiers shared by every layer.

SEMEL versions each value with ``V = (timestamp, clientID)`` (§3): the
timestamp comes from the writing client's synchronized clock and the client
id breaks ties, inducing a total order over simultaneous writes. Plain
tuple comparison on the NamedTuple gives exactly that order.

Timestamps are floats in seconds of (the client's view of) wall-clock time.
The paper uses 64-bit integer timestamps at ~100 ns resolution; float
seconds carry the same information at the scales simulated here and keep
arithmetic with latency constants direct.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Version", "MIN_VERSION"]


class Version(NamedTuple):
    """A globally ordered version identifier ``(timestamp, client_id)``."""

    timestamp: float
    client_id: int

    def __str__(self) -> str:
        return f"{self.timestamp:.9f}@c{self.client_id}"


#: Smaller than any version a real client can produce.
MIN_VERSION = Version(float("-inf"), -1)
