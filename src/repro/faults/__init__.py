"""The nemesis toolkit, under one roof.

Fault injection spans three layers — the network (:mod:`repro.net`:
partitions, loss, latency spikes, crashes), the clocks
(:mod:`repro.clocks`: steps, drift, skew spikes) and the harness
(:mod:`repro.harness`: deterministic plans, named scenarios, post-heal
audits). This package re-exports the whole surface so experiment code
can write ``from repro.faults import ...`` without knowing which layer
owns each piece.
"""

from ..clocks.anomalies import FaultyClock
from ..harness.audit import (
    AuditReport,
    collect_history,
    run_audit,
    sync_replicas,
)
from ..harness.chaos import (
    ChaosMonkey,
    FailurePlan,
    NemesisPlan,
    clock_storm,
    isolate_master,
    largest_connected_majority,
    loss_storm,
    majority_minority_split,
    partition_primary_from_backups,
)
from ..harness.nemesis import (
    SCENARIOS,
    NemesisRunResult,
    nemesis_config,
    run_nemesis,
)
from ..net.faults import FaultStats, LinkFaults

__all__ = [
    "FaultStats",
    "LinkFaults",
    "FaultyClock",
    "FailurePlan",
    "NemesisPlan",
    "ChaosMonkey",
    "largest_connected_majority",
    "partition_primary_from_backups",
    "isolate_master",
    "majority_minority_split",
    "clock_storm",
    "loss_storm",
    "AuditReport",
    "collect_history",
    "sync_replicas",
    "run_audit",
    "SCENARIOS",
    "NemesisRunResult",
    "nemesis_config",
    "run_nemesis",
]
