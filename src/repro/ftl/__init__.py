"""Storage engines (FTLs and DRAM) behind the SEMEL server API.

Four engines, matching the paper's evaluation backends:

* :class:`MFTLBackend` — the unified multi-version FTL (Contribution 3);
* :class:`VFTLBackend` — the split baseline: multi-version KV layer over a
  generic FTL;
* :class:`MFTLBackend` with ``multi_version=False`` — the single-version
  "SFTL" mode of Figure 6 (see ``repro.baselines.single_version``);
* :class:`DRAMBackend` — byte-addressable persistent memory.
"""

from .base import (
    BackendStats,
    BlockPins,
    CapacityError,
    Cpu,
    GetResult,
    KVBackend,
    retained_versions,
)
from .dram import DRAMBackend
from .gc import BlockAllocator
from .mapcache import MappingCache
from .mftl import DEFAULT_MFTL_OP_CPU, MFTLBackend
from .packing import DEFAULT_PACKING_DELAY, PagePacker
from .sftl import DEFAULT_FTL_OP_CPU, GenericFTL
from .vftl import DEFAULT_KV_OP_CPU, VFTLBackend
from .wear import DEFAULT_WEAR_THRESHOLD, StaticWearLeveler

__all__ = [
    "KVBackend",
    "GetResult",
    "BackendStats",
    "BlockPins",
    "CapacityError",
    "Cpu",
    "retained_versions",
    "BlockAllocator",
    "PagePacker",
    "DEFAULT_PACKING_DELAY",
    "GenericFTL",
    "DEFAULT_FTL_OP_CPU",
    "MFTLBackend",
    "MappingCache",
    "DEFAULT_MFTL_OP_CPU",
    "VFTLBackend",
    "DEFAULT_KV_OP_CPU",
    "DRAMBackend",
    "StaticWearLeveler",
    "DEFAULT_WEAR_THRESHOLD",
]
