"""Static wear leveling (§2.2: "the FTL distributes writes uniformly
across physical locations, so the flash cells wear at the same rate").

Dynamic wear leveling (least-worn free-block selection plus wear-aware
victim tie-breaking — built into the allocator and GC) equalizes wear
among blocks that *circulate*. Blocks pinned down by cold, long-lived
data never circulate and stay at low wear while the rest of the device
burns. The static wear leveler watches the spread and, when
``max_wear − min_wear`` exceeds a threshold, force-collects the
least-worn eligible block: its cold data moves into the hot rotation and
the young block joins the free pool.

Works against both :class:`~repro.ftl.sftl.GenericFTL` and
:class:`~repro.ftl.mftl.MFTLBackend`, which share the GC surface it
needs (``_collect_guarded``, ``_collecting``, allocator, device).
"""

from __future__ import annotations

from typing import Optional

from ..sim.process import Process

__all__ = ["StaticWearLeveler", "DEFAULT_WEAR_THRESHOLD"]

DEFAULT_WEAR_THRESHOLD = 8


class StaticWearLeveler:
    """Periodic cold-block rotation for an FTL."""

    def __init__(self, ftl, threshold: int = DEFAULT_WEAR_THRESHOLD,
                 interval: float = 50e-3) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.ftl = ftl
        self.threshold = threshold
        self.interval = interval
        self.migrations = 0
        self._daemon: Optional[Process] = None

    def start(self) -> Process:
        if self._daemon is None:
            self._daemon = self.ftl.sim.process(self._loop())
        return self._daemon

    # -- block selection ------------------------------------------------------

    def _eligible(self, block: int) -> bool:
        ftl = self.ftl
        if ftl._allocator.is_free(block):
            return False
        if block == ftl._allocator.active_block:
            return False
        if block in ftl._collecting:
            return False
        bad = getattr(ftl, "bad_blocks", set())
        if block in bad:
            return False
        return ftl.device.chip.programmed_pages(block) > 0

    def _imbalance_victim(self) -> Optional[int]:
        chip = self.ftl.device.chip
        num_blocks = self.ftl.device.geometry.num_blocks
        bad = getattr(self.ftl, "bad_blocks", set())
        wears = [chip.erase_count(block) for block in range(num_blocks)
                 if block not in bad]
        if not wears or max(wears) - min(wears) <= self.threshold:
            return None
        eligible = [block for block in range(num_blocks)
                    if self._eligible(block)]
        if not eligible:
            return None
        return min(eligible, key=chip.erase_count)

    # -- the loop ----------------------------------------------------------------

    def _loop(self):
        ftl = self.ftl
        while True:
            yield ftl.sim.timeout(self.interval)
            victim = self._imbalance_victim()
            if victim is None:
                continue
            ftl._collecting.add(victim)
            self.migrations += 1
            yield from ftl._collect_guarded(victim)
