"""DRAM (battery-backed / NVM-class) multi-version backend.

The paper's fastest backend: byte-addressable persistent memory with
DRAM-like latencies (≤ 100 ns writes). Its very low write latency is what
makes it the *most* sensitive to clock skew in Figure 7 — the spurious
abort window is ``max(0, ε − t_w)``, and with t_w ≈ 200 ns essentially all
of NTP's millisecond skew turns into abort exposure.

Versions live in an in-memory map keyed by key, sorted youngest-first.
Watermark GC trims the list eagerly on every put.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional

from ..sim.core import Simulator
from ..sim.process import Process
from ..versioning import Version
from .base import Cpu, KVBackend, retained_versions

__all__ = ["DRAMBackend"]

#: NVM-class access latencies (§1: "byte-addressable persistent memory can
#: achieve DRAM latencies (<= 100ns)").
DEFAULT_READ_LATENCY = 0.1e-6
DEFAULT_WRITE_LATENCY = 0.2e-6
#: Request-path CPU per op (shared API/dispatch cost, same as MFTL's).
DEFAULT_OP_CPU = 2.2e-6


class DRAMBackend(KVBackend):
    """Multi-version store in byte-addressable persistent memory."""

    def __init__(
        self,
        sim: Simulator,
        read_latency: float = DEFAULT_READ_LATENCY,
        write_latency: float = DEFAULT_WRITE_LATENCY,
        op_cpu: float = DEFAULT_OP_CPU,
    ) -> None:
        super().__init__(sim)
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.op_cpu = op_cpu
        self.cpu = Cpu(sim)
        # key -> parallel lists (versions asc, values asc by version) for
        # O(log n) snapshot lookups via bisect.
        self._versions: Dict[str, List[Version]] = {}
        self._values: Dict[str, List[Any]] = {}

    # -- operations ---------------------------------------------------------

    def put(self, key: str, value: Any, version: Version,
            visible=None) -> Process:
        return self.sim.process(self._put(key, value, version, visible))

    def _put(self, key: str, value: Any, version: Version, visible):
        start = self.sim.now
        yield from self.cpu.charge(self.op_cpu)
        yield self.sim.timeout(self.write_latency)
        versions = self._versions.setdefault(key, [])
        values = self._values.setdefault(key, [])
        index = bisect.bisect(versions, version)
        versions.insert(index, version)
        values.insert(index, value)
        if visible is not None:
            visible.succeed()
        self._trim(key)
        self.stats.observe_put(self.sim.now - start)

    def get(self, key: str, max_timestamp: Optional[float] = None) -> Process:
        return self.sim.process(self._get(key, max_timestamp))

    def _get(self, key: str, max_timestamp: Optional[float]):
        start = self.sim.now
        yield from self.cpu.charge(self.op_cpu)
        yield self.sim.timeout(self.read_latency)
        result = self._lookup(key, max_timestamp)
        self.stats.observe_get(self.sim.now - start)
        return result

    def delete(self, key: str) -> Process:
        return self.sim.process(self._delete(key))

    def _delete(self, key: str):
        yield from self.cpu.charge(self.op_cpu)
        yield self.sim.timeout(self.write_latency)
        self._versions.pop(key, None)
        self._values.pop(key, None)
        self.stats.deletes += 1

    # -- internals -------------------------------------------------------------

    def _lookup(self, key: str, max_timestamp: Optional[float]):
        versions = self._versions.get(key)
        if not versions:
            return None
        if max_timestamp is None:
            index = len(versions) - 1
        else:
            # Youngest version with timestamp <= max_timestamp: bisect on a
            # probe greater than any real version at that timestamp.
            probe = Version(max_timestamp, float("inf"))
            index = bisect.bisect(versions, probe) - 1
            if index < 0:
                return None
        return versions[index], self._values[key][index]

    def _trim(self, key: str) -> None:
        """Discard versions dead under the current watermark."""
        versions = self._versions[key]
        kept_desc = retained_versions(list(reversed(versions)), self.watermark)
        dropped = len(versions) - len(kept_desc)
        if dropped > 0:
            self._versions[key] = versions[dropped:]
            self._values[key] = self._values[key][dropped:]
            self.stats.records_discarded += dropped

    # -- introspection -----------------------------------------------------------

    def versions_of(self, key: str) -> List[Version]:
        return list(reversed(self._versions.get(key, [])))

    def contains(self, key: str) -> bool:
        return bool(self._versions.get(key))

    def keys(self) -> List[str]:
        return [key for key, versions in self._versions.items() if versions]

    def bulk_load(self, items) -> None:
        for key, value, version in items:
            versions = self._versions.setdefault(key, [])
            values = self._values.setdefault(key, [])
            index = bisect.bisect(versions, version)
            versions.insert(index, version)
            values.insert(index, value)
