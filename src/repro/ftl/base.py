"""Backend interface shared by the four storage engines.

A *backend* is the per-server storage engine SEMEL runs on. The paper
evaluates four: DRAM, SFTL (single-version generic FTL), VFTL (a
multi-version KV layer stacked on a generic FTL), and MFTL (the unified
multi-version FTL — the paper's Contribution 3). All expose the same
versioned API so SEMEL/MILANA code is backend-agnostic:

* ``put(key, value, version)`` — add a version (multi-version engines keep
  older ones; SFTL overwrites).
* ``get(key, max_timestamp)`` — youngest version with
  ``timestamp <= max_timestamp`` (``None`` means newest).
* ``delete(key)`` — drop all versions.
* ``set_watermark(ts)`` — lower bound on live snapshot timestamps; GC may
  discard every version older than the youngest one at or below it (§3.1).

Operations return simulation processes; their value is the op result.

Backends also model the **request-path CPU**: the paper's emulator is
CPU-bound at 100 % GET (one kernel boundary crossing per I/O), and the
MFTL-vs-VFTL gap at high GET rates comes from VFTL paying two map lookups
and two layer crossings per request. :class:`Cpu` serializes per-op
overhead through a single core.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..histogram import LatencyHistogram
from ..sim.core import Simulator
from ..sim.process import Process
from ..sim.resources import Resource
from ..versioning import Version

__all__ = [
    "Cpu",
    "BackendStats",
    "KVBackend",
    "GetResult",
    "retained_versions",
    "BlockPins",
    "CapacityError",
]


class CapacityError(Exception):
    """The device has no reclaimable space left for the requested write."""

#: Result of a get: (version, value) or None when no version qualifies.
GetResult = Optional[Tuple[Version, Any]]


class Cpu:
    """A single request-processing core charging fixed per-op costs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._core = Resource(sim, capacity=1)
        self.busy_time = 0.0

    def charge(self, seconds: float):
        """Generator: occupy the core for ``seconds``; yield from a process."""
        yield self._core.acquire()
        try:
            yield self.sim.timeout(seconds)
            self.busy_time += seconds
        finally:
            self._core.release()


@dataclass
class BackendStats:
    """Counters every backend maintains; used by Table 1 and invariants."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    #: Host-visible records accepted (puts); the write-amplification
    #: denominator.
    host_records_written: int = 0
    #: Records rewritten by garbage collection (remap traffic).
    records_remapped: int = 0
    #: Records dropped by garbage collection as dead versions.
    records_discarded: int = 0
    gc_runs: int = 0
    get_latency_total: float = 0.0
    put_latency_total: float = 0.0
    #: Full latency distributions (p50/p95/p99 via .summary()).
    get_histogram: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    put_histogram: LatencyHistogram = field(
        default_factory=LatencyHistogram)

    def observe_get(self, latency: float) -> None:
        self.gets += 1
        self.get_latency_total += latency
        self.get_histogram.record(latency)

    def observe_put(self, latency: float) -> None:
        self.puts += 1
        self.host_records_written += 1
        self.put_latency_total += latency
        self.put_histogram.record(latency)

    @property
    def mean_get_latency(self) -> float:
        return self.get_latency_total / self.gets if self.gets else 0.0

    @property
    def mean_put_latency(self) -> float:
        return self.put_latency_total / self.puts if self.puts else 0.0


class KVBackend(abc.ABC):
    """Abstract versioned key-value storage engine."""

    #: Size of one (key, value, version) record on media; the paper fixes
    #: 512 B so eight records pack into a 4 KB flash page.
    record_size: int = 512

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.stats = BackendStats()
        self.watermark = float("-inf")

    # -- async operations -------------------------------------------------

    @abc.abstractmethod
    def put(self, key: str, value: Any, version: Version,
            visible=None) -> Process:
        """Store a new version; fires when the write is durable.

        ``visible``, if given, is an Event succeeded as soon as the
        version is *readable* (inserted into the in-memory mapping /
        write buffer) — for flash engines that is well before the page
        program completes. MILANA clears prepared marks at visibility,
        not durability (§3.2: record durability is already guaranteed by
        replicated prepare records)."""

    @abc.abstractmethod
    def get(self, key: str,
            max_timestamp: Optional[float] = None) -> Process:
        """Youngest version with timestamp <= ``max_timestamp``.

        Fires with ``(version, value)`` or ``None``.
        """

    @abc.abstractmethod
    def delete(self, key: str) -> Process:
        """Drop all versions of ``key``."""

    # -- synchronous control/introspection ---------------------------------

    def set_watermark(self, timestamp: float) -> None:
        """Raise the GC lower bound; never moves backwards."""
        self.watermark = max(self.watermark, timestamp)

    @abc.abstractmethod
    def versions_of(self, key: str) -> List[Version]:
        """All retained versions of ``key``, youngest first (diagnostic)."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether any version of ``key`` is retained."""

    @abc.abstractmethod
    def keys(self) -> List[str]:
        """All keys with at least one retained version (recovery scans)."""

    def get_history(self, key: str, from_timestamp: float,
                    to_timestamp: float) -> Process:
        """All retained versions of ``key`` in [from, to], oldest first.

        Fires with a list of ``(version, value)`` pairs. Availability is
        bounded by the GC watermark (§3.1): versions older than the
        retention rule allows are gone. Each version costs one read
        through the engine's normal path.
        """
        return self.sim.process(
            self._get_history(key, from_timestamp, to_timestamp))

    def _get_history(self, key: str, from_timestamp: float,
                     to_timestamp: float):
        if from_timestamp > to_timestamp:
            raise ValueError(
                f"empty range: {from_timestamp} > {to_timestamp}")
        versions = [
            version for version in reversed(self.versions_of(key))
            if from_timestamp <= version.timestamp <= to_timestamp
        ]
        history = []
        for version in versions:
            result = yield self.get(key, max_timestamp=version.timestamp)
            if result is not None and result[0] == version:
                history.append(result)
        return history

    @abc.abstractmethod
    def bulk_load(self, items) -> None:
        """Synchronously pre-populate the store with (key, value, version)
        triples, bypassing simulated timing.

        Experiment setup only — the paper pre-populates 2–6 M keys before
        measuring; replaying that through the timed write path would burn
        simulated hours for no measurement value."""


class BlockPins:
    """Reader/eraser coordination for flash blocks.

    A reader *pins* a block in the same simulation step as its map lookup
    (no yield in between, so the pair is atomic) and unpins once the device
    read completes. Garbage collection drains a block's pins before erasing
    it, guaranteeing a reader never observes an erased page even if GC
    remaps the page's record mid-read.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._counts: dict = {}
        self._drain_events: dict = {}

    def pin(self, block: int) -> None:
        self._counts[block] = self._counts.get(block, 0) + 1

    def unpin(self, block: int) -> None:
        count = self._counts.get(block, 0)
        if count <= 0:
            raise RuntimeError(f"unpin of unpinned block {block}")
        if count == 1:
            del self._counts[block]
            waiter = self._drain_events.pop(block, None)
            if waiter is not None:
                waiter.succeed()
        else:
            self._counts[block] = count - 1

    def pinned(self, block: int) -> int:
        return self._counts.get(block, 0)

    def drain(self, block: int):
        """Generator: wait until ``block`` has no pins."""
        while self._counts.get(block, 0) > 0:
            waiter = self._drain_events.get(block)
            if waiter is None:
                waiter = self.sim.event()
                self._drain_events[block] = waiter
            yield waiter


def retained_versions(versions_desc: List[Version],
                      watermark: float) -> List[Version]:
    """Apply the watermark retention rule of §3.1 / §4.4.

    Given versions youngest-first, keep every version newer than the
    watermark plus the single youngest version at or below it; a snapshot
    read at any timestamp >= watermark can then always be served.
    """
    kept: List[Version] = []
    for version in versions_desc:
        kept.append(version)
        if version.timestamp <= watermark:
            break
    return kept
