"""Generic single-version page FTL (the paper's "standard FTL").

Presents the classic block-device abstraction: a logical block address
(LBA) space over physical flash, remapping every LBA write to a fresh page
(Figure 2 of the paper). This is the substrate the split VFTL design
stacks its multi-version KV layer on, and — wrapped by
:class:`~repro.baselines.single_version.SingleVersionBackend` — the
"SFTL" storage mode of Figure 6.

Structure:

* ``map``: LBA → (block, page); ``reverse``: (block, page) → LBA.
* log-structured writes through a shared append frontier
  (:class:`~repro.ftl.gc.BlockAllocator`);
* background GC picks the block with the fewest valid pages, remaps those
  pages, and erases it (greedy cost-benefit);
* 10 % of physical capacity is reserved for remapping (§5.1), enforced as
  the exported :attr:`usable_lbas` limit.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

from ..sim.core import Simulator
from ..sim.process import Process
from ..flash.device import FlashDevice
from ..flash.errors import WearOutError
from .base import BlockPins, CapacityError, Cpu
from .gc import BlockAllocator

__all__ = ["GenericFTL", "DEFAULT_FTL_OP_CPU"]

#: Request-path CPU per FTL-level operation (the second "layer crossing"
#: VFTL pays and MFTL does not). Calibrated so 100 % GET throughput lands
#: near Table 1 (MFTL ≈ 456 k, VFTL ≈ 351 k requests/s).
DEFAULT_FTL_OP_CPU = 0.65e-6


class GenericFTL:
    """A single-version, page-granularity flash translation layer."""

    def __init__(
        self,
        sim: Simulator,
        device: FlashDevice,
        cpu: Optional[Cpu] = None,
        op_cpu: float = DEFAULT_FTL_OP_CPU,
        reserve_fraction: float = 0.10,
        gc_trigger_free_blocks: Optional[int] = None,
        gc_concurrency: int = 4,
    ) -> None:
        if not 0.0 <= reserve_fraction < 1.0:
            raise ValueError(
                f"reserve_fraction must be in [0, 1), got {reserve_fraction}")
        self.sim = sim
        self.device = device
        self.cpu = cpu
        self.op_cpu = op_cpu
        self.reserve_fraction = reserve_fraction
        geometry = device.geometry
        self.usable_lbas = math.floor(
            geometry.total_pages * (1.0 - reserve_fraction))
        self._map: Dict[int, Tuple[int, int]] = {}
        self._reverse: Dict[Tuple[int, int], int] = {}
        self._valid_pages = [0] * geometry.num_blocks
        self._allocator = BlockAllocator(
            sim, device, gc_trigger_free_blocks=gc_trigger_free_blocks,
            reclaimable=lambda: (self._pick_victim() is not None
                                 or bool(self._collecting)))
        self._pins = BlockPins(sim)
        self.gc_concurrency = max(1, gc_concurrency)
        self._collecting: set = set()
        #: Blocks retired after exhausting their erase endurance; they
        #: never return to the free pool (bad-block management).
        self.bad_blocks: set = set()
        self.pages_remapped = 0
        self.gc_runs = 0
        self.gc_daemon_process = sim.process(self._gc_daemon())

    # -- public API -------------------------------------------------------------

    def write(self, lba: int, data: Any) -> Process:
        """Remap ``lba`` to a fresh page holding ``data``."""
        self._check_lba(lba)
        return self.sim.process(self._write(lba, data))

    def read(self, lba: int) -> Process:
        """Read the page currently mapped at ``lba``."""
        self._check_lba(lba)
        return self.sim.process(self._read(lba))

    def trim(self, lba: int) -> None:
        """Drop the mapping for ``lba`` (its page becomes garbage)."""
        self._check_lba(lba)
        self._invalidate(lba)

    def is_mapped(self, lba: int) -> bool:
        return lba in self._map

    def bulk_load(self, items) -> None:
        """Map (lba, data) pairs directly, bypassing simulated timing."""
        for lba, data in items:
            self._check_lba(lba)
            block, page = self._allocator.allocate_page()
            self.device.chip.program(block, page, data)
            self._invalidate(lba)
            self._map[lba] = (block, page)
            self._reverse[(block, page)] = lba
            self._valid_pages[block] += 1

    @property
    def mapped_count(self) -> int:
        return len(self._map)

    # -- op implementations --------------------------------------------------------

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.usable_lbas:
            raise ValueError(
                f"LBA {lba} out of range [0, {self.usable_lbas})")

    def _charge_cpu(self):
        if self.cpu is not None and self.op_cpu > 0:
            yield from self.cpu.charge(self.op_cpu)

    def _write(self, lba: int, data: Any):
        yield from self._charge_cpu()
        yield from self._allocator.writer_gate()
        block, page = self._allocator.allocate_page()
        # Create the device process in the same step as the allocation so
        # same-block programs are issued in frontier order; pin the block so
        # GC never scans or erases it while this program is in flight.
        self._pins.pin(block)
        write_done = self.device.write_page(block, page, data)
        try:
            yield write_done
        finally:
            self._pins.unpin(block)
        self._invalidate(lba)
        self._map[lba] = (block, page)
        self._reverse[(block, page)] = lba
        self._valid_pages[block] += 1

    def _read(self, lba: int):
        yield from self._charge_cpu()
        location = self._map.get(lba)
        if location is None:
            return None
        block, page = location
        self._pins.pin(block)
        try:
            data = yield self.device.read_page(block, page)
        finally:
            self._pins.unpin(block)
        return data

    def _invalidate(self, lba: int) -> None:
        location = self._map.pop(lba, None)
        if location is not None:
            del self._reverse[location]
            self._valid_pages[location[0]] -= 1

    # -- garbage collection ----------------------------------------------------------

    def _pick_victim(self) -> Optional[int]:
        """The non-free, non-active block with the fewest valid pages.

        Only blocks that would actually free space (some invalid pages)
        qualify; full-valid blocks are skipped.
        """
        geometry = self.device.geometry
        best, best_valid = None, None
        for block in range(geometry.num_blocks):
            if self._allocator.is_free(block):
                continue
            if block == self._allocator.active_block:
                continue
            if block in self._collecting:
                continue
            if block in self.bad_blocks:
                continue
            programmed = self.device.chip.programmed_pages(block)
            if programmed == 0:
                continue
            valid = self._valid_pages[block]
            if valid >= programmed and programmed >= geometry.pages_per_block:
                continue  # nothing reclaimable
            # Prefer the fewest valid pages (greedy), tie-breaking on wear
            # so garbage in seldom-erased blocks is collected first.
            score = (valid, self.device.chip.erase_count(block))
            if best_valid is None or score < best_valid:
                best, best_valid = block, score
        return best

    def _gc_daemon(self):
        """Collect up to ``gc_concurrency`` victims concurrently (real
        FTLs garbage-collect across channels in parallel)."""
        while True:
            yield self._allocator.gc_request()
            inflight = []
            while self._allocator.under_pressure or inflight:
                # Each in-flight collection may consume up to a block of
                # remap destinations, so cap concurrency by the free-pool
                # headroom to avoid running the allocator dry.
                slots = min(self.gc_concurrency,
                            max(1, self._allocator.free_block_count - 1))
                while (self._allocator.under_pressure
                        and len(inflight) < slots):
                    victim = self._pick_victim()
                    if victim is None:
                        break
                    self._collecting.add(victim)
                    inflight.append(
                        self.sim.process(self._collect_guarded(victim)))
                if not inflight:
                    if self._allocator.under_pressure:
                        # Nothing reclaimable; park until the pool changes.
                        yield self._allocator.state_change()
                        continue
                    break
                yield self.sim.any_of(inflight)
                inflight = [proc for proc in inflight if not proc.processed]

    def _collect_guarded(self, victim: int):
        try:
            yield from self._collect(victim)
        finally:
            self._collecting.discard(victim)

    def _collect(self, victim: int):
        """Remap every valid page of ``victim``, then erase it."""
        # Wait out in-flight programs to the victim so the scan below sees
        # its final write frontier.
        yield from self._pins.drain(victim)
        for page in range(self.device.geometry.pages_per_block):
            if not self.device.chip.is_programmed(victim, page):
                continue
            lba = self._reverse.get((victim, page))
            if lba is None:
                continue
            self._pins.pin(victim)
            try:
                data = yield self.device.read_page(victim, page)
            finally:
                self._pins.unpin(victim)
            if self._reverse.get((victim, page)) != lba:
                continue  # overwritten while we were reading
            new_block, new_page = self._allocator.allocate_page()
            self._pins.pin(new_block)
            write_done = self.device.write_page(new_block, new_page, data)
            try:
                yield write_done
            finally:
                self._pins.unpin(new_block)
            # Re-check: the LBA may have been rewritten or trimmed while the
            # remap write was in flight; if so the fresh copy is garbage.
            if self._reverse.get((victim, page)) == lba:
                del self._reverse[(victim, page)]
                self._valid_pages[victim] -= 1
                self._map[lba] = (new_block, new_page)
                self._reverse[(new_block, new_page)] = lba
                self._valid_pages[new_block] += 1
                self.pages_remapped += 1
            if self.cpu is not None and self.op_cpu > 0:
                yield from self.cpu.charge(self.op_cpu)
        if self._valid_pages[victim] != 0:
            # A racing writer landed data here? Cannot happen: the victim is
            # never the active block. Guard anyway.
            raise CapacityError(
                f"GC victim {victim} still has valid pages after remap")
        yield from self._pins.drain(victim)
        try:
            yield self.device.erase_block(victim)
        except WearOutError:
            # Retire the block: capacity shrinks but service continues.
            self.bad_blocks.add(victim)
            self.gc_runs += 1
            self._allocator.wake_writers()
            return
        self._allocator.release_block(victim)
        self.gc_runs += 1
