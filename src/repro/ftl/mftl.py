"""MFTL: the unified multi-version key-value FTL (Contribution 3).

The paper's key storage idea: because flash remaps on every write anyway,
the FTL can keep *multiple versions per key* nearly for free. MFTL:

* maps each key **directly** to physical record locations — one map access,
  no LBA indirection (``Key -> (block, page, offset)``, Figure 3);
* maintains the version list per key sorted by create timestamp;
* writes values log-structured through the shared page packer (§5: up to
  1 ms to pack 512 B records into a 4 KB page);
* integrates version management with garbage collection: when GC scans a
  victim block it simply *drops* versions that are dead under the
  watermark rule (§3.1) instead of remapping them — the structural
  advantage over the split VFTL design, which must remap first and
  collect at a second layer.

``multi_version=False`` turns the engine into the paper's "SFTL" baseline
for Figure 6: every put supersedes the previous version immediately, so
snapshot reads in the past miss and the corresponding transactions abort.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from ..sim.core import Simulator
from ..sim.process import Process
from ..flash.device import FlashDevice
from ..flash.errors import WearOutError
from ..versioning import Version
from .base import BlockPins, Cpu, KVBackend, retained_versions
from .gc import BlockAllocator
from .mapcache import MappingCache
from .packing import DEFAULT_PACKING_DELAY, PagePacker

__all__ = ["MFTLBackend", "DEFAULT_MFTL_OP_CPU"]

#: Request-path CPU per MFTL operation: one layer crossing, one map access.
#: Calibrated so 100 % GET throughput sits near Table 1's 456 k req/s.
DEFAULT_MFTL_OP_CPU = 2.2e-6


class _Entry:
    """One version of one key inside the mapping table."""

    __slots__ = ("version", "location", "offset", "cached_value", "alive")

    def __init__(self, version: Version, cached_value: Any) -> None:
        self.version = version
        #: (block, page) once durable; None while buffered in the packer.
        self.location: Optional[Tuple[int, int]] = None
        self.offset: Optional[int] = None
        #: Value served from the FTL write buffer until the page lands.
        self.cached_value: Any = cached_value
        self.alive = True


class MFTLBackend(KVBackend):
    """Versioned KV store with flash-integrated version management."""

    def __init__(
        self,
        sim: Simulator,
        device: FlashDevice,
        op_cpu: float = DEFAULT_MFTL_OP_CPU,
        packing_delay: float = DEFAULT_PACKING_DELAY,
        reserve_fraction: float = 0.10,
        multi_version: bool = True,
        cpu: Optional[Cpu] = None,
        gc_concurrency: int = 4,
        map_cache_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(sim)
        self.device = device
        self.op_cpu = op_cpu
        self.multi_version = multi_version
        self.reserve_fraction = reserve_fraction
        self.cpu = cpu if cpu is not None else Cpu(sim)
        self.records_per_page = max(
            1, device.geometry.page_size // self.record_size)
        self.gc_concurrency = max(1, gc_concurrency)
        self._collecting: set = set()
        #: Blocks retired after exhausting erase endurance.
        self.bad_blocks: set = set()
        self._map: Dict[str, List[_Entry]] = {}
        self._valid_records = [0] * device.geometry.num_blocks
        #: Records physically stored per block (reset on erase); a
        #: block is a GC victim only when valid < stored, i.e. it
        #: holds actual garbage — compacting garbage-free partial
        #: pages would just cycle them through the packer forever.
        self._stored_records = [0] * device.geometry.num_blocks
        self._allocator = BlockAllocator(
            sim, device,
            reclaimable=lambda: (self._has_garbage()
                                 or bool(self._collecting)))
        self._pins = BlockPins(sim)
        #: Optional two-level mapping (the paper's DFTL-style extension):
        #: a bounded LRU of hot keys; a miss costs one translation-page
        #: read before the operation proceeds.
        self.map_cache = (MappingCache(map_cache_capacity)
                          if map_cache_capacity else None)
        self.translation_reads = 0
        self.packer = PagePacker(
            sim, self._write_packed_page, self.records_per_page,
            packing_delay)
        self.gc_daemon_process = sim.process(self._gc_daemon())

    # -- public API ---------------------------------------------------------

    def put(self, key: str, value: Any, version: Version,
            visible=None) -> Process:
        return self.sim.process(self._put(key, value, version, visible))

    def get(self, key: str, max_timestamp: Optional[float] = None) -> Process:
        return self.sim.process(self._get(key, max_timestamp))

    def delete(self, key: str) -> Process:
        return self.sim.process(self._delete(key))

    def versions_of(self, key: str) -> List[Version]:
        entries = self._map.get(key, [])
        return [entry.version for entry in reversed(entries)]

    def contains(self, key: str) -> bool:
        return bool(self._map.get(key))

    @property
    def write_amplification(self) -> float:
        """Physical page writes per host-data page equivalent.

        1.0 means every flash write carried fresh host data at full
        density; anything above is GC remapping and packing slack. The
        unified-vs-split comparison of §5.1 ("VFTL remaps 15% more
        data") is exactly a write-amplification gap.
        """
        host_pages = (self.stats.host_records_written
                      / self.records_per_page)
        if host_pages == 0:
            return 0.0
        return self.device.stats.page_writes / host_pages

    def keys(self) -> List[str]:
        return [key for key, entries in self._map.items() if entries]

    def bulk_load(self, items) -> None:
        """Place records directly onto flash, bypassing simulated timing."""
        items = list(items)
        for start in range(0, len(items), self.records_per_page):
            chunk = items[start:start + self.records_per_page]
            block, page = self._allocator.allocate_page()
            records = tuple(
                (key, version, value) for key, value, version in chunk)
            self.device.chip.program(block, page, records)
            self._stored_records[block] += len(records)
            for offset, (key, value, version) in enumerate(chunk):
                entry = _Entry(version, cached_value=None)
                entry.location = (block, page)
                entry.offset = offset
                entries = self._map.setdefault(key, [])
                index = bisect.bisect(
                    [existing.version for existing in entries], version)
                entries.insert(index, entry)
                self._valid_records[block] += 1

    # -- put ------------------------------------------------------------------

    def _map_lookup_cost(self, key: str):
        """Generator: pay the translation fetch for a cold mapping."""
        if self.map_cache is not None and not self.map_cache.touch(key):
            self.translation_reads += 1
            yield self.sim.timeout(self.device.timing.read_page)

    def _put(self, key: str, value: Any, version: Version, visible=None):
        start = self.sim.now
        yield from self.cpu.charge(self.op_cpu)
        yield from self._map_lookup_cost(key)
        yield from self._allocator.writer_gate()
        entry = _Entry(version, cached_value=value)
        entries = self._map.setdefault(key, [])
        index = bisect.bisect(
            [existing.version for existing in entries], version)
        entries.insert(index, entry)
        if visible is not None:
            # Readable from the FTL write buffer from this instant on.
            visible.succeed()
        self._trim(key)
        # The flush attaches the entry to its page synchronously; the
        # placed event only signals durability for this put's latency.
        placed = self.packer.submit((key, version, value, entry))
        yield placed
        self.stats.observe_put(self.sim.now - start)

    # -- get -------------------------------------------------------------------

    def _get(self, key: str, max_timestamp: Optional[float]):
        start = self.sim.now
        yield from self.cpu.charge(self.op_cpu)
        yield from self._map_lookup_cost(key)
        entry = self._lookup(key, max_timestamp)
        if entry is None:
            self.stats.observe_get(self.sim.now - start)
            return None
        if entry.location is None:
            # Buffer hit: the record is still in the packer's DRAM buffer.
            value = entry.cached_value
            self.stats.observe_get(self.sim.now - start)
            return entry.version, value
        block, _ = entry.location
        version, location, offset = entry.version, entry.location, entry.offset
        self._pins.pin(block)
        try:
            records = yield self.device.read_page(*location)
        finally:
            self._pins.unpin(block)
        record_key, record_version, value = records[offset]
        if record_key != key or record_version != version:
            raise RuntimeError(
                f"mapping corruption: expected {key}/{version} at "
                f"{location}+{offset}, found {record_key}/{record_version}")
        self.stats.observe_get(self.sim.now - start)
        return version, value

    def _lookup(self, key: str,
                max_timestamp: Optional[float]) -> Optional[_Entry]:
        entries = self._map.get(key)
        if not entries:
            return None
        if max_timestamp is None:
            return entries[-1]
        probe = Version(max_timestamp, float("inf"))
        versions = [entry.version for entry in entries]
        index = bisect.bisect(versions, probe) - 1
        if index < 0:
            return None
        return entries[index]

    # -- delete -------------------------------------------------------------------

    def _delete(self, key: str):
        yield from self.cpu.charge(self.op_cpu)
        entries = self._map.pop(key, [])
        for entry in entries:
            self._kill(entry)
        self.stats.deletes += 1

    # -- version retention ------------------------------------------------------------

    def _kill(self, entry: _Entry) -> None:
        if not entry.alive:
            return
        entry.alive = False
        if entry.location is not None:
            self._valid_records[entry.location[0]] -= 1
        entry.cached_value = None

    def _trim(self, key: str) -> None:
        """Drop versions dead under the watermark (or all-but-newest in
        single-version mode)."""
        entries = self._map.get(key)
        if not entries:
            return
        if self.multi_version:
            versions_desc = [entry.version for entry in reversed(entries)]
            kept = len(retained_versions(versions_desc, self.watermark))
        else:
            kept = 1
        dropped = len(entries) - kept
        if dropped <= 0:
            return
        for entry in entries[:dropped]:
            self._kill(entry)
            self.stats.records_discarded += 1
        self._map[key] = entries[dropped:]

    # -- physical write path --------------------------------------------------------------

    def _write_packed_page(self, records: List[Any]):
        """Packer callback: allocate a page, program it, return its address.

        Waits for GC to recycle a block if the pool is momentarily dry —
        safe because GC never waits on the packer (records detach first).

        Entries attach to the new page *synchronously* once the program
        completes, while the block is still pinned: the mapping table and
        per-block valid counts are never observable out of sync.
        """
        while (self._allocator.free_block_count == 0
                and self._allocator.free_pages == 0):
            yield self._allocator.state_change()
        block, page = self._allocator.allocate_page()
        self._stored_records[block] += len(records)
        payload = tuple((key, version, value)
                        for key, version, value, _entry in records)
        self._pins.pin(block)
        try:
            yield self.device.write_page(block, page, payload)
            for offset, (_key, _version, value, entry) in \
                    enumerate(records):
                if entry.alive and entry.location is None:
                    entry.location = (block, page)
                    entry.offset = offset
                    entry.cached_value = None
                    self._valid_records[block] += 1
                # else: superseded while buffered; the flash copy is
                # garbage and GC will skip it.
        finally:
            self._pins.unpin(block)
        return (block, page)

    # -- garbage collection ------------------------------------------------------------------

    def _has_garbage(self) -> bool:
        """Whether any block holds dead records (ignores pins)."""
        return any(
            valid < stored for valid, stored in
            zip(self._valid_records, self._stored_records))

    def _block_capacity_records(self, block: int) -> int:
        return (self.device.chip.programmed_pages(block)
                * self.records_per_page)

    def _pick_victim(self) -> Optional[int]:
        best, best_valid = None, None
        for block in range(self.device.geometry.num_blocks):
            if self._allocator.is_free(block):
                continue
            if block == self._allocator.active_block:
                continue
            if block in self._collecting:
                continue
            if block in self.bad_blocks:
                continue
            if self._pins.pinned(block):
                continue  # in-flight write or read; state is in motion
            programmed = self.device.chip.programmed_pages(block)
            if programmed == 0:
                continue
            valid = self._valid_records[block]
            if valid >= self._stored_records[block]:
                continue  # no garbage: collecting would only churn
            # Greedy min-valid victim, tie-breaking on wear (least-erased
            # first) so cold garbage blocks still rotate into GC.
            score = (valid, self.device.chip.erase_count(block))
            if best_valid is None or score < best_valid:
                best, best_valid = block, score
        return best

    def _gc_daemon(self):
        """Run up to ``gc_concurrency`` collections concurrently.

        Serial collection cannot keep pace with sustained writes: each
        round pays an erase (1 ms) plus remap-placement waits, while the
        foreground consumes pages continuously. Real FTLs collect across
        channels in parallel; so do we.
        """
        while True:
            yield self._allocator.gc_request()
            inflight: List = []
            while self._allocator.under_pressure or inflight:
                # Each in-flight collection may consume up to a block of
                # remap destinations, so cap concurrency by the free-pool
                # headroom to avoid running the allocator dry.
                slots = min(self.gc_concurrency,
                            max(1, self._allocator.free_block_count - 1))
                while (self._allocator.under_pressure
                        and len(inflight) < slots):
                    victim = self._pick_victim()
                    if victim is None:
                        break
                    self._collecting.add(victim)
                    inflight.append(
                        self.sim.process(self._collect_guarded(victim)))
                if not inflight:
                    if self._allocator.under_pressure:
                        # Nothing reclaimable; park until the pool changes.
                        yield self._allocator.state_change()
                        continue
                    break
                yield self.sim.any_of(inflight)
                inflight = [proc for proc in inflight if not proc.processed]

    def _collect_guarded(self, victim: int):
        try:
            yield from self._collect(victim)
        finally:
            self._collecting.discard(victim)

    def _entry_at(self, key: str, version: Version,
                  location: Tuple[int, int],
                  offset: int) -> Optional[_Entry]:
        for entry in self._map.get(key, []):
            if (entry.alive and entry.version == version
                    and entry.location == location
                    and entry.offset == offset):
                return entry
        return None

    def _is_retained(self, key: str, version: Version) -> bool:
        entries = self._map.get(key, [])
        versions_desc = [entry.version for entry in reversed(entries)]
        if self.multi_version:
            return version in retained_versions(versions_desc, self.watermark)
        return bool(versions_desc) and version == versions_desc[0]

    def _collect(self, victim: int):
        """Scan ``victim``: remap live records, drop dead versions, erase.

        Dropping dead versions here — instead of remapping them for a
        second-level collector to find later — is the unified design's
        whole advantage.

        Live records *detach* into the FTL write buffer synchronously
        (their entries serve reads from DRAM) and re-enter the packer; the
        victim is erased without waiting for the new placements. This
        avoids a cycle where GC waits on packer flushes whose page
        allocations in turn wait on GC.
        """
        # Wait out in-flight programs so the scan sees the final frontier.
        yield from self._pins.drain(victim)
        pages_per_block = self.device.geometry.pages_per_block
        for page in range(pages_per_block):
            if not self.device.chip.is_programmed(victim, page):
                continue
            self._pins.pin(victim)
            try:
                records = yield self.device.read_page(victim, page)
            finally:
                self._pins.unpin(victim)
            for offset, (key, version, value) in enumerate(records):
                entry = self._entry_at(key, version, (victim, page), offset)
                if entry is None:
                    continue  # already superseded, moved, or deleted
                if not self._is_retained(key, version):
                    self._retire(key, entry)
                    continue
                # Detach: reads now hit the buffered copy in DRAM.
                self._valid_records[victim] -= 1
                entry.location = None
                entry.offset = None
                entry.cached_value = value
                self.packer.submit((key, version, value, entry))
                self.stats.records_remapped += 1
            if self.op_cpu > 0:
                yield from self.cpu.charge(self.op_cpu)
        yield from self._pins.drain(victim)
        try:
            yield self.device.erase_block(victim)
        except WearOutError:
            # Retire the block: its garbage is unreclaimable, capacity
            # shrinks, but service continues on the remaining blocks.
            self.bad_blocks.add(victim)
            self._stored_records[victim] = self._valid_records[victim]
            self.stats.gc_runs += 1
            self._allocator.wake_writers()
            return
        self._stored_records[victim] = 0
        self._allocator.release_block(victim)
        self.stats.gc_runs += 1

    def _retire(self, key: str, entry: _Entry) -> None:
        self._kill(entry)
        entries = self._map.get(key)
        if entries is not None:
            entries.remove(entry)
            if not entries:
                del self._map[key]
        self.stats.records_discarded += 1


