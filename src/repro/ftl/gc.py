"""Log-structured block allocation and garbage-collection signalling.

Both the generic page FTL (SFTL) and the unified multi-version FTL (MFTL)
allocate pages from a single append frontier and recycle blocks through a
background collector. This module holds the shared accounting:

* pop the least-worn free block when the frontier fills (wear leveling);
* signal the GC daemon when the free-block pool falls to a trigger level;
* gate foreground writers when the pool is nearly exhausted, leaving the
  remaining blocks as GC headroom (the "10 % reserved for remapping" of
  §5.1 maps to this plus the logical capacity limit each FTL enforces).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.core import Simulator
from ..sim.events import Event
from ..flash.device import FlashDevice
from .base import CapacityError

__all__ = ["BlockAllocator"]


class BlockAllocator:
    """Append-frontier page allocation over a pool of erased blocks."""

    def __init__(
        self,
        sim: Simulator,
        device: FlashDevice,
        gc_trigger_free_blocks: Optional[int] = None,
        writer_min_free_blocks: int = 1,
        reclaimable=None,
    ) -> None:
        if gc_trigger_free_blocks is None:
            # Engage GC with headroom proportional to the device so the
            # collector can run ahead of sustained write bursts.
            gc_trigger_free_blocks = max(3, device.geometry.num_blocks // 16)
        if writer_min_free_blocks >= gc_trigger_free_blocks:
            # GC must engage before writers stall, or nothing frees space.
            gc_trigger_free_blocks = writer_min_free_blocks + 1
        self.sim = sim
        self.device = device
        self.gc_trigger_free_blocks = gc_trigger_free_blocks
        self.writer_min_free_blocks = writer_min_free_blocks
        #: Optional callable answering "could GC free anything right now?";
        #: lets a stalled writer fail fast with CapacityError instead of
        #: waiting forever on a device that is full of live data.
        self.reclaimable = reclaimable
        self._free: List[int] = list(range(device.geometry.num_blocks))
        self._active: Optional[int] = None
        self._frontier = 0
        self._gc_event: Optional[Event] = None
        self._space_event: Optional[Event] = None
        self._change_event: Optional[Event] = None

    # -- pool state ----------------------------------------------------------

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    @property
    def active_block(self) -> Optional[int]:
        return self._active

    def is_free(self, block: int) -> bool:
        return block in self._free

    @property
    def under_pressure(self) -> bool:
        return len(self._free) <= self.gc_trigger_free_blocks

    @property
    def free_pages(self) -> int:
        """Unprogrammed pages: free blocks plus the frontier remainder."""
        pages_per_block = self.device.geometry.pages_per_block
        frontier_left = 0
        if self._active is not None:
            frontier_left = pages_per_block - self._frontier
        return len(self._free) * pages_per_block + frontier_left

    # -- allocation --------------------------------------------------------------

    def allocate_page(self) -> Tuple[int, int]:
        """Next (block, page) on the append frontier. Synchronous.

        Raises :class:`CapacityError` if every block is consumed — callers
        gate writers with :meth:`writer_gate` so this only happens when GC
        cannot reclaim anything (device genuinely full of live data).
        """
        pages_per_block = self.device.geometry.pages_per_block
        if self._active is None or self._frontier >= pages_per_block:
            if not self._free:
                raise CapacityError("no erased blocks available")
            least_worn = min(self._free, key=self.device.chip.erase_count)
            self._free.remove(least_worn)
            self._active = least_worn
            self._frontier = 0
            if self.under_pressure and self._gc_event is not None:
                event, self._gc_event = self._gc_event, None
                event.succeed()
        page = self._frontier
        self._frontier += 1
        self._fire_change()
        return self._active, page

    def release_block(self, block: int) -> None:
        """Return an erased block to the free pool, waking stalled writers."""
        if block in self._free:
            raise RuntimeError(f"block {block} already free")
        self._free.append(block)
        if self._space_event is not None:
            event, self._space_event = self._space_event, None
            event.succeed()
        self._fire_change()

    def wake_writers(self) -> None:
        """Wake gated writers without adding space (e.g. after a block
        retirement) so they re-evaluate and can fail fast if the device
        has reached end of life."""
        if self._space_event is not None:
            event, self._space_event = self._space_event, None
            event.succeed()
        self._fire_change()

    def _fire_change(self) -> None:
        if self._change_event is not None:
            event, self._change_event = self._change_event, None
            event.succeed()

    def state_change(self) -> Event:
        """Event that fires on the next allocation or block release.

        The GC daemon parks on this when it is under pressure but finds no
        reclaimable victim (everything valid), instead of spinning.
        """
        if self._change_event is None:
            self._change_event = Event(self.sim)
        return self._change_event

    # -- coordination -----------------------------------------------------------

    def gc_request(self) -> Event:
        """Event the GC daemon waits on; fires when pressure is reached."""
        if self.under_pressure:
            event = Event(self.sim)
            event.succeed()
            return event
        if self._gc_event is None:
            self._gc_event = Event(self.sim)
        return self._gc_event

    def writer_gate(self):
        """Generator: stall the caller while free pages are GC headroom.

        The gate is page-granular: foreground writers stall once the
        unprogrammed-page count drops to one block's worth (reserved as GC
        remap destination), so a write that would create the very garbage
        GC needs is still admitted while any slack remains.

        Raises :class:`CapacityError` if the device is wedged: no free
        headroom and nothing GC could reclaim.
        """
        headroom = (self.device.geometry.pages_per_block
                    * self.writer_min_free_blocks)
        while self.free_pages <= headroom:
            if self.reclaimable is not None and not self.reclaimable():
                raise CapacityError(
                    "device full of live data: no reclaimable space")
            if self._space_event is None:
                self._space_event = Event(self.sim)
            yield self._space_event
