"""Two-level mapping with demand caching (the §3.1 / DFTL extension).

The paper's MFTL assumes the entire key → physical mapping fits in server
DRAM, and sketches a DFTL-style fallback: "retain only frequently
accessed keys in main memory, destaging cold mappings to a bounded-size
second-level table on flash".

:class:`MappingCache` models the performance consequence without
duplicating the mapping data structure: an LRU set of *hot* keys of
bounded capacity. Touching a key that is not resident costs one simulated
flash page read (fetching its translation page), after which the key is
resident and may evict the coldest one. Correctness is unaffected — only
latency — exactly like a real translation cache.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["MappingCache"]


class MappingCache:
    """LRU residency tracker for mapping-table entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._resident: "OrderedDict[str, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def touch(self, key: str) -> bool:
        """Mark ``key`` accessed; True on hit, False on miss.

        A miss makes the key resident (the caller pays the translation
        fetch), evicting the least-recently-used key at capacity.
        """
        if key in self._resident:
            self._resident.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._resident[key] = None
        if len(self._resident) > self.capacity:
            self._resident.popitem(last=False)
            self.evictions += 1
        return False

    def __contains__(self, key: str) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
