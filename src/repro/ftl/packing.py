"""Record packing into flash pages.

§5 of the paper: key-value records are 512 B while flash pages are 4 KB, so
the FTL "employs a packing logic that waits for up to 1 ms (tunable) to
pack data of multiple keys into a page". Both puts and GC-remapped records
flow through the same packer, which is why write-heavy mixes see *lower*
put latency on VFTL (its extra GC traffic fills pages faster, shortening
the packing wait) — the effect behind Table 1's 25 % GET row.

The packer is storage-engine agnostic: the owning FTL supplies a
``write_page(records)`` coroutine that allocates a page, programs it, and
returns its physical address. Each submitted record gets an event that
fires with ``(address, offset)`` once the record is durable.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from ..sim.core import Simulator
from ..sim.events import Event

__all__ = ["PagePacker", "DEFAULT_PACKING_DELAY"]

#: §5: "waits for up to 1 ms (tunable)".
DEFAULT_PACKING_DELAY = 1e-3


class PagePacker:
    """Accumulates fixed-size records and writes them a page at a time.

    A flush happens when the buffer holds a full page of records, or
    ``packing_delay`` seconds after the oldest buffered record arrived,
    whichever comes first.
    """

    def __init__(
        self,
        sim: Simulator,
        write_page: Callable[[List[Any]], Any],
        records_per_page: int,
        packing_delay: float = DEFAULT_PACKING_DELAY,
    ) -> None:
        if records_per_page < 1:
            raise ValueError(
                f"records_per_page must be >= 1, got {records_per_page}")
        if packing_delay < 0:
            raise ValueError(
                f"packing_delay must be >= 0, got {packing_delay}")
        self.sim = sim
        self.write_page = write_page
        self.records_per_page = records_per_page
        self.packing_delay = packing_delay
        self._buffer: List[Tuple[Any, Event]] = []
        #: Bumped on every flush so a stale deadline timer can detect that
        #: the batch it was guarding already went out.
        self._generation = 0
        self.pages_written = 0
        self.records_written = 0

    @property
    def pending(self) -> int:
        """Records buffered but not yet handed to a page write."""
        return len(self._buffer)

    def pending_records(self) -> List[Any]:
        """Snapshot of buffered records (read-cache support for the FTL)."""
        return [record for record, _ in self._buffer]

    def submit(self, record: Any) -> Event:
        """Buffer ``record``; the event fires with (address, offset)."""
        placed = self.sim.event()
        self._buffer.append((record, placed))
        if len(self._buffer) >= self.records_per_page:
            self._flush()
        elif len(self._buffer) == 1 and self.packing_delay > 0:
            self.sim.process(self._deadline(self._generation))
        elif self.packing_delay == 0:
            self._flush()
        return placed

    def flush_now(self) -> None:
        """Force out a partial page (used at shutdown/quiesce)."""
        if self._buffer:
            self._flush()

    # -- internals -----------------------------------------------------------

    def _deadline(self, generation: int):
        yield self.sim.timeout(self.packing_delay)
        if generation == self._generation and self._buffer:
            self._flush()

    def _flush(self) -> None:
        batch, self._buffer = self._buffer[:self.records_per_page], \
            self._buffer[self.records_per_page:]
        self._generation += 1
        if self._buffer:
            # Records remain; restart the deadline clock for them.
            if len(self._buffer) >= self.records_per_page:
                self._flush()
            elif self.packing_delay > 0:
                self.sim.process(self._deadline(self._generation))
        self.sim.process(self._write_batch(batch))

    def _write_batch(self, batch: List[Tuple[Any, Event]]):
        records = [record for record, _ in batch]
        address = yield from self.write_page(records)
        self.pages_written += 1
        self.records_written += len(records)
        for offset, (_, placed) in enumerate(batch):
            placed.succeed((address, offset))
