"""VFTL: a multi-version KV layer stacked on a generic FTL (baseline).

This is the paper's "naive multi-version KV-store implemented using a
standard FTL" (§5.1): the comparison point that motivates unifying version
and flash management. Two separate layers each do their own lookup,
request handling, and garbage collection:

* the **KV layer** (this class) maps ``key -> (LBA, offset)``, packs 512 B
  records into 4 KB logical blocks, and garbage-collects logical blocks
  whose records have died;
* the **generic FTL** underneath (:class:`~repro.ftl.sftl.GenericFTL`)
  maps ``LBA -> (block, page)`` and does page-level GC of its own.

Costs relative to MFTL, all structural and all visible in Table 1:

* two map lookups and two layer crossings per request (lower peak IOPS);
* 10 % capacity reserved **at both levels**, so less effective space, more
  frequent GC, and more remap traffic queueing ahead of GETs;
* KV-layer GC remaps records that the FTL then remaps *again* at page
  granularity, instead of dropping dead versions in one integrated pass.

The silver lining the paper observes at 25 % GET: all that GC traffic
flows through the same page packer as foreground puts, so pages fill
faster and puts wait less on the packing deadline.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..sim.core import Simulator
from ..sim.events import Event
from ..sim.process import Process
from ..flash.device import FlashDevice
from ..versioning import Version
from .base import BlockPins, CapacityError, Cpu, KVBackend, retained_versions
from .packing import DEFAULT_PACKING_DELAY, PagePacker
from .sftl import DEFAULT_FTL_OP_CPU, GenericFTL

__all__ = ["VFTLBackend", "DEFAULT_KV_OP_CPU"]

#: KV-layer request handling cost; the FTL layer charges its own
#: DEFAULT_FTL_OP_CPU on top, totalling ~2.85 µs per request — Table 1's
#: ~351 k req/s at 100 % GET.
DEFAULT_KV_OP_CPU = 2.2e-6


class _VEntry:
    """One version of one key in the KV layer's mapping."""

    __slots__ = ("version", "lba", "offset", "cached_value", "alive")

    def __init__(self, version: Version, cached_value: Any) -> None:
        self.version = version
        self.lba: Optional[int] = None
        self.offset: Optional[int] = None
        self.cached_value: Any = cached_value
        self.alive = True


class VFTLBackend(KVBackend):
    """Split-architecture multi-version store: KV layer over generic FTL."""

    def __init__(
        self,
        sim: Simulator,
        device: FlashDevice,
        kv_op_cpu: float = DEFAULT_KV_OP_CPU,
        ftl_op_cpu: float = DEFAULT_FTL_OP_CPU,
        packing_delay: float = DEFAULT_PACKING_DELAY,
        reserve_fraction: float = 0.10,
        gc_trigger_free_lbas: Optional[int] = None,
        writer_min_free_lbas: int = 4,
        gc_concurrency: int = 4,
    ) -> None:
        super().__init__(sim)
        self.device = device
        self.kv_op_cpu = kv_op_cpu
        self.cpu = Cpu(sim)
        self.ftl = GenericFTL(
            sim, device, cpu=self.cpu, op_cpu=ftl_op_cpu,
            reserve_fraction=reserve_fraction)
        # The KV layer reserves another 10 % of the FTL's logical space for
        # its own remapping — the double reserve §5.1 calls out.
        self.usable_lbas = math.floor(
            self.ftl.usable_lbas * (1.0 - reserve_fraction))
        if gc_trigger_free_lbas is None:
            # Engage the KV-layer collector with proportional headroom.
            gc_trigger_free_lbas = max(8, self.usable_lbas // 16)
        if gc_trigger_free_lbas <= writer_min_free_lbas:
            gc_trigger_free_lbas = writer_min_free_lbas + 1
        self.gc_trigger_free_lbas = gc_trigger_free_lbas
        self.writer_min_free_lbas = writer_min_free_lbas
        self.records_per_page = max(
            1, device.geometry.page_size // self.record_size)
        self._map: Dict[str, List[_VEntry]] = {}
        self._free_lbas: Deque[int] = deque(range(self.usable_lbas))
        self._valid_records: Dict[int, int] = {}
        #: Records stored per written LBA; an LBA is a GC victim only
        #: when valid < stored (it holds actual garbage).
        self._stored_records: Dict[int, int] = {}
        self._written_lbas: set = set()
        self.gc_concurrency = max(1, gc_concurrency)
        self._collecting: set = set()
        self._pins = BlockPins(sim)
        self._gc_event: Optional[Event] = None
        self._space_event: Optional[Event] = None
        self._change_event: Optional[Event] = None
        self.packer = PagePacker(
            sim, self._write_packed_page, self.records_per_page,
            packing_delay)
        self.gc_daemon_process = sim.process(self._gc_daemon())

    # -- public API -----------------------------------------------------------

    def put(self, key: str, value: Any, version: Version,
            visible=None) -> Process:
        return self.sim.process(self._put(key, value, version, visible))

    def get(self, key: str, max_timestamp: Optional[float] = None) -> Process:
        return self.sim.process(self._get(key, max_timestamp))

    def delete(self, key: str) -> Process:
        return self.sim.process(self._delete(key))

    def versions_of(self, key: str) -> List[Version]:
        entries = self._map.get(key, [])
        return [entry.version for entry in reversed(entries)]

    def contains(self, key: str) -> bool:
        return bool(self._map.get(key))

    @property
    def write_amplification(self) -> float:
        """Physical page writes per host-data page equivalent.

        1.0 means every flash write carried fresh host data at full
        density; anything above is GC remapping and packing slack. The
        unified-vs-split comparison of §5.1 ("VFTL remaps 15% more
        data") is exactly a write-amplification gap.
        """
        host_pages = (self.stats.host_records_written
                      / self.records_per_page)
        if host_pages == 0:
            return 0.0
        return self.device.stats.page_writes / host_pages

    def keys(self) -> List[str]:
        return [key for key, entries in self._map.items() if entries]

    def bulk_load(self, items) -> None:
        """Place records through both layers, bypassing simulated timing."""
        items = list(items)
        for start in range(0, len(items), self.records_per_page):
            chunk = items[start:start + self.records_per_page]
            lba = self._allocate_lba()
            records = tuple(
                (key, version, value) for key, value, version in chunk)
            self.ftl.bulk_load([(lba, records)])
            self._stored_records[lba] = len(records)
            for offset, (key, value, version) in enumerate(chunk):
                entry = _VEntry(version, cached_value=None)
                entry.lba = lba
                entry.offset = offset
                entries = self._map.setdefault(key, [])
                index = bisect.bisect(
                    [existing.version for existing in entries], version)
                entries.insert(index, entry)
                self._valid_records[lba] = \
                    self._valid_records.get(lba, 0) + 1

    # -- put ---------------------------------------------------------------------

    def _put(self, key: str, value: Any, version: Version, visible=None):
        start = self.sim.now
        yield from self.cpu.charge(self.kv_op_cpu)
        yield from self._writer_gate()
        entry = _VEntry(version, cached_value=value)
        entries = self._map.setdefault(key, [])
        index = bisect.bisect(
            [existing.version for existing in entries], version)
        entries.insert(index, entry)
        if visible is not None:
            # Readable from the KV layer's write buffer from here on.
            visible.succeed()
        self._trim(key)
        # The flush attaches the entry synchronously; the placed event
        # only signals durability for this put's latency.
        placed = self.packer.submit((key, version, value, entry))
        yield placed
        self.stats.observe_put(self.sim.now - start)

    # -- get ----------------------------------------------------------------------

    def _get(self, key: str, max_timestamp: Optional[float]):
        start = self.sim.now
        yield from self.cpu.charge(self.kv_op_cpu)
        entry = self._lookup(key, max_timestamp)
        if entry is None:
            self.stats.observe_get(self.sim.now - start)
            return None
        if entry.lba is None:
            value = entry.cached_value
            self.stats.observe_get(self.sim.now - start)
            return entry.version, value
        version, lba, offset = entry.version, entry.lba, entry.offset
        self._pins.pin(lba)
        try:
            records = yield self.ftl.read(lba)
        finally:
            self._pins.unpin(lba)
        record_key, record_version, value = records[offset]
        if record_key != key or record_version != version:
            raise RuntimeError(
                f"KV-layer mapping corruption: expected {key}/{version} at "
                f"lba {lba}+{offset}, found {record_key}/{record_version}")
        self.stats.observe_get(self.sim.now - start)
        return version, value

    def _lookup(self, key: str,
                max_timestamp: Optional[float]) -> Optional[_VEntry]:
        entries = self._map.get(key)
        if not entries:
            return None
        if max_timestamp is None:
            return entries[-1]
        probe = Version(max_timestamp, float("inf"))
        versions = [entry.version for entry in entries]
        index = bisect.bisect(versions, probe) - 1
        if index < 0:
            return None
        return entries[index]

    # -- delete ---------------------------------------------------------------------

    def _delete(self, key: str):
        yield from self.cpu.charge(self.kv_op_cpu)
        entries = self._map.pop(key, [])
        for entry in entries:
            self._kill(entry)
        self.stats.deletes += 1

    # -- version retention -------------------------------------------------------------

    def _kill(self, entry: _VEntry) -> None:
        if not entry.alive:
            return
        entry.alive = False
        if entry.lba is not None:
            self._valid_records[entry.lba] -= 1
        entry.cached_value = None

    def _trim(self, key: str) -> None:
        entries = self._map.get(key)
        if not entries:
            return
        versions_desc = [entry.version for entry in reversed(entries)]
        kept = len(retained_versions(versions_desc, self.watermark))
        dropped = len(entries) - kept
        if dropped <= 0:
            return
        for entry in entries[:dropped]:
            self._kill(entry)
            self.stats.records_discarded += 1
        self._map[key] = entries[dropped:]

    # -- LBA pool ----------------------------------------------------------------------

    def _has_garbage(self) -> bool:
        """Whether any written LBA holds dead records (ignores pins)."""
        return any(
            self._valid_records.get(lba, 0)
            < self._stored_records.get(lba, 0)
            for lba in self._written_lbas)

    def _writer_gate(self):
        while len(self._free_lbas) < self.writer_min_free_lbas:
            if not self._has_garbage() and not self._collecting:
                raise CapacityError(
                    "KV layer out of logical blocks with nothing "
                    "reclaimable")
            if self._space_event is None:
                self._space_event = Event(self.sim)
            yield self._space_event

    def _allocate_lba(self) -> int:
        if not self._free_lbas:
            raise CapacityError("KV layer out of logical blocks")
        lba = self._free_lbas.popleft()
        self._written_lbas.add(lba)
        self._valid_records.setdefault(lba, 0)
        if (len(self._free_lbas) <= self.gc_trigger_free_lbas
                and self._gc_event is not None):
            event, self._gc_event = self._gc_event, None
            event.succeed()
        self._fire_change()
        return lba

    def _release_lba(self, lba: int) -> None:
        self._written_lbas.discard(lba)
        self._valid_records.pop(lba, None)
        self._stored_records.pop(lba, None)
        self._free_lbas.append(lba)
        if self._space_event is not None:
            event, self._space_event = self._space_event, None
            event.succeed()
        self._fire_change()

    def _fire_change(self) -> None:
        if self._change_event is not None:
            event, self._change_event = self._change_event, None
            event.succeed()

    def _state_change(self) -> Event:
        if self._change_event is None:
            self._change_event = Event(self.sim)
        return self._change_event

    def _write_packed_page(self, records: List[Any]):
        # GC never waits on the packer (records detach first), so waiting
        # here for a recycled LBA cannot deadlock.
        while not self._free_lbas:
            yield self._state_change()
        lba = self._allocate_lba()
        self._stored_records[lba] = len(records)
        payload = tuple((key, version, value)
                        for key, version, value, _entry in records)
        # Pin the LBA so KV-layer GC cannot pick it as a victim (and recycle
        # it) while its initial write is still in flight; entries attach
        # synchronously under the same pin so valid counts never lag.
        self._pins.pin(lba)
        try:
            yield self.ftl.write(lba, payload)
            for offset, (_key, _version, value, entry) in \
                    enumerate(records):
                if entry.alive and entry.lba is None:
                    entry.lba = lba
                    entry.offset = offset
                    entry.cached_value = None
                    self._valid_records[lba] = \
                        self._valid_records.get(lba, 0) + 1
        finally:
            self._pins.unpin(lba)
        return lba

    # -- KV-layer garbage collection ---------------------------------------------------------

    @property
    def _under_pressure(self) -> bool:
        return len(self._free_lbas) <= self.gc_trigger_free_lbas

    def _gc_request(self) -> Event:
        if self._under_pressure:
            event = Event(self.sim)
            event.succeed()
            return event
        if self._gc_event is None:
            self._gc_event = Event(self.sim)
        return self._gc_event

    def _pick_victim(self) -> Optional[int]:
        best, best_valid = None, None
        for lba in self._written_lbas:
            if lba in self._collecting:
                continue
            if self._pins.pinned(lba):
                continue  # in-flight write or read; state is in motion
            valid = self._valid_records.get(lba, 0)
            if valid >= self._stored_records.get(lba, 0):
                continue  # no garbage: collecting would only churn
            if best_valid is None or valid < best_valid:
                best, best_valid = lba, valid
        return best

    def _gc_daemon(self):
        """Collect up to ``gc_concurrency`` logical blocks concurrently."""
        while True:
            yield self._gc_request()
            inflight = []
            while self._under_pressure or inflight:
                # Each in-flight collection may consume an LBA of remap
                # destinations; cap concurrency by the free-pool headroom.
                slots = min(self.gc_concurrency,
                            max(1, len(self._free_lbas) - 1))
                while (self._under_pressure
                        and len(inflight) < slots):
                    victim = self._pick_victim()
                    if victim is None:
                        break
                    self._collecting.add(victim)
                    inflight.append(
                        self.sim.process(self._collect_guarded(victim)))
                if not inflight:
                    if self._under_pressure:
                        # Nothing reclaimable; park until the pool changes.
                        yield self._state_change()
                        continue
                    break
                yield self.sim.any_of(inflight)
                inflight = [proc for proc in inflight if not proc.processed]

    def _collect_guarded(self, victim: int):
        try:
            yield from self._collect(victim)
        finally:
            self._collecting.discard(victim)

    def _entry_at(self, key: str, version: Version, lba: int,
                  offset: int) -> Optional[_VEntry]:
        for entry in self._map.get(key, []):
            if (entry.alive and entry.version == version
                    and entry.lba == lba and entry.offset == offset):
                return entry
        return None

    def _is_retained(self, key: str, version: Version) -> bool:
        entries = self._map.get(key, [])
        versions_desc = [entry.version for entry in reversed(entries)]
        return version in retained_versions(versions_desc, self.watermark)

    def _collect(self, victim: int):
        """Read a victim logical block, re-pack its live records, trim it.

        Live records detach into the KV layer's write buffer synchronously
        and re-enter the packer; the victim LBA is trimmed and recycled
        without waiting for the new placements, avoiding a cycle where GC
        waits on packer flushes whose LBA allocations wait on GC.
        """
        yield from self.cpu.charge(self.kv_op_cpu)
        # Wait out the victim's in-flight initial write, if any.
        yield from self._pins.drain(victim)
        self._pins.pin(victim)
        try:
            records = yield self.ftl.read(victim)
        finally:
            self._pins.unpin(victim)
        if records is not None:
            for offset, (key, version, value) in enumerate(records):
                entry = self._entry_at(key, version, victim, offset)
                if entry is None:
                    continue
                if not self._is_retained(key, version):
                    self._retire(key, entry)
                    continue
                # Detach: reads now hit the buffered copy in DRAM.
                self._valid_records[victim] -= 1
                entry.lba = None
                entry.offset = None
                entry.cached_value = value
                self.packer.submit((key, version, value, entry))
                self.stats.records_remapped += 1
        yield from self._pins.drain(victim)
        self.ftl.trim(victim)
        self._release_lba(victim)
        self.stats.gc_runs += 1

    def _retire(self, key: str, entry: _VEntry) -> None:
        self._kill(entry)
        entries = self._map.get(key)
        if entries is not None:
            entries.remove(entry)
            if not entries:
                del self._map[key]
        self.stats.records_discarded += 1


