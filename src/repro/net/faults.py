"""Per-link fault state for the network fabric: the nemesis surface.

:class:`LinkFaults` extends the fail-stop model of :class:`~repro.net.
network.Network` with the message-level faults distributed protocols
actually face:

* **blocked edges** — directed (src, dst) pairs whose traffic is dropped,
  the building block for symmetric and asymmetric partitions;
* **probabilistic loss** — per-edge or default drop probability, drawn
  from a dedicated SeededRng substream so enabling loss never perturbs
  the latency jitter stream;
* **latency spikes** — per-edge or default extra one-way delay, for
  congestion/bufferbloat excursions.

The structure is deliberately *inert by default*: a freshly installed
``LinkFaults`` has ``active == False`` and the network skips it entirely,
so fault machinery costs nothing — and changes nothing — when off.
All mutators are plain state flips at the instant they are called; the
scheduling of fault windows belongs to the nemesis plans in
:mod:`repro.harness.chaos`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sim.rng import SeededRng

__all__ = ["LinkFaults", "FaultStats"]

Edge = Tuple[str, str]


class FaultStats:
    """Counters for fault-induced message outcomes."""

    def __init__(self) -> None:
        #: Messages dropped because their directed edge was blocked.
        self.messages_blocked = 0
        #: Messages dropped by a probabilistic-loss draw.
        self.messages_lost = 0
        #: Messages delayed by a latency spike (count, not seconds).
        self.messages_delayed = 0


class LinkFaults:
    """Mutable per-edge fault state consulted by ``Network.send``."""

    def __init__(self, rng: SeededRng) -> None:
        self.rng = rng
        self.stats = FaultStats()
        self._blocked: Set[Edge] = set()
        self._loss: Dict[Edge, float] = {}
        self._default_loss = 0.0
        self._extra_latency: Dict[Edge, float] = {}
        self._default_extra_latency = 0.0

    # -- activity gate ------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when any fault is currently configured."""
        return bool(self._blocked or self._loss or self._default_loss
                    or self._extra_latency or self._default_extra_latency)

    # -- blocked edges / partitions -----------------------------------------

    def block(self, src: str, dst: str) -> None:
        """Drop all future ``src -> dst`` traffic (directed)."""
        self._blocked.add((src, dst))

    def unblock(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def block_pair(self, a: str, b: str) -> None:
        """Drop traffic in both directions between ``a`` and ``b``."""
        self.block(a, b)
        self.block(b, a)

    def unblock_pair(self, a: str, b: str) -> None:
        self.unblock(a, b)
        self.unblock(b, a)

    def partition(self, side_a: Iterable[str], side_b: Iterable[str],
                  symmetric: bool = True) -> None:
        """Cut every ``side_a -> side_b`` edge (and the reverse when
        ``symmetric``); nodes within one side keep communicating."""
        side_a = sorted(side_a)
        side_b = sorted(side_b)
        for a in side_a:
            for b in side_b:
                self.block(a, b)
                if symmetric:
                    self.block(b, a)

    def heal_partition(self, side_a: Iterable[str],
                       side_b: Iterable[str]) -> None:
        """Undo :meth:`partition` (both directions, idempotent)."""
        for a in sorted(side_a):
            for b in sorted(side_b):
                self.unblock(a, b)
                self.unblock(b, a)

    def isolate(self, node: str, others: Iterable[str]) -> None:
        """Cut ``node`` off from every node in ``others``, both ways."""
        self.partition([node], others)

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked

    @property
    def blocked_edges(self) -> List[Edge]:
        return sorted(self._blocked)

    # -- probabilistic loss ------------------------------------------------

    def set_loss(self, probability: float, src: Optional[str] = None,
                 dst: Optional[str] = None) -> None:
        """Set the drop probability for one edge, or the default for all
        edges when ``src``/``dst`` are omitted. 0 clears."""
        if not 0.0 <= probability < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1), got {probability}")
        if src is None and dst is None:
            self._default_loss = probability
            return
        if src is None or dst is None:
            raise ValueError("set_loss needs both src and dst, or neither")
        if probability == 0.0:
            self._loss.pop((src, dst), None)
        else:
            self._loss[(src, dst)] = probability

    def clear_loss(self) -> None:
        self._loss.clear()
        self._default_loss = 0.0

    def loss_probability(self, src: str, dst: str) -> float:
        return self._loss.get((src, dst), self._default_loss)

    # -- latency spikes ----------------------------------------------------

    def set_extra_latency(self, extra: float, src: Optional[str] = None,
                          dst: Optional[str] = None) -> None:
        """Add ``extra`` seconds of one-way delay on an edge, or on every
        edge when ``src``/``dst`` are omitted. 0 clears."""
        if extra < 0:
            raise ValueError(f"extra latency must be >= 0, got {extra}")
        if src is None and dst is None:
            self._default_extra_latency = extra
            return
        if src is None or dst is None:
            raise ValueError(
                "set_extra_latency needs both src and dst, or neither")
        if extra == 0.0:
            self._extra_latency.pop((src, dst), None)
        else:
            self._extra_latency[(src, dst)] = extra

    def clear_extra_latency(self) -> None:
        self._extra_latency.clear()
        self._default_extra_latency = 0.0

    def extra_latency(self, src: str, dst: str) -> float:
        return self._extra_latency.get((src, dst),
                                       self._default_extra_latency)

    # -- wholesale heal ----------------------------------------------------

    def heal(self) -> None:
        """Clear every configured fault (partitions, loss, spikes)."""
        self._blocked.clear()
        self.clear_loss()
        self.clear_extra_latency()

    # -- the per-message decision ------------------------------------------

    def apply(self, src: str, dst: str) -> Tuple[bool, float]:
        """Fault decision for one message on ``src -> dst``.

        Returns ``(dropped, extra_delay)``. Loss draws come from this
        object's own rng substream, so they happen only for edges with a
        configured loss probability and never perturb other streams.
        """
        if (src, dst) in self._blocked:
            self.stats.messages_blocked += 1
            return True, 0.0
        loss = self._loss.get((src, dst), self._default_loss)
        if loss > 0.0 and self.rng.random() < loss:
            self.stats.messages_lost += 1
            return True, 0.0
        extra = self._extra_latency.get((src, dst),
                                        self._default_extra_latency)
        if extra > 0.0:
            self.stats.messages_delayed += 1
        return False, extra
