"""Rack-aware network topology.

The paper's single-site deployment still has structure: replicas of a
shard are normally placed in distinct racks (fault domains), so a
primary's backup round trip crosses the ToR switches while a client in
the same rack reaches its server faster. :class:`RackTopology` gives the
network per-pair latency: intra-rack messages draw from one latency
model, cross-rack messages from another (typically ~2-4x the base).

Nodes not assigned to any rack fall back to the cross-rack model — the
conservative choice.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.rng import SeededRng
from .latency import JitteredLatency, LatencyModel

__all__ = ["RackTopology", "DEFAULT_INTRA_RACK", "DEFAULT_CROSS_RACK",
           "spread_replicas_across_racks"]


def DEFAULT_INTRA_RACK() -> JitteredLatency:
    """~20 µs one-way: a single ToR switch hop."""
    return JitteredLatency(base=20e-6, jitter_fraction=0.15)


def DEFAULT_CROSS_RACK() -> JitteredLatency:
    """~80 µs one-way: ToR -> aggregation -> ToR."""
    return JitteredLatency(base=80e-6, jitter_fraction=0.25)


class RackTopology:
    """Per-pair latency model based on rack placement."""

    def __init__(
        self,
        racks: Dict[str, Sequence[str]],
        intra_rack: Optional[LatencyModel] = None,
        cross_rack: Optional[LatencyModel] = None,
    ) -> None:
        self.intra_rack = intra_rack if intra_rack is not None \
            else DEFAULT_INTRA_RACK()
        self.cross_rack = cross_rack if cross_rack is not None \
            else DEFAULT_CROSS_RACK()
        self._rack_of: Dict[str, str] = {}
        for rack, nodes in racks.items():
            for node in nodes:
                if node in self._rack_of:
                    raise ValueError(
                        f"node {node!r} assigned to both "
                        f"{self._rack_of[node]!r} and {rack!r}")
                self._rack_of[node] = rack

    def rack_of(self, node: str) -> Optional[str]:
        return self._rack_of.get(node)

    def assign(self, node: str, rack: str) -> None:
        """Place (or move) a node into a rack."""
        self._rack_of[node] = rack

    def same_rack(self, a: str, b: str) -> bool:
        rack_a = self._rack_of.get(a)
        rack_b = self._rack_of.get(b)
        return rack_a is not None and rack_a == rack_b

    def latency_between(self, src: str, dst: str,
                        rng: SeededRng) -> float:
        """One delay draw for a src -> dst message."""
        if self.same_rack(src, dst):
            return self.intra_rack.sample(rng)
        return self.cross_rack.sample(rng)


def spread_replicas_across_racks(directory,
                                 num_racks: int = 3) -> Dict[str, list]:
    """Standard fault-domain placement: the i-th replica of every shard
    goes to rack i (mod num_racks), so no rack failure can take out a
    shard's majority when num_racks >= the replication factor."""
    racks: Dict[str, list] = {f"rack{r}": [] for r in range(num_racks)}
    for shard_name in directory.shard_names:
        shard = directory.shard(shard_name)
        for index, replica in enumerate(shard.replicas):
            racks[f"rack{index % num_racks}"].append(replica)
    return racks
