"""Simulated intra-data-center network: latency models, message fabric,
and a request/response RPC layer with retransmission and failure
injection."""

from .latency import (
    DEFAULT_DATACENTER_LATENCY,
    FixedLatency,
    JitteredLatency,
    LatencyModel,
)
from .faults import FaultStats, LinkFaults
from .network import Network, NetworkStats
from .topology import (
    DEFAULT_CROSS_RACK,
    DEFAULT_INTRA_RACK,
    RackTopology,
    spread_replicas_across_racks,
)
from .rpc import (
    AppError,
    DEFAULT_RPC_TIMEOUT,
    Request,
    Response,
    RpcError,
    RpcNode,
    RpcTimeout,
)

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "JitteredLatency",
    "DEFAULT_DATACENTER_LATENCY",
    "Network",
    "NetworkStats",
    "LinkFaults",
    "FaultStats",
    "RackTopology",
    "spread_replicas_across_racks",
    "DEFAULT_INTRA_RACK",
    "DEFAULT_CROSS_RACK",
    "RpcNode",
    "Request",
    "Response",
    "RpcError",
    "RpcTimeout",
    "AppError",
    "DEFAULT_RPC_TIMEOUT",
]
