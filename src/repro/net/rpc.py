"""Request/response RPC over the simulated network.

An :class:`RpcNode` owns a network inbox, a dispatch loop, and a handler
registry. Calls carry request ids unique per :class:`Network`;
retransmissions reuse the id, so servers see duplicates exactly the way
SEMEL's idempotence machinery expects (§3.3). One-way messages
(watermark broadcasts, async commit notifications) skip the response
path entirely.

Methods listed in the :mod:`repro.wire` registry are type-checked at
both ends: ``call``/``send_oneway`` reject request payloads that are not
the registered request message, and ``_serve`` turns a mistyped handler
result into an error response. Ad-hoc (non-dotted) methods — used by
net-layer tests and demos — bypass the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from ..sim.core import Simulator
from ..sim.events import PENDING, Event, Interrupt
from ..sim.process import Process
from ..wire.registry import spec_for
from ..wire.sizing import LENGTH_PREFIX_SIZE, SCALAR_SIZE, payload_size
from .network import Network

__all__ = [
    "Request",
    "Response",
    "RpcError",
    "RpcTimeout",
    "AppError",
    "RpcNode",
    "DEFAULT_RPC_TIMEOUT",
    "RETRY_BACKOFF_BASE",
    "RETRY_BACKOFF_CAP",
]

#: Generous relative to ~50 µs one-way latency; failed nodes answer never,
#: so this mostly bounds failure detection time in recovery tests.
DEFAULT_RPC_TIMEOUT = 10e-3

#: First retry backs off this long (doubling per attempt), scaled by a
#: deterministic jitter draw in [0.5, 1.5) so concurrent callers that
#: timed out together do not retry in lockstep during a partial outage.
RETRY_BACKOFF_BASE = 1e-3
RETRY_BACKOFF_CAP = 100e-3

#: Envelope overhead: request id (8) + ok/oneway flag (1).
_ENVELOPE_SIZE = SCALAR_SIZE + 1


class RpcError(Exception):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """No response within the deadline after all retries."""


class AppError(RpcError):
    """Raised by a handler; propagated to the caller as a failed call."""


@dataclass(frozen=True)
class Request:
    request_id: int
    src: str
    method: str
    payload: Any
    oneway: bool = False

    def wire_size(self) -> int:
        """Envelope + addressing + method tag + payload bytes."""
        return (_ENVELOPE_SIZE
                + LENGTH_PREFIX_SIZE + len(self.src.encode("utf-8"))
                + LENGTH_PREFIX_SIZE + len(self.method.encode("utf-8"))
                + payload_size(self.payload))


@dataclass(frozen=True)
class Response:
    request_id: int
    ok: bool
    payload: Any

    def wire_size(self) -> int:
        """Envelope + payload bytes."""
        return _ENVELOPE_SIZE + payload_size(self.payload)


def _check_request_payload(method: str, payload: Any) -> None:
    spec = spec_for(method)
    if spec is not None and not isinstance(payload, spec.request):
        raise TypeError(
            f"{method} request payload must be {spec.request.__name__}, "
            f"got {type(payload).__name__}")


class RpcNode:
    """A named endpoint that can serve handlers and make calls."""

    def __init__(self, sim: Simulator, network: Network, name: str) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self._inbox = network.register(name)
        self._handlers: Dict[str, Callable] = {}
        self._pending: Dict[int, Event] = {}
        # Per-node jitter stream for retry backoff. Substream derivation
        # draws nothing from the parent, and this stream is touched only
        # when a retry actually fires, so retry-free runs are unaffected.
        self._backoff_rng = network.rng.substream(f"backoff/{name}")
        #: Unexpected (non-AppError) exceptions raised by handlers; they
        #: are converted to error responses, and counted here so tests can
        #: assert nothing blew up silently.
        self.handler_errors = 0
        #: Live serve/call processes, so an amnesia crash can interrupt
        #: every in-flight handler (they reference volatile state through
        #: ``self`` and must not keep mutating it across a restart).
        self._procs: set = set()
        self.crashes = 0
        self._dispatcher = sim.process(self._dispatch_loop())

    # -- server side -------------------------------------------------------

    def register(self, method: str, handler: Callable) -> None:
        """Register a generator function ``handler(payload)`` for
        ``method``; its return value becomes the response payload.

        Dotted method names are protocol surface and must exist in the
        :mod:`repro.wire` registry; bare names are ad-hoc (tests, demos)
        and are accepted as-is.
        """
        if method in self._handlers:
            raise ValueError(f"handler for {method!r} already registered")
        if "." in method and spec_for(method) is None:
            raise ValueError(
                f"{method!r} is not in the repro.wire registry; add a "
                f"MethodSpec before registering a handler")
        self._handlers[method] = handler

    def _trace(self, message: str, **fields):
        tracer = getattr(self.network, "tracer", None)
        if tracer is not None:
            tracer.record("rpc", message, node=self.name, **fields)

    def _dispatch_loop(self):
        # Hot-path note: this generator runs once per delivered message on
        # every node. The loop-invariant lookups (inbox.get, the sim, the
        # pending-waiter pop) are hoisted into locals; all are safe because
        # crash/restart tears down this generator and builds a fresh one
        # (``_pending`` is ``.clear()``-ed, never reassigned, so the bound
        # ``pop`` stays valid across crashes within a single incarnation).
        sim = self.sim
        inbox_get = self._inbox.get
        new_process = sim.process
        track = self._track
        serve = self._serve
        pending_pop = self._pending.pop
        while True:
            message = yield inbox_get()
            tracer = sim.tracer
            if tracer is not None:
                # Sanitizer seam: this loop is a courier for unrelated
                # conversations — adopt the message's own causal clock
                # rather than accumulating one across all of them.
                tracer.adopt_payload(message)
            if isinstance(message, Request):
                self._trace("request", method=message.method,
                            request_id=message.request_id,
                            src=message.src)
                track(new_process(serve(message)))
            elif isinstance(message, Response):
                waiter = pending_pop(message.request_id, None)
                if waiter is not None and waiter._value is PENDING:
                    waiter.succeed(message)
                # else: duplicate or post-timeout response; drop.
            else:
                raise TypeError(f"unexpected message {message!r}")

    def _serve(self, request: Request):
        handler = self._handlers.get(request.method)
        if handler is None:
            if not request.oneway:
                self.network.send(self.name, request.src, Response(
                    request.request_id, ok=False,
                    payload=f"no handler for {request.method!r}"))
            return
        tracer = self.sim.tracer
        if tracer is not None:
            # Sanitizer seam: label this request's process so witnesses
            # report "rpc:milana.prepare" rather than a generator name.
            tracer.begin_section(f"rpc:{request.method}",
                                 f"{request.src}->{self.name}")
        try:
            result = yield from handler(request.payload)
            spec = spec_for(request.method)
            if spec is not None and not isinstance(result, spec.response):
                raise TypeError(
                    f"{request.method} handler must return "
                    f"{spec.response.__name__}, got "
                    f"{type(result).__name__}")
        except Interrupt:
            # Crash-kill: the node is going down mid-request; vanish
            # without a response (the network drops our traffic anyway).
            raise
        except AppError as exc:
            if not request.oneway:
                self.network.send(self.name, request.src, Response(
                    request.request_id, ok=False, payload=str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - fault isolation per request
            self.handler_errors += 1
            if not request.oneway:
                self.network.send(self.name, request.src, Response(
                    request.request_id, ok=False,
                    payload=f"{type(exc).__name__}: {exc}"))
            return
        if not request.oneway:
            self.network.send(self.name, request.src, Response(
                request.request_id, ok=True, payload=result))

    # -- client side ----------------------------------------------------------

    def call(
        self,
        dst: str,
        method: str,
        payload: Any = None,
        timeout: float = DEFAULT_RPC_TIMEOUT,
        retries: int = 0,
    ) -> Process:
        """Asynchronously call ``method`` on ``dst``.

        The returned process fires with the response payload; it fails
        with :class:`RpcTimeout` after ``1 + retries`` attempts, or with
        :class:`AppError` if the handler rejected the request. Retries
        reuse the request id, so the callee can deduplicate, and back
        off exponentially with deterministic jitter between attempts.
        """
        _check_request_payload(method, payload)
        proc = self.sim.process(
            self._call(dst, method, payload, timeout, retries))
        self._track(proc)
        return proc

    def send_oneway(self, dst: str, method: str, payload: Any = None) -> None:
        """Fire-and-forget one-way message."""
        _check_request_payload(method, payload)
        request = Request(self.network.next_request_id(), self.name,
                          method, payload, oneway=True)
        self.network.send(self.name, dst, request)

    #: Historical name for :meth:`send_oneway`.
    notify = send_oneway

    # -- crash / restart ---------------------------------------------------

    def _track(self, proc: Process) -> Process:
        self._procs.add(proc)
        proc.callbacks.append(self._untrack)
        return proc

    def _untrack(self, proc: Event) -> None:
        self._procs.discard(proc)

    def crash(self) -> None:
        """Amnesia fail-stop: kill the dispatcher and every in-flight
        serve/call process, forget queued inbox messages and pending
        response waiters. The caller is responsible for having the
        network drop this node's traffic first (``Network.crash``)."""
        if self._dispatcher.is_alive:
            self._dispatcher.interrupt("crash")
        for proc in list(self._procs):
            if proc.is_alive:
                proc.interrupt("crash")
        self._procs.clear()
        self._pending.clear()
        self._inbox.reset()
        self.crashes += 1

    def restart(self) -> None:
        """Re-arm a crashed node: fresh dispatcher, empty pending set."""
        if self._dispatcher.is_alive:
            raise RuntimeError(
                f"{self.name}: restart() while the dispatcher is alive; "
                f"crash() first")
        self._pending.clear()
        self._dispatcher = self.sim.process(self._dispatch_loop())

    def _call(self, dst: str, method: str, payload: Any,
              timeout: float, retries: int):
        request_id = self.network.next_request_id()
        request = Request(request_id, self.name, method, payload)
        attempts = 1 + max(0, retries)
        for attempt in range(attempts):
            waiter = self.sim.event()
            self._pending[request_id] = waiter
            self.network.send(self.name, dst, request)
            deadline = self.sim.timeout(timeout)
            outcome = yield self.sim.any_of([waiter, deadline])
            if waiter in outcome:
                response: Response = outcome[waiter]
                if response.ok:
                    return response.payload
                raise AppError(response.payload)
            self._pending.pop(request_id, None)
            if attempt + 1 < attempts:
                backoff = min(RETRY_BACKOFF_BASE * (2 ** attempt),
                              RETRY_BACKOFF_CAP)
                backoff *= 0.5 + self._backoff_rng.random()
                yield self.sim.timeout(backoff)
        raise RpcTimeout(
            f"{self.name} -> {dst}.{method}: no response after "
            f"{attempts} attempt(s) of {timeout}s")
