"""Network latency models.

The paper targets intra-data-center communication: VMs on one ExoGENI
site, where one-way latencies are tens of microseconds with modest jitter.
Latency models are sampled per message, so the network layer can also
reorder messages (a later send may arrive first) — which the inconsistent
replication protocol must tolerate by design.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..sim.rng import SeededRng

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "JitteredLatency",
    "DEFAULT_DATACENTER_LATENCY",
]


class LatencyModel(abc.ABC):
    """Samples a one-way message delay in seconds.

    ``bandwidth`` (bytes/second) adds a size-proportional transmission
    delay on top of the propagation draw; the default ``None`` charges
    nothing, preserving the pure-latency behaviour.
    """

    def __init__(self, bandwidth: Optional[float] = None) -> None:
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = bandwidth

    @abc.abstractmethod
    def sample(self, rng: SeededRng) -> float:
        """One delay draw."""

    def transmission_delay(self, size: int) -> float:
        """Seconds to push ``size`` wire bytes through the link."""
        if self.bandwidth is None or size <= 0:
            return 0.0
        return size / self.bandwidth


class FixedLatency(LatencyModel):
    """Constant one-way delay (useful for deterministic tests)."""

    def __init__(self, delay: float,
                 bandwidth: Optional[float] = None) -> None:
        super().__init__(bandwidth=bandwidth)
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, rng: SeededRng) -> float:
        return self.delay


class JitteredLatency(LatencyModel):
    """Base delay plus log-normal jitter — a standard DC latency shape.

    ``jitter_fraction`` scales the spread relative to the base; the draw is
    ``base * lognormal(0, sigma)`` clipped below at ``floor``.
    """

    def __init__(self, base: float, jitter_fraction: float = 0.2,
                 floor: float = 1e-6,
                 bandwidth: Optional[float] = None) -> None:
        super().__init__(bandwidth=bandwidth)
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        if jitter_fraction < 0:
            raise ValueError(
                f"jitter_fraction must be >= 0, got {jitter_fraction}")
        self.base = base
        self.jitter_fraction = jitter_fraction
        self.floor = floor

    def sample(self, rng: SeededRng) -> float:
        if self.jitter_fraction == 0:
            return max(self.base, self.floor)
        draw = self.base * rng.lognormvariate(0.0, self.jitter_fraction)
        return max(draw, self.floor)


def DEFAULT_DATACENTER_LATENCY() -> JitteredLatency:
    """~50 µs one-way with 20 % jitter: same-site VM-to-VM messaging."""
    return JitteredLatency(base=50e-6, jitter_fraction=0.2)
