"""Simulated message network between named nodes.

Every node owns an inbox (:class:`~repro.sim.resources.Store`). ``send``
delivers a message into the destination inbox after a latency-model draw;
messages may therefore arrive out of order. Failure injection:

* :meth:`crash` — the node stops receiving and sending (fail-stop, §4.5);
* :meth:`recover` — deliveries resume (the node's own state recovery is
  the business of the protocol layer, not the network);
* ``duplicate_probability`` — random duplicate delivery, for exercising
  SEMEL's at-most-once/idempotence machinery (§3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Set

from ..sim.core import Simulator
from ..sim.resources import Store
from ..sim.rng import SeededRng
from ..wire.sizing import wire_size_of
from .latency import DEFAULT_DATACENTER_LATENCY, LatencyModel

__all__ = ["Network", "NetworkStats"]


@dataclass
class NetworkStats:
    """Cumulative network activity counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    #: (src, dst) -> bytes put on that edge (duplicates charged twice;
    #: messages dropped at send time never reach the wire, so they are
    #: not charged).
    bytes_by_edge: Dict[tuple, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """All bytes transmitted, summed over edges."""
        return sum(self.bytes_by_edge.values())


class Network:
    """A latency-modelled, failure-injectable message fabric."""

    def __init__(
        self,
        sim: Simulator,
        rng: SeededRng,
        latency: LatencyModel = None,
        duplicate_probability: float = 0.0,
        topology=None,
    ) -> None:
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError(
                "duplicate_probability must be in [0, 1), got "
                f"{duplicate_probability}")
        self.sim = sim
        self.rng = rng.substream("network")
        self.latency = latency if latency is not None \
            else DEFAULT_DATACENTER_LATENCY()
        #: Optional rack-aware per-pair latency (overrides ``latency``
        #: when set); see :class:`repro.net.topology.RackTopology`.
        self.topology = topology
        self.duplicate_probability = duplicate_probability
        self.stats = NetworkStats()
        #: Optional repro.sim.trace.Tracer; categories used: "net".
        self.tracer = None
        self._inboxes: Dict[str, Store] = {}
        self._crashed: Set[str] = set()
        # Per-network RPC request ids: identical seeds give identical
        # traces regardless of what other Simulators ran in-process.
        self._request_ids = itertools.count(1)

    def next_request_id(self) -> int:
        """A fresh RPC request id, scoped to this network."""
        return next(self._request_ids)

    # -- membership ----------------------------------------------------------

    def register(self, name: str) -> Store:
        """Create (or return) the inbox for node ``name``."""
        if name not in self._inboxes:
            self._inboxes[name] = Store(self.sim)
        return self._inboxes[name]

    def is_registered(self, name: str) -> bool:
        return name in self._inboxes

    # -- failure injection -------------------------------------------------------

    def crash(self, name: str) -> None:
        """Fail-stop ``name``: drop all of its traffic until recovery."""
        self._crashed.add(name)

    def recover(self, name: str) -> None:
        """Allow traffic to/from ``name`` again."""
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        return name in self._crashed

    # -- messaging -------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> None:
        """Deliver ``message`` to ``dst`` after a latency draw.

        Silently drops traffic involving crashed nodes (fail-stop model —
        senders observe failures only as timeouts).
        """
        if dst not in self._inboxes:
            raise KeyError(f"unknown destination node {dst!r}")
        self.stats.messages_sent += 1
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            if self.tracer is not None:
                self.tracer.record("net", "drop", src=src, dst=dst,
                                   reason="crashed endpoint")
            return
        size = wire_size_of(message)
        if self.tracer is not None:
            self.tracer.record("net", "send", src=src, dst=dst,
                               kind=type(message).__name__, size=size)
        self._schedule_delivery(src, dst, message, size)
        if (self.duplicate_probability > 0
                and self.rng.random() < self.duplicate_probability):
            self.stats.messages_duplicated += 1
            self._schedule_delivery(src, dst, message, size)

    def _schedule_delivery(self, src: str, dst: str, message: Any,
                           size: int) -> None:
        if self.topology is not None:
            delay = self.topology.latency_between(src, dst, self.rng)
        else:
            delay = self.latency.sample(self.rng)
        delay += self.latency.transmission_delay(size)
        edge = (src, dst)
        self.stats.bytes_by_edge[edge] = \
            self.stats.bytes_by_edge.get(edge, 0) + size
        self.sim.process(self._deliver(src, dst, message, delay))

    def _deliver(self, src: str, dst: str, message: Any, delay: float):
        yield self.sim.timeout(delay)
        if dst in self._crashed or src in self._crashed:
            # Crashed while the message was in flight.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        yield self._inboxes[dst].put(message)
