"""Simulated message network between named nodes.

Every node owns an inbox (:class:`~repro.sim.resources.Store`). ``send``
delivers a message into the destination inbox after a latency-model draw;
messages may therefore arrive out of order. Failure injection:

* :meth:`crash` — the node stops receiving and sending (fail-stop, §4.5);
* :meth:`recover` — deliveries resume (the node's own state recovery is
  the business of the protocol layer, not the network);
* ``duplicate_probability`` — random duplicate delivery, for exercising
  SEMEL's at-most-once/idempotence machinery (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Set

from ..sim.core import Simulator
from ..sim.resources import Store
from ..sim.rng import SeededRng
from .latency import DEFAULT_DATACENTER_LATENCY, LatencyModel

__all__ = ["Network", "NetworkStats"]


@dataclass
class NetworkStats:
    """Cumulative network activity counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    bytes_by_edge: Dict[tuple, int] = field(default_factory=dict)


class Network:
    """A latency-modelled, failure-injectable message fabric."""

    def __init__(
        self,
        sim: Simulator,
        rng: SeededRng,
        latency: LatencyModel = None,
        duplicate_probability: float = 0.0,
        topology=None,
    ) -> None:
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError(
                "duplicate_probability must be in [0, 1), got "
                f"{duplicate_probability}")
        self.sim = sim
        self.rng = rng.substream("network")
        self.latency = latency if latency is not None \
            else DEFAULT_DATACENTER_LATENCY()
        #: Optional rack-aware per-pair latency (overrides ``latency``
        #: when set); see :class:`repro.net.topology.RackTopology`.
        self.topology = topology
        self.duplicate_probability = duplicate_probability
        self.stats = NetworkStats()
        #: Optional repro.sim.trace.Tracer; categories used: "net".
        self.tracer = None
        self._inboxes: Dict[str, Store] = {}
        self._crashed: Set[str] = set()

    # -- membership ----------------------------------------------------------

    def register(self, name: str) -> Store:
        """Create (or return) the inbox for node ``name``."""
        if name not in self._inboxes:
            self._inboxes[name] = Store(self.sim)
        return self._inboxes[name]

    def is_registered(self, name: str) -> bool:
        return name in self._inboxes

    # -- failure injection -------------------------------------------------------

    def crash(self, name: str) -> None:
        """Fail-stop ``name``: drop all of its traffic until recovery."""
        self._crashed.add(name)

    def recover(self, name: str) -> None:
        """Allow traffic to/from ``name`` again."""
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        return name in self._crashed

    # -- messaging -------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> None:
        """Deliver ``message`` to ``dst`` after a latency draw.

        Silently drops traffic involving crashed nodes (fail-stop model —
        senders observe failures only as timeouts).
        """
        if dst not in self._inboxes:
            raise KeyError(f"unknown destination node {dst!r}")
        self.stats.messages_sent += 1
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            if self.tracer is not None:
                self.tracer.record("net", "drop", src=src, dst=dst,
                                   reason="crashed endpoint")
            return
        if self.tracer is not None:
            self.tracer.record("net", "send", src=src, dst=dst,
                               kind=type(message).__name__)
        self._schedule_delivery(src, dst, message)
        if (self.duplicate_probability > 0
                and self.rng.random() < self.duplicate_probability):
            self.stats.messages_duplicated += 1
            self._schedule_delivery(src, dst, message)

    def _schedule_delivery(self, src: str, dst: str, message: Any) -> None:
        if self.topology is not None:
            delay = self.topology.latency_between(src, dst, self.rng)
        else:
            delay = self.latency.sample(self.rng)
        self.sim.process(self._deliver(src, dst, message, delay))

    def _deliver(self, src: str, dst: str, message: Any, delay: float):
        yield self.sim.timeout(delay)
        if dst in self._crashed or src in self._crashed:
            # Crashed while the message was in flight.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        yield self._inboxes[dst].put(message)
