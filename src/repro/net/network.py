"""Simulated message network between named nodes.

Every node owns an inbox (:class:`~repro.sim.resources.Store`). ``send``
delivers a message into the destination inbox after a latency-model draw;
messages may therefore arrive out of order. The fault model has three
layers (see DESIGN.md "Fault model" for the full taxonomy):

* **fail-stop crashes** — :meth:`crash` silently drops all traffic to and
  from a node until :meth:`recover`; senders observe the failure only as
  RPC timeouts (§4.5). Recovery of the node's *state* is the protocol
  layer's business, not the network's.
* **duplicate delivery** — ``duplicate_probability`` re-delivers a sent
  message with independent latency, exercising SEMEL's at-most-once and
  MILANA's idempotence machinery (§3.3).
* **link faults** — :meth:`install_faults` attaches a
  :class:`~repro.net.faults.LinkFaults` table of per-edge state: blocked
  directed edges (symmetric/asymmetric partitions), probabilistic message
  loss, and latency spikes. The table is consulted only while it has
  faults configured (``active``), and its loss draws come from a
  dedicated rng substream, so runs with no faults enabled are
  byte-identical to runs on a network that never installed the table.

Use :meth:`can_communicate` to ask whether a directed path is currently
healthy under all three layers; chaos schedulers (e.g.
``ChaosMonkey._quorum_safe``) must consult it rather than ``_crashed``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import heappush
from typing import Any, Dict, Optional, Set

from ..sim.core import Simulator
from ..sim.events import Event
from ..sim.resources import Store
from ..sim.rng import SeededRng
from ..wire.sizing import wire_size_of
from .faults import LinkFaults
from .latency import DEFAULT_DATACENTER_LATENCY, LatencyModel

__all__ = ["Network", "NetworkStats"]


class _Delivery(Event):
    """A scheduled message arrival, as one pre-succeeded heap entry.

    Construction is fully inlined in the style of
    :class:`~repro.sim.events.Timeout`: the event is born triggered,
    carries the message envelope in its own slots, and its single
    callback is the owning network's bound ``_finish_delivery``.
    """

    __slots__ = ("src", "dst", "message")

    def __init__(self, network: "Network", src: str, dst: str,
                 message: Any, delay: float) -> None:
        sim = network.sim
        self.sim = sim
        self.callbacks = [network._delivery_callback]
        self._value = None
        self._ok = True
        self._processed = False
        self.src = src
        self.dst = dst
        self.message = message
        seq = sim._seq
        heappush(sim._heap, (sim._now + delay, seq, self))
        sim._seq = seq + 1


@dataclass
class NetworkStats:
    """Cumulative network activity counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    #: All bytes transmitted, maintained as a running counter alongside
    #: ``bytes_by_edge`` (it is read every metrics window, so re-summing
    #: the per-edge dict there would be O(edges) per read).
    total_bytes: int = 0
    #: (src, dst) -> bytes put on that edge (duplicates charged twice;
    #: messages dropped at send time never reach the wire, so they are
    #: not charged).
    bytes_by_edge: Dict[tuple, int] = field(default_factory=dict)


class Network:
    """A latency-modelled, failure-injectable message fabric."""

    def __init__(
        self,
        sim: Simulator,
        rng: SeededRng,
        latency: LatencyModel = None,
        duplicate_probability: float = 0.0,
        topology=None,
    ) -> None:
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError(
                "duplicate_probability must be in [0, 1), got "
                f"{duplicate_probability}")
        self.sim = sim
        self.rng = rng.substream("network")
        self.latency = latency if latency is not None \
            else DEFAULT_DATACENTER_LATENCY()
        #: Optional rack-aware per-pair latency (overrides ``latency``
        #: when set); see :class:`repro.net.topology.RackTopology`.
        self.topology = topology
        self.duplicate_probability = duplicate_probability
        self.stats = NetworkStats()
        #: Optional repro.sim.trace.Tracer; categories used: "net".
        self.tracer = None
        self._inboxes: Dict[str, Store] = {}
        self._crashed: Set[str] = set()
        self._faults: Optional[LinkFaults] = None
        # Bound once so each fast-path delivery shares one callback
        # object instead of allocating a new bound method per message.
        self._delivery_callback = self._finish_delivery
        # Per-network RPC request ids: identical seeds give identical
        # traces regardless of what other Simulators ran in-process.
        self._request_ids = itertools.count(1)

    def next_request_id(self) -> int:
        """A fresh RPC request id, scoped to this network."""
        return next(self._request_ids)

    # -- membership ----------------------------------------------------------

    def register(self, name: str) -> Store:
        """Create (or return) the inbox for node ``name``."""
        if name not in self._inboxes:
            self._inboxes[name] = Store(self.sim)
        return self._inboxes[name]

    def is_registered(self, name: str) -> bool:
        return name in self._inboxes

    # -- failure injection -------------------------------------------------------

    def crash(self, name: str) -> None:
        """Fail-stop ``name``: drop all of its traffic until recovery."""
        self._crashed.add(name)

    def recover(self, name: str) -> None:
        """Allow traffic to/from ``name`` again."""
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        return name in self._crashed

    def install_faults(self) -> LinkFaults:
        """Attach (or return) the per-link fault table.

        Loss draws use the dedicated ``faults`` substream, so installing
        an empty table — or never calling this at all — leaves every
        other rng stream untouched.
        """
        if self._faults is None:
            self._faults = LinkFaults(self.rng.substream("faults"))
        return self._faults

    @property
    def faults(self) -> Optional[LinkFaults]:
        """The installed fault table, or None when never installed."""
        return self._faults

    def can_communicate(self, src: str, dst: str) -> bool:
        """True when a ``src -> dst`` message would currently be carried
        (no crashed endpoint, no blocked edge). Probabilistic loss does
        not count: the edge still exists."""
        if src in self._crashed or dst in self._crashed:
            return False
        if self._faults is not None and self._faults.is_blocked(src, dst):
            return False
        return True

    # -- messaging -------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> None:
        """Deliver ``message`` to ``dst`` after a latency draw.

        Silently drops traffic involving crashed nodes (fail-stop model —
        senders observe failures only as timeouts).
        """
        if dst not in self._inboxes:
            raise KeyError(f"unknown destination node {dst!r}")
        self.stats.messages_sent += 1
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            if self.tracer is not None:
                self.tracer.record("net", "drop", src=src, dst=dst,
                                   reason="crashed endpoint")
            return
        # Link faults are checked at send time: a message already in
        # flight when a partition begins is a packet on the wire and
        # still arrives. The `active` gate keeps the default path free
        # of fault-table lookups (and of loss-rng draws).
        extra_delay = 0.0
        if self._faults is not None and self._faults.active:
            dropped, extra_delay = self._faults.apply(src, dst)
            if dropped:
                self.stats.messages_dropped += 1
                if self.tracer is not None:
                    self.tracer.record("net", "drop", src=src, dst=dst,
                                       reason="link fault")
                return
        size = wire_size_of(message)
        if self.tracer is not None:
            self.tracer.record("net", "send", src=src, dst=dst,
                               kind=type(message).__name__, size=size)
        self._schedule_delivery(src, dst, message, size, extra_delay)
        if (self.duplicate_probability > 0
                and self.rng.random() < self.duplicate_probability):
            self.stats.messages_duplicated += 1
            self._schedule_delivery(src, dst, message, size, extra_delay)

    def _schedule_delivery(self, src: str, dst: str, message: Any,
                           size: int, extra_delay: float = 0.0) -> None:
        if self.topology is not None:
            delay = self.topology.latency_between(src, dst, self.rng)
        else:
            delay = self.latency.sample(self.rng)
        delay += self.latency.transmission_delay(size) + extra_delay
        stats = self.stats
        edge = (src, dst)
        stats.bytes_by_edge[edge] = stats.bytes_by_edge.get(edge, 0) + size
        stats.total_bytes += size
        # Fast path: a single arrival event per message instead of the
        # process/timeout/inbox-put chain (one heap entry rather than
        # four, and no generator frames). Kept to the no-active-faults
        # case so the legacy chain stays exercised under nemesis runs;
        # both paths draw latency identically above, re-check crashes at
        # arrival, and wake inbox getters in the same order, so the
        # message schedule is the same either way.
        if self._faults is not None and self._faults.active:
            self.sim.process(self._deliver(src, dst, message, delay))
        else:
            _Delivery(self, src, dst, message, delay)

    def _deliver(self, src: str, dst: str, message: Any, delay: float):
        yield self.sim.timeout(delay)
        if dst in self._crashed or src in self._crashed:
            # Crashed while the message was in flight.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        yield self._inboxes[dst].put(message)

    def _finish_delivery(self, event: "_Delivery") -> None:
        """Complete a fast-path arrival: the inline `_deliver` body."""
        src = event.src
        dst = event.dst
        if dst in self._crashed or src in self._crashed:
            # Crashed while the message was in flight.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        message = event.message
        sanitizer = self.sim.tracer
        if sanitizer is not None:
            # Sanitizer seam: remember the sender clock this message
            # carries so the receiver's dispatch loop can adopt it.
            sanitizer.tag_payload(message)
        inbox = self._inboxes[dst]
        getters = inbox._getters
        if getters:
            # Inline Store.put for the two common inbox states; the
            # bounded-and-full case falls back to the real put so
            # putter queueing stays in one place.
            getters.popleft().succeed(message)
        elif len(inbox._items) < inbox.capacity:
            inbox._items.append(message)
        else:
            inbox.put(message)
