"""Simulated message network between named nodes.

Every node owns an inbox (:class:`~repro.sim.resources.Store`). ``send``
delivers a message into the destination inbox after a latency-model draw;
messages may therefore arrive out of order. The fault model has three
layers (see DESIGN.md "Fault model" for the full taxonomy):

* **fail-stop crashes** — :meth:`crash` silently drops all traffic to and
  from a node until :meth:`recover`; senders observe the failure only as
  RPC timeouts (§4.5). Recovery of the node's *state* is the protocol
  layer's business, not the network's.
* **duplicate delivery** — ``duplicate_probability`` re-delivers a sent
  message with independent latency, exercising SEMEL's at-most-once and
  MILANA's idempotence machinery (§3.3).
* **link faults** — :meth:`install_faults` attaches a
  :class:`~repro.net.faults.LinkFaults` table of per-edge state: blocked
  directed edges (symmetric/asymmetric partitions), probabilistic message
  loss, and latency spikes. The table is consulted only while it has
  faults configured (``active``), and its loss draws come from a
  dedicated rng substream, so runs with no faults enabled are
  byte-identical to runs on a network that never installed the table.

Use :meth:`can_communicate` to ask whether a directed path is currently
healthy under all three layers; chaos schedulers (e.g.
``ChaosMonkey._quorum_safe``) must consult it rather than ``_crashed``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from ..sim.core import Simulator
from ..sim.resources import Store
from ..sim.rng import SeededRng
from ..wire.sizing import wire_size_of
from .faults import LinkFaults
from .latency import DEFAULT_DATACENTER_LATENCY, LatencyModel

__all__ = ["Network", "NetworkStats"]


@dataclass
class NetworkStats:
    """Cumulative network activity counters."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    #: (src, dst) -> bytes put on that edge (duplicates charged twice;
    #: messages dropped at send time never reach the wire, so they are
    #: not charged).
    bytes_by_edge: Dict[tuple, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """All bytes transmitted, summed over edges."""
        return sum(self.bytes_by_edge.values())


class Network:
    """A latency-modelled, failure-injectable message fabric."""

    def __init__(
        self,
        sim: Simulator,
        rng: SeededRng,
        latency: LatencyModel = None,
        duplicate_probability: float = 0.0,
        topology=None,
    ) -> None:
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError(
                "duplicate_probability must be in [0, 1), got "
                f"{duplicate_probability}")
        self.sim = sim
        self.rng = rng.substream("network")
        self.latency = latency if latency is not None \
            else DEFAULT_DATACENTER_LATENCY()
        #: Optional rack-aware per-pair latency (overrides ``latency``
        #: when set); see :class:`repro.net.topology.RackTopology`.
        self.topology = topology
        self.duplicate_probability = duplicate_probability
        self.stats = NetworkStats()
        #: Optional repro.sim.trace.Tracer; categories used: "net".
        self.tracer = None
        self._inboxes: Dict[str, Store] = {}
        self._crashed: Set[str] = set()
        self._faults: Optional[LinkFaults] = None
        # Per-network RPC request ids: identical seeds give identical
        # traces regardless of what other Simulators ran in-process.
        self._request_ids = itertools.count(1)

    def next_request_id(self) -> int:
        """A fresh RPC request id, scoped to this network."""
        return next(self._request_ids)

    # -- membership ----------------------------------------------------------

    def register(self, name: str) -> Store:
        """Create (or return) the inbox for node ``name``."""
        if name not in self._inboxes:
            self._inboxes[name] = Store(self.sim)
        return self._inboxes[name]

    def is_registered(self, name: str) -> bool:
        return name in self._inboxes

    # -- failure injection -------------------------------------------------------

    def crash(self, name: str) -> None:
        """Fail-stop ``name``: drop all of its traffic until recovery."""
        self._crashed.add(name)

    def recover(self, name: str) -> None:
        """Allow traffic to/from ``name`` again."""
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        return name in self._crashed

    def install_faults(self) -> LinkFaults:
        """Attach (or return) the per-link fault table.

        Loss draws use the dedicated ``faults`` substream, so installing
        an empty table — or never calling this at all — leaves every
        other rng stream untouched.
        """
        if self._faults is None:
            self._faults = LinkFaults(self.rng.substream("faults"))
        return self._faults

    @property
    def faults(self) -> Optional[LinkFaults]:
        """The installed fault table, or None when never installed."""
        return self._faults

    def can_communicate(self, src: str, dst: str) -> bool:
        """True when a ``src -> dst`` message would currently be carried
        (no crashed endpoint, no blocked edge). Probabilistic loss does
        not count: the edge still exists."""
        if src in self._crashed or dst in self._crashed:
            return False
        if self._faults is not None and self._faults.is_blocked(src, dst):
            return False
        return True

    # -- messaging -------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> None:
        """Deliver ``message`` to ``dst`` after a latency draw.

        Silently drops traffic involving crashed nodes (fail-stop model —
        senders observe failures only as timeouts).
        """
        if dst not in self._inboxes:
            raise KeyError(f"unknown destination node {dst!r}")
        self.stats.messages_sent += 1
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            if self.tracer is not None:
                self.tracer.record("net", "drop", src=src, dst=dst,
                                   reason="crashed endpoint")
            return
        # Link faults are checked at send time: a message already in
        # flight when a partition begins is a packet on the wire and
        # still arrives. The `active` gate keeps the default path free
        # of fault-table lookups (and of loss-rng draws).
        extra_delay = 0.0
        if self._faults is not None and self._faults.active:
            dropped, extra_delay = self._faults.apply(src, dst)
            if dropped:
                self.stats.messages_dropped += 1
                if self.tracer is not None:
                    self.tracer.record("net", "drop", src=src, dst=dst,
                                       reason="link fault")
                return
        size = wire_size_of(message)
        if self.tracer is not None:
            self.tracer.record("net", "send", src=src, dst=dst,
                               kind=type(message).__name__, size=size)
        self._schedule_delivery(src, dst, message, size, extra_delay)
        if (self.duplicate_probability > 0
                and self.rng.random() < self.duplicate_probability):
            self.stats.messages_duplicated += 1
            self._schedule_delivery(src, dst, message, size, extra_delay)

    def _schedule_delivery(self, src: str, dst: str, message: Any,
                           size: int, extra_delay: float = 0.0) -> None:
        if self.topology is not None:
            delay = self.topology.latency_between(src, dst, self.rng)
        else:
            delay = self.latency.sample(self.rng)
        delay += self.latency.transmission_delay(size) + extra_delay
        edge = (src, dst)
        self.stats.bytes_by_edge[edge] = \
            self.stats.bytes_by_edge.get(edge, 0) + size
        self.sim.process(self._deliver(src, dst, message, delay))

    def _deliver(self, src: str, dst: str, message: Any, delay: float):
        yield self.sim.timeout(delay)
        if dst in self._crashed or src in self._crashed:
            # Crashed while the message was in flight.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        yield self._inboxes[dst].put(message)
