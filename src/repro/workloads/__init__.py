"""Workload generators: Zipf key choice, the Retwis benchmark (Table 2),
and the single-SSD KV micro-benchmark (Table 1)."""

from .microbench import MicrobenchResult, run_kv_microbench
from .retwis import (
    RETWIS_MIX,
    RETWIS_MIX_75_READONLY,
    RetwisInstance,
    RetwisStats,
    TXN_TYPES,
)
from .ycsb import YCSB_WORKLOADS, YcsbInstance, YcsbStats
from .zipf import ZipfGenerator

__all__ = [
    "ZipfGenerator",
    "RetwisInstance",
    "RetwisStats",
    "RETWIS_MIX",
    "RETWIS_MIX_75_READONLY",
    "TXN_TYPES",
    "YcsbInstance",
    "YcsbStats",
    "YCSB_WORKLOADS",
    "MicrobenchResult",
    "run_kv_microbench",
]
