"""The Retwis benchmark (Table 2 of the paper).

Retwis is a Twitter-clone workload; the paper drives MILANA with four
transaction types:

=============  ===========  ========  ==========
Type           Num GETs     Num PUTs  Workload %
=============  ===========  ========  ==========
Add User       1            2         5
Follow User    2            2         10
Post Tweet     3            5         35
Get Timeline   rand(1,10)   0         50
=============  ===========  ========  ==========

Each client instance executes one transaction at a time and *retries an
aborted transaction with the same keys and without any wait* (§5.2). Keys
are drawn Zipf(α) to simulate key sharing; write keys overlap read keys
(read-modify-write) with extra keys appended when a type writes more than
it reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..milana.client import MilanaClient, TransactionAborted
from ..milana.transaction import COMMITTED
from ..sim.core import Simulator
from ..sim.process import Process
from ..sim.rng import SeededRng
from .zipf import ZipfGenerator

__all__ = ["RETWIS_MIX", "RetwisInstance", "RetwisStats", "TXN_TYPES"]

#: (name, num_gets or None for rand(1,10), num_puts, weight%)
RETWIS_MIX: List[Tuple[str, Optional[int], int, float]] = [
    ("add_user", 1, 2, 5.0),
    ("follow_user", 2, 2, 10.0),
    ("post_tweet", 3, 5, 35.0),
    ("get_timeline", None, 0, 50.0),
]

TXN_TYPES = [name for name, _, _, _ in RETWIS_MIX]

#: §5.2 / §5.3 variant: "75% read-only transactions (5%, 10%, 10% and 75%
#: breakdown)" — used for the latency/throughput and Centiman figures.
RETWIS_MIX_75_READONLY: List[Tuple[str, Optional[int], int, float]] = [
    ("add_user", 1, 2, 5.0),
    ("follow_user", 2, 2, 10.0),
    ("post_tweet", 3, 5, 10.0),
    ("get_timeline", None, 0, 75.0),
]


@dataclass
class RetwisStats:
    """Benchmark-level accounting (attempts vs. logical transactions)."""

    attempts: int = 0
    committed: int = 0
    aborted: int = 0
    retries: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)

    @property
    def abort_rate(self) -> float:
        decided = self.committed + self.aborted
        return self.aborted / decided if decided else 0.0


class RetwisInstance:
    """One Retwis benchmark instance bound to a MILANA client.

    ``run(duration)`` executes transactions back-to-back (closed loop,
    one outstanding transaction) until the deadline; aborted transactions
    are retried immediately with the same keys, up to ``max_retries``
    before the instance gives up on that logical transaction.
    """

    def __init__(
        self,
        sim: Simulator,
        client: MilanaClient,
        keys: Sequence[str],
        rng: SeededRng,
        alpha: float = 0.6,
        max_retries: int = 10,
        think_time: float = 0.0,
        mix: Optional[List[Tuple[str, Optional[int], int, float]]] = None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.keys = list(keys)
        self.rng = rng
        self.zipf = ZipfGenerator(rng.substream("zipf"), self.keys, alpha)
        self.max_retries = max_retries
        self.think_time = think_time
        self.mix = mix if mix is not None else RETWIS_MIX
        self.stats = RetwisStats()
        self._weights = [weight for _, _, _, weight in self.mix]
        self._total_weight = sum(self._weights)

    # -- transaction synthesis ------------------------------------------------

    def _pick_type(self) -> Tuple[str, int, int]:
        draw = self.rng.random() * self._total_weight
        acc = 0.0
        for name, gets, puts, weight in self.mix:
            acc += weight
            if draw <= acc:
                if gets is None:
                    gets = self.rng.randint(1, 10)
                return name, gets, puts
        name, gets, puts, _ = self.mix[-1]
        return name, gets if gets is not None else self.rng.randint(1, 10), \
            puts

    def _pick_keys(self, num_gets: int, num_puts: int) -> Tuple[list, list]:
        distinct = max(num_gets, num_puts)
        distinct = min(distinct, len(self.keys))
        chosen = self.zipf.draw_distinct(distinct)
        return chosen[:num_gets], chosen[:num_puts]

    # -- execution ------------------------------------------------------------------

    def run(self, duration: float) -> Process:
        """Run the closed loop until ``duration`` seconds from now."""
        return self.sim.process(self._loop(self.sim.now + duration))

    def run_transactions(self, count: int) -> Process:
        """Run exactly ``count`` logical transactions."""
        return self.sim.process(self._loop(None, count))

    def _loop(self, deadline: Optional[float],
              count: Optional[int] = None):
        done = 0
        while True:
            if deadline is not None and self.sim.now >= deadline:
                break
            if count is not None and done >= count:
                break
            name, num_gets, num_puts = self._pick_type()
            read_keys, write_keys = self._pick_keys(num_gets, num_puts)
            yield from self._run_with_retries(name, read_keys, write_keys)
            done += 1
            self.stats.by_type[name] = self.stats.by_type.get(name, 0) + 1
            if self.think_time > 0:
                yield self.sim.timeout(self.think_time)

    def _run_with_retries(self, name: str, read_keys: list,
                          write_keys: list):
        for attempt in range(1 + self.max_retries):
            outcome = yield from self._attempt(name, read_keys, write_keys)
            self.stats.attempts += 1
            if outcome == COMMITTED:
                self.stats.committed += 1
                return
            self.stats.aborted += 1
            if attempt < self.max_retries:
                self.stats.retries += 1
        # Gave up after max_retries; move on to the next transaction.

    def _attempt(self, name: str, read_keys: list, write_keys: list):
        client = self.client
        txn = client.begin()
        try:
            for key in read_keys:
                yield client.txn_get(txn, key)
        except TransactionAborted:
            client.abort(txn, "snapshot-miss")
            return "ABORTED"
        except Exception:
            client.abort(txn, "read-error")
            return "ABORTED"
        for key in write_keys:
            value = f"{name}:{client.client_id}@{txn.ts_begin:.6f}"
            client.put(txn, key, value)
        outcome = yield client.commit(txn)
        return outcome
