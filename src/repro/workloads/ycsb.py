"""YCSB-style workloads over MILANA transactions.

The Yahoo! Cloud Serving Benchmark core workloads, expressed as
single-operation or small transactions — the standard way downstream
users exercise a transactional KV store beyond the paper's Retwis mix:

========  =============================  =======================
Workload  Mix                            Distribution
========  =============================  =======================
A         50 % read / 50 % update        zipfian
B         95 % read / 5 % update         zipfian
C         100 % read                     zipfian
D         95 % read / 5 % insert         latest
E         95 % scan / 5 % insert         zipfian (scan len 1-10)
F         50 % read / 50 % read-modify-  zipfian
          write
========  =============================  =======================

Scans are modelled as multi-key snapshot reads within one transaction
(contiguous key ranks), which is what a scan over an ordered keyspace
costs in MILANA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..milana.client import MilanaClient, TransactionAborted
from ..milana.transaction import COMMITTED
from ..net.rpc import RpcError
from ..sim.core import Simulator
from ..sim.process import Process
from ..sim.rng import SeededRng
from .zipf import ZipfGenerator

__all__ = ["YCSB_WORKLOADS", "YcsbInstance", "YcsbStats"]

#: workload -> list of (operation, weight); operations are read / update /
#: insert / scan / rmw (read-modify-write).
YCSB_WORKLOADS: Dict[str, List[Tuple[str, float]]] = {
    "A": [("read", 50.0), ("update", 50.0)],
    "B": [("read", 95.0), ("update", 5.0)],
    "C": [("read", 100.0)],
    "D": [("read", 95.0), ("insert", 5.0)],
    "E": [("scan", 95.0), ("insert", 5.0)],
    "F": [("read", 50.0), ("rmw", 50.0)],
}


@dataclass
class YcsbStats:
    """Per-instance YCSB accounting."""

    operations: int = 0
    committed: int = 0
    aborted: int = 0
    inserts: int = 0
    by_operation: Dict[str, int] = field(default_factory=dict)

    @property
    def abort_rate(self) -> float:
        decided = self.committed + self.aborted
        return self.aborted / decided if decided else 0.0


class YcsbInstance:
    """One YCSB client loop bound to a MILANA client."""

    def __init__(
        self,
        sim: Simulator,
        client: MilanaClient,
        keys: Sequence[str],
        rng: SeededRng,
        workload: str = "B",
        alpha: float = 0.99,
        max_scan_length: int = 10,
        max_retries: int = 5,
    ) -> None:
        if workload not in YCSB_WORKLOADS:
            raise ValueError(
                f"unknown YCSB workload {workload!r}; expected one of "
                f"{sorted(YCSB_WORKLOADS)}")
        self.sim = sim
        self.client = client
        self.keys = list(keys)
        self.rng = rng
        self.workload = workload
        self.mix = YCSB_WORKLOADS[workload]
        self.alpha = alpha
        self.max_scan_length = max_scan_length
        self.max_retries = max_retries
        self.zipf = ZipfGenerator(rng.substream("zipf"), self.keys, alpha)
        self.stats = YcsbStats()
        self._insert_counter = 0
        self._total_weight = sum(weight for _, weight in self.mix)

    # -- key selection -------------------------------------------------------

    def _pick_operation(self) -> str:
        draw = self.rng.random() * self._total_weight
        acc = 0.0
        for operation, weight in self.mix:
            acc += weight
            if draw <= acc:
                return operation
        return self.mix[-1][0]

    def _pick_key(self) -> str:
        if self.workload == "D":
            # "Latest" distribution: newest inserts are hottest; fall
            # back to the base population when none inserted yet.
            if self._insert_counter and self.rng.random() < 0.5:
                recent = max(1, self._insert_counter - 10)
                index = self.rng.randint(recent, self._insert_counter)
                return self._inserted_key(index)
        return self.zipf.draw()

    def _inserted_key(self, index: int) -> str:
        return f"{self.client.name}:ins:{index}"

    def _scan_range(self) -> List[str]:
        start = self.rng.randint(0, len(self.keys) - 1)
        length = self.rng.randint(1, self.max_scan_length)
        return [self.keys[i % len(self.keys)]
                for i in range(start, start + length)]

    # -- execution ------------------------------------------------------------------

    def run_operations(self, count: int) -> Process:
        """Run exactly ``count`` YCSB operations (as transactions)."""
        return self.sim.process(self._loop(count=count))

    def run(self, duration: float) -> Process:
        """Run operations until ``duration`` seconds from now."""
        return self.sim.process(
            self._loop(deadline=self.sim.now + duration))

    def _loop(self, count: Optional[int] = None,
              deadline: Optional[float] = None):
        done = 0
        while True:
            if count is not None and done >= count:
                break
            if deadline is not None and self.sim.now >= deadline:
                break
            operation = self._pick_operation()
            yield from self._run_with_retries(operation)
            self.stats.operations += 1
            self.stats.by_operation[operation] = \
                self.stats.by_operation.get(operation, 0) + 1
            done += 1

    def _run_with_retries(self, operation: str):
        for _attempt in range(1 + self.max_retries):
            outcome = yield from self._attempt(operation)
            if outcome == COMMITTED:
                self.stats.committed += 1
                return
            self.stats.aborted += 1

    def _attempt(self, operation: str):
        client = self.client
        txn = client.begin()
        try:
            if operation == "read":
                yield client.txn_get(txn, self._pick_key())
            elif operation == "update":
                key = self._pick_key()
                client.put(txn, key, f"u@{txn.ts_begin:.6f}")
            elif operation == "insert":
                self._insert_counter += 1
                self.stats.inserts += 1
                client.put(txn, self._inserted_key(self._insert_counter),
                           f"i@{txn.ts_begin:.6f}")
            elif operation == "scan":
                for key in self._scan_range():
                    yield client.txn_get(txn, key)
            elif operation == "rmw":
                key = self._pick_key()
                value = yield client.txn_get(txn, key)
                client.put(txn, key, f"rmw({value})@{txn.ts_begin:.6f}")
            else:  # pragma: no cover - guarded by constructor
                raise AssertionError(operation)
        except TransactionAborted:
            client.abort(txn, "snapshot-miss")
            return "ABORTED"
        except RpcError:
            # Unreachable/lossy primary (fault injection): count it as an
            # aborted attempt rather than killing the workload loop.
            client.abort(txn, "read-error")
            return "ABORTED"
        outcome = yield client.commit(txn)
        return outcome
