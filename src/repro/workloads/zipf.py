"""Zipfian key selection.

The Retwis benchmark's *Contention parameter* α controls key sharing
between transactions (§5.2, Figures 6–9): higher α concentrates accesses
onto fewer hot keys. P(rank k) ∝ 1/k^α over ranks 1..n.

The CDF is precomputed once; each draw is a binary search — O(log n) per
sample, fine for the multi-million-sample runs the experiments do.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Sequence

from ..sim.rng import SeededRng

__all__ = ["ZipfGenerator"]


class ZipfGenerator:
    """Draws items from a sequence with Zipf(α) popularity by rank."""

    def __init__(self, rng: SeededRng, items: Sequence,
                 alpha: float) -> None:
        if not items:
            raise ValueError("need at least one item")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.rng = rng
        self.items = list(items)
        self.alpha = alpha
        weights = [1.0 / (rank ** alpha)
                   for rank in range(1, len(self.items) + 1)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    def draw(self):
        """One item, Zipf-distributed by rank."""
        u = self.rng.random()
        index = bisect_left(self._cdf, u)
        return self.items[index]

    def draw_distinct(self, count: int) -> list:
        """``count`` distinct items (count must not exceed the universe)."""
        if count > len(self.items):
            raise ValueError(
                f"cannot draw {count} distinct from {len(self.items)}")
        chosen = []
        seen = set()
        # Rejection sampling; with count << n this terminates fast even
        # under heavy skew because the tail is vast.
        while len(chosen) < count:
            item = self.draw()
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        return chosen
