"""KV micro-benchmark for Table 1: raw backend throughput and latency.

Mirrors §5.1's single-SSD experiment: the device is pre-populated, then a
closed-loop population of workers (the paper's hardware queue depth of 128
bounds outstanding requests) issues GET/PUT requests directly against the
backend with a configurable GET percentage. A background process advances
the GC watermark so version garbage collection runs during the
measurement, as in the paper's 15-minute runs.

Measurement excludes a warmup interval and reports:

* throughput (requests/second of simulated time);
* mean GET and PUT latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..ftl.base import KVBackend
from ..sim.core import Simulator
from ..sim.rng import SeededRng
from ..versioning import Version
from .zipf import ZipfGenerator

__all__ = ["MicrobenchResult", "run_kv_microbench"]


@dataclass
class MicrobenchResult:
    """Table 1 row material."""

    get_percent: float
    requests: int
    gets: int
    puts: int
    duration: float
    get_latency_total: float
    put_latency_total: float

    @property
    def throughput(self) -> float:
        """Requests per second of simulated time."""
        return self.requests / self.duration if self.duration else 0.0

    @property
    def mean_get_latency(self) -> float:
        return self.get_latency_total / self.gets if self.gets else 0.0

    @property
    def mean_put_latency(self) -> float:
        return self.put_latency_total / self.puts if self.puts else 0.0


def run_kv_microbench(
    sim: Simulator,
    backend: KVBackend,
    rng: SeededRng,
    num_keys: int,
    get_percent: float,
    duration: float,
    warmup: float = 0.05,
    num_workers: int = 128,
    alpha: float = 0.0,
    version_window: float = 0.2,
) -> MicrobenchResult:
    """Run the micro-benchmark to completion and return the result.

    ``num_workers`` is the closed-loop population (the paper's queue
    depth). ``version_window`` mimics the paper's "keep versions less
    than N seconds old" GC window via watermark advancement.
    """
    if not 0.0 <= get_percent <= 100.0:
        raise ValueError(f"get_percent must be in [0, 100]: {get_percent}")
    keys = [f"mb:{i}" for i in range(num_keys)]
    backend.bulk_load(
        (key, f"init-{key}", Version(-1e6, 0)) for key in keys)

    zipf = ZipfGenerator(rng.substream("keys"), keys, alpha)
    op_rng = rng.substream("ops")
    put_counter = itertools.count(1)
    measuring_from = sim.now + warmup
    deadline = sim.now + warmup + duration
    result = MicrobenchResult(
        get_percent=get_percent, requests=0, gets=0, puts=0,
        duration=duration, get_latency_total=0.0, put_latency_total=0.0)

    def watermark_daemon():
        while sim.now < deadline:
            backend.set_watermark(sim.now - version_window)
            yield sim.timeout(version_window / 4)

    def worker(worker_id: int):
        while sim.now < deadline:
            key = zipf.draw()
            is_get = op_rng.random() * 100.0 < get_percent
            start = sim.now
            if is_get:
                yield backend.get(key)
            else:
                version = Version(sim.now, worker_id)
                _ = next(put_counter)
                yield backend.put(key, f"v@{start:.6f}", version)
            latency = sim.now - start
            if start >= measuring_from:
                result.requests += 1
                if is_get:
                    result.gets += 1
                    result.get_latency_total += latency
                else:
                    result.puts += 1
                    result.put_latency_total += latency

    sim.process(watermark_daemon())
    workers = [sim.process(worker(i + 1)) for i in range(num_workers)]
    for proc in workers:
        sim.run_until_event(proc)
    return result
