"""Consistent snapshot export and restore.

Multi-version storage makes online backup trivial (§3.3: "SEMEL also
permits snapshot reads in the past"): pick a timestamp T at or above the
GC watermark and read every key as of T — no quiescing, no locking, and
writers keep committing while the export runs, because versions newer
than T simply don't appear in the snapshot.

:func:`export_snapshot` runs through the normal client read path (so it
exercises sharding, RPC, and snapshot reads end to end);
:func:`restore_snapshot` bulk-loads the frozen state into a fresh
cluster's replicas, stamping everything with the snapshot's timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..sim.process import Process
from ..versioning import Version

__all__ = ["Snapshot", "export_snapshot", "restore_snapshot"]


@dataclass
class Snapshot:
    """A frozen, consistent view of a key set at one timestamp."""

    timestamp: float
    #: key -> (version, value); keys with no version at T are absent.
    entries: Dict[str, tuple] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def value_of(self, key: str) -> Any:
        return self.entries[key][1]


def export_snapshot(client, keys: Sequence[str],
                    at: float, parallelism: int = 16) -> Process:
    """Export ``keys`` as of timestamp ``at`` through ``client``.

    ``client`` is a :class:`~repro.semel.client.SemelClient`; reads run
    ``parallelism`` at a time. Fires with a :class:`Snapshot`.
    """
    return client.sim.process(
        _export(client, list(keys), at, parallelism))


def _export(client, keys: List[str], at: float, parallelism: int):
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    snapshot = Snapshot(timestamp=at)
    for start in range(0, len(keys), parallelism):
        batch = keys[start:start + parallelism]
        reads = [(key, client.get(key, at=at)) for key in batch]
        for key, read in reads:
            result = yield read
            if result is not None:
                version, value = result
                snapshot.entries[key] = (version, value)
    return snapshot


def restore_snapshot(cluster, snapshot: Snapshot) -> int:
    """Bulk-load a snapshot into every replica of a (fresh) cluster.

    Each value is stamped with the snapshot's own timestamp (client id 0),
    so post-restore reads at or after ``snapshot.timestamp`` see exactly
    the exported state. Returns the number of keys restored.
    """
    version = Version(snapshot.timestamp, 0)
    per_server: Dict[str, list] = {name: [] for name in cluster.servers}
    for key, (_original_version, value) in snapshot.entries.items():
        shard = cluster.directory.shard_of(key)
        for replica in shard.replicas:
            per_server[replica].append((key, value, version))
    for server_name, items in per_server.items():
        if items:
            cluster.servers[server_name].backend.bulk_load(items)
    return len(snapshot.entries)
