"""Quorum helpers for SEMEL's lightweight inconsistent replication (§3.2).

SEMEL commits an update as soon as a majority of replicas acknowledge it,
with **no ordering requirement** between updates: each backup applies
whatever arrives, in whatever order, because version timestamps make the
order recoverable. Concretely the primary sends an update to its 2f
backups and waits for the first f acknowledgements (itself being the
(f+1)-th copy).

:func:`replicate_to_backups` spawns all the calls, fires as soon as the
quorum is met, and leaves the stragglers running in the background — this
is exactly the relaxed-backup-update behaviour of the paper's Figure 5.
"""

from __future__ import annotations

from typing import Any, List

from ..net.rpc import RpcError, RpcNode

__all__ = ["QuorumError", "replicate_to_backups"]


class QuorumError(Exception):
    """Fewer than the required number of backups acknowledged."""


def replicate_to_backups(
    node: RpcNode,
    backups: List[str],
    method: str,
    payload: Any,
    need_acks: int,
    timeout: float = 10e-3,
):
    """Generator: send ``method`` to every backup, return after
    ``need_acks`` succeed.

    Raises :class:`QuorumError` once enough backups have *failed* that the
    quorum can no longer be reached. Late acknowledgements beyond the
    quorum are simply absorbed by the still-running call processes.
    """
    if need_acks <= 0:
        return 0
    if need_acks > len(backups):
        raise QuorumError(
            f"need {need_acks} acks but only {len(backups)} backups")

    sim = node.sim
    quorum = sim.event()
    state = {"acks": 0, "failures": 0}

    def tracked_call(backup: str):
        try:
            yield node.call(backup, method, payload, timeout=timeout)
        except RpcError:
            state["failures"] += 1
            if (not quorum.triggered
                    and len(backups) - state["failures"] < need_acks):
                quorum.fail(QuorumError(
                    f"{method}: only {len(backups) - state['failures']} "
                    f"backups reachable, need {need_acks}"))
            return
        state["acks"] += 1
        if not quorum.triggered and state["acks"] >= need_acks:
            quorum.succeed(state["acks"])

    for backup in backups:
        sim.process(tracked_call(backup))
    result = yield quorum
    return result
