"""Watermark tracking for garbage collection (§3.1 / §4.4).

Each client periodically broadcasts the timestamp of its last acknowledged
(SEMEL) or last decided (MILANA) operation to all storage servers; the
minimum over all clients is the watermark. Because synchronized clocks are
monotonic, no client will ever issue an operation — or begin a transaction
— with a timestamp below the watermark, so GC may discard every version
older than the youngest one at or below it.

A server cannot take the min until it has heard from *every* registered
client (an absent client might be running an old transaction), so the
tracker starts at -inf and only advances once all expected clients have
reported.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

__all__ = ["WatermarkTracker"]


class WatermarkTracker:
    """Server-side aggregation of client low-water timestamps."""

    def __init__(self, expected_clients: Optional[Iterable[int]] = None) -> None:
        self._reported: Dict[int, float] = {}
        self._expected = set(expected_clients) if expected_clients else None

    def expect(self, client_id: int) -> None:
        """Add a client whose report must arrive before the min counts."""
        if self._expected is None:
            self._expected = set()
        self._expected.add(client_id)
        self._reported.setdefault(client_id, float("-inf"))

    def report(self, client_id: int, timestamp: float) -> None:
        """Record a client's low-water timestamp (monotonic per client)."""
        current = self._reported.get(client_id, float("-inf"))
        self._reported[client_id] = max(current, timestamp)
        if self._expected is not None:
            self._expected.add(client_id)

    @property
    def watermark(self) -> float:
        """Min over all expected clients; -inf until everyone reported."""
        if not self._reported:
            return float("-inf")
        if self._expected is not None:
            missing = self._expected - set(self._reported)
            if missing:
                return float("-inf")
        return min(self._reported.values())

    def forget(self, client_id: int) -> None:
        """Drop a departed client so it stops holding the watermark back."""
        self._reported.pop(client_id, None)
        if self._expected is not None:
            self._expected.discard(client_id)
