"""SEMEL client library (§3).

Runs on application servers. The client stamps every operation with its
synchronized clock, routes it to the owning shard's primary via the
directory, and periodically broadcasts its last-acknowledged timestamp to
all storage servers for watermark-based GC.

API (mirrors the paper):

* ``put(key, value)`` — create a new version stamped
  ``(t_current, client_id)``;
* ``get(key)`` — youngest version with timestamp <= t_current; MILANA
  extends this with explicit snapshot timestamps via ``at=``;
* ``delete(key)`` — drop all versions.

All operations return simulation processes.
"""

from __future__ import annotations

from typing import Any, Optional

from ..clocks.base import Clock
from ..net.network import Network
from ..net.rpc import RpcNode
from ..sim.core import Simulator
from ..sim.process import Process
from ..versioning import Version
from ..wire import (
    SemelDelete,
    SemelGet,
    SemelGetHistory,
    SemelPut,
    WatermarkReport,
)
from .sharding import Directory

__all__ = ["SemelClient", "DEFAULT_WATERMARK_INTERVAL"]

#: How often a client broadcasts its watermark contribution (seconds).
DEFAULT_WATERMARK_INTERVAL = 0.1


class SemelClient:
    """Client-side SEMEL library with a unique id and a local clock."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: Directory,
        clock: Clock,
        client_id: int,
        name: Optional[str] = None,
        rpc_timeout: float = 10e-3,
        rpc_retries: int = 2,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.clock = clock
        self.client_id = client_id
        self.name = name or f"semel-client-{client_id}"
        self.node = RpcNode(sim, network, self.name)
        self.rpc_timeout = rpc_timeout
        self.rpc_retries = rpc_retries
        #: Timestamp of the last acknowledged operation; the client's
        #: contribution to the global watermark.
        self.last_acked_timestamp = float("-inf")
        self._watermark_daemon: Optional[Process] = None

    # -- data operations -----------------------------------------------------

    def put(self, key: str, value: Any) -> Process:
        """Write a new version of ``key``; fires with the version used."""
        return self.sim.process(self._put(key, value))

    def get(self, key: str, at: Optional[float] = None) -> Process:
        """Read ``key``; fires with ``(version, value)`` or ``None``.

        ``at`` requests a snapshot read at a past timestamp (non-
        linearizable by choice, §3.3); default is the client's current
        clock reading.
        """
        return self.sim.process(self._get(key, at))

    def delete(self, key: str) -> Process:
        """Drop all versions of ``key``."""
        return self.sim.process(self._delete(key))

    def get_history(self, key: str, from_timestamp: float,
                    to_timestamp: float) -> Process:
        """Every retained version of ``key`` in a time range, oldest
        first; fires with a list of (version, value) pairs.

        Availability is bounded by the GC watermark — widen the retention
        window (slow down watermark broadcasts) for analytics workloads
        that need deeper history (§3.1).
        """
        return self.sim.process(
            self._get_history(key, from_timestamp, to_timestamp))

    def _get_history(self, key: str, from_timestamp: float,
                     to_timestamp: float):
        primary = self.directory.primary_of(key)
        reply = yield self.node.call(
            primary, "semel.get_history",
            SemelGetHistory(key=key, from_timestamp=from_timestamp,
                            to_timestamp=to_timestamp),
            timeout=self.rpc_timeout, retries=self.rpc_retries)
        return [(Version(*version), value)
                for version, value in reply.versions]

    def _put(self, key: str, value: Any):
        version = Version(self.clock.now(), self.client_id)
        primary = self.directory.primary_of(key)
        yield self.node.call(
            primary, "semel.put",
            SemelPut(key=key, value=value, version=tuple(version)),
            timeout=self.rpc_timeout, retries=self.rpc_retries)
        self._acked(version.timestamp)
        return version

    def _get(self, key: str, at: Optional[float]):
        max_timestamp = at if at is not None else self.clock.now()
        primary = self.directory.primary_of(key)
        reply = yield self.node.call(
            primary, "semel.get",
            SemelGet(key=key, max_timestamp=max_timestamp),
            timeout=self.rpc_timeout, retries=self.rpc_retries)
        self._acked(max_timestamp)
        if not reply.found:
            return None
        return Version(*reply.version), reply.value

    def _delete(self, key: str):
        primary = self.directory.primary_of(key)
        yield self.node.call(
            primary, "semel.delete", SemelDelete(key=key),
            timeout=self.rpc_timeout, retries=self.rpc_retries)
        self._acked(self.clock.now())

    def _acked(self, timestamp: float) -> None:
        self.last_acked_timestamp = max(
            self.last_acked_timestamp, timestamp)

    # -- watermark broadcasting ------------------------------------------------

    def broadcast_watermark(self) -> None:
        """Send this client's low-water timestamp to every server."""
        if self.last_acked_timestamp == float("-inf"):
            return
        report = WatermarkReport(client_id=self.client_id,
                                 timestamp=self.last_acked_timestamp)
        for server in self.directory.all_servers():
            self.node.send_oneway(server, "semel.watermark", report)

    def start_watermark_daemon(
            self, interval: float = DEFAULT_WATERMARK_INTERVAL) -> Process:
        """Broadcast the watermark every ``interval`` seconds."""
        if self._watermark_daemon is None:
            self._watermark_daemon = self.sim.process(
                self._watermark_loop(interval))
        return self._watermark_daemon

    def _watermark_loop(self, interval: float):
        while True:
            yield self.sim.timeout(interval)
            self.broadcast_watermark()
