"""SEMEL: a replicated multi-version key-value store on precision time.

The storage half of the paper: sharded, primary/backup-replicated,
timestamp-versioned KV storage with lightweight *inconsistent* replication
(no ordering between updates — version stamps recover order), watermark-
based garbage collection, and linearizable single-key RPCs.
"""

from .client import DEFAULT_WATERMARK_INTERVAL, SemelClient
from .master import (
    DEFAULT_FAILURE_TIMEOUT,
    DEFAULT_HEARTBEAT_INTERVAL,
    HeartbeatReporter,
    Master,
)
from .replication import QuorumError, replicate_to_backups
from .server import StorageServer
from .sharding import Directory, HashRing, ShardInfo
from .snapshot import Snapshot, export_snapshot, restore_snapshot
from .watermark import WatermarkTracker

__all__ = [
    "SemelClient",
    "DEFAULT_WATERMARK_INTERVAL",
    "Master",
    "HeartbeatReporter",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_FAILURE_TIMEOUT",
    "StorageServer",
    "Directory",
    "HashRing",
    "ShardInfo",
    "WatermarkTracker",
    "Snapshot",
    "export_snapshot",
    "restore_snapshot",
    "QuorumError",
    "replicate_to_backups",
]
