"""Key-space sharding and the global shard directory.

§3: "The client library coordinates with a global master to map each key
to a data shard and to the shard's primary replica using standard
techniques (e.g., consistent hashing). The master maintains the shard maps
based on its global view of participating servers."

We implement a consistent-hash ring with virtual nodes mapping keys to
shards, and a :class:`Directory` playing the master's role: it tracks each
shard's replica set and primary, and performs promotion on failover. As in
real deployments (ZooKeeper et al.), the map changes rarely; we let
clients and servers read the directory object directly rather than paying
an RPC per lookup, and document that as the standard client-side caching
of shard maps.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence

__all__ = ["HashRing", "ShardInfo", "Directory"]


def _stable_hash(value: str) -> int:
    """A process-independent 64-bit hash (Python's hash() is salted)."""
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Keys map to the first point on the ring at or after their hash. Adding
    or removing one shard moves only ~1/n of the key space.
    """

    def __init__(self, shards: Sequence[str], vnodes: int = 64) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        for shard in shards:
            for replica_index in range(vnodes):
                point = _stable_hash(f"{shard}#{replica_index}")
                self._points.append(point)
                self._owners.append(shard)
        order = sorted(range(len(self._points)),
                       key=lambda i: self._points[i])
        self._points = [self._points[i] for i in order]
        self._owners = [self._owners[i] for i in order]

    def owner_of(self, key: str) -> str:
        """The shard owning ``key``."""
        point = _stable_hash(key)
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]


class ShardInfo:
    """Replica membership for one shard; replicas[0] is the primary."""

    def __init__(self, name: str, replicas: Sequence[str]) -> None:
        if not replicas:
            raise ValueError(f"shard {name!r} needs at least one replica")
        self.name = name
        self.replicas = list(replicas)

    @property
    def primary(self) -> str:
        return self.replicas[0]

    @property
    def backups(self) -> List[str]:
        return self.replicas[1:]

    @property
    def replication_factor(self) -> int:
        return len(self.replicas)

    @property
    def fault_tolerance(self) -> int:
        """f such that the shard has 2f+1 replicas (majority = f+1)."""
        return (len(self.replicas) - 1) // 2

    def promote(self, new_primary: str) -> None:
        """Make ``new_primary`` (an existing replica) the primary."""
        if new_primary not in self.replicas:
            raise ValueError(
                f"{new_primary!r} is not a replica of shard {self.name!r}")
        self.replicas.remove(new_primary)
        self.replicas.insert(0, new_primary)

    def remove_replica(self, server: str) -> None:
        """Drop a failed replica from the membership."""
        self.replicas.remove(server)


class Directory:
    """The global master's shard map."""

    def __init__(self, shards: Dict[str, Sequence[str]],
                 vnodes: int = 64) -> None:
        self._shards: Dict[str, ShardInfo] = {
            name: ShardInfo(name, replicas)
            for name, replicas in shards.items()
        }
        self._ring = HashRing(sorted(self._shards), vnodes=vnodes)

    @property
    def shard_names(self) -> List[str]:
        return sorted(self._shards)

    def shard_of(self, key: str) -> ShardInfo:
        """Shard owning ``key``."""
        return self._shards[self._ring.owner_of(key)]

    def shard(self, name: str) -> ShardInfo:
        return self._shards[name]

    def primary_of(self, key: str) -> str:
        """Current primary server for ``key``'s shard."""
        return self.shard_of(key).primary

    def all_servers(self) -> List[str]:
        servers: List[str] = []
        for shard in self._shards.values():
            servers.extend(shard.replicas)
        return servers

    def all_primaries(self) -> List[str]:
        return [self._shards[name].primary for name in self.shard_names]

    def promote(self, shard_name: str, new_primary: str) -> None:
        """Failover: make ``new_primary`` the primary of ``shard_name``."""
        self._shards[shard_name].promote(new_primary)
