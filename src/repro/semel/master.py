"""The global master: membership, failure detection, auto-failover.

§3 of the paper delegates shard-map maintenance to a global master "based
on its global view of participating servers ... implemented using
standard techniques (e.g., Apache Zookeeper)". This module provides that
service as an active node rather than a passive map:

* storage servers send periodic **heartbeats**; the master declares a
  server dead after ``failure_timeout`` of silence;
* when a dead server was a shard **primary**, the master runs failover:
  it picks the healthiest surviving replica, bumps the shard's **epoch**,
  promotes in the directory, and drives
  :func:`~repro.milana.recovery.recover_primary` on the new primary;
* when a dead server was a **backup**, the master only records it — the
  quorum math (f of 2f) already tolerates it;
* recovered servers resume heartbeating and are marked alive again.

Epochs let late observers order promotions; clients consult the shared
directory object (the standard client-side shard-map cache) which the
master mutates atomically at promotion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..milana.recovery import RecoveryError, recover_primary
from ..net.network import Network
from ..net.rpc import RpcNode
from ..sim.core import Simulator
from ..sim.process import Process
from ..wire import (
    MasterHeartbeat,
    MasterHeartbeatReply,
    MasterLookup,
    MasterLookupReply,
)
from .sharding import Directory

__all__ = ["Master", "HeartbeatReporter", "DEFAULT_HEARTBEAT_INTERVAL",
           "DEFAULT_FAILURE_TIMEOUT"]

DEFAULT_HEARTBEAT_INTERVAL = 10e-3
DEFAULT_FAILURE_TIMEOUT = 35e-3


@dataclass
class _ServerHealth:
    last_heartbeat: float = float("-inf")
    alive: bool = True


class Master:
    """Failure detector and failover coordinator for the cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: Directory,
        servers: Dict[str, "MilanaServer"],  # noqa: F821
        name: str = "master",
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        failure_timeout: float = DEFAULT_FAILURE_TIMEOUT,
        lease_wait: float = 30e-3,
        on_failover: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_timeout <= heartbeat_interval:
            raise ValueError(
                f"failure_timeout {failure_timeout} must exceed the "
                f"heartbeat interval {heartbeat_interval}")
        self.sim = sim
        self.directory = directory
        self.servers = servers
        self.name = name
        self.heartbeat_interval = heartbeat_interval
        self.failure_timeout = failure_timeout
        self.lease_wait = lease_wait
        self.on_failover = on_failover
        self.node = RpcNode(sim, network, name)
        self.node.register("master.heartbeat", self._handle_heartbeat)
        self.node.register("master.lookup", self._handle_lookup)
        self._health: Dict[str, _ServerHealth] = {
            server: _ServerHealth() for server in directory.all_servers()
        }
        #: shard -> promotion epoch; bumped on every failover.
        self.epochs: Dict[str, int] = {
            shard: 0 for shard in directory.shard_names
        }
        self.failovers: List[tuple] = []
        self._failing_over: set = set()
        self._detector: Optional[Process] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> Process:
        """Begin failure detection; returns the detector process."""
        if self._detector is None:
            self._detector = self.sim.process(self._detector_loop())
        return self._detector

    # -- handlers ----------------------------------------------------------------

    def _handle_heartbeat(self, request: MasterHeartbeat):
        yield from ()
        health = self._health.setdefault(request.server, _ServerHealth())
        health.last_heartbeat = self.sim.now
        if not health.alive:
            health.alive = True
        return MasterHeartbeatReply(
            epoch=self.epochs.get(request.shard, 0))

    def _handle_lookup(self, request: MasterLookup):
        """Serve the shard map over RPC (clients normally read the cached
        directory object; this is the cold-start / refresh path)."""
        yield from ()
        if request.key is not None:
            shard = self.directory.shard_of(request.key)
            return MasterLookupReply(
                shard=shard.name,
                primary=shard.primary,
                replicas=tuple(shard.replicas),
                epoch=self.epochs[shard.name],
            )
        return MasterLookupReply(shards={
            name: {
                "primary": self.directory.shard(name).primary,
                "replicas": list(self.directory.shard(name).replicas),
                "epoch": self.epochs[name],
            }
            for name in self.directory.shard_names
        })

    # -- failure detection -------------------------------------------------------------

    def is_alive(self, server: str) -> bool:
        health = self._health.get(server)
        if health is None:
            return False
        if health.last_heartbeat == float("-inf"):
            # Never heard from it; give it a grace period from time 0.
            return self.sim.now < self.failure_timeout
        return (self.sim.now - health.last_heartbeat
                < self.failure_timeout)

    def _detector_loop(self):
        while True:
            yield self.sim.timeout(self.heartbeat_interval)
            for shard_name in self.directory.shard_names:
                shard = self.directory.shard(shard_name)
                primary = shard.primary
                if (not self.is_alive(primary)
                        and shard_name not in self._failing_over):
                    self._failing_over.add(shard_name)
                    self.sim.process(self._failover(shard_name, primary))

    def _pick_successor(self, shard_name: str) -> Optional[str]:
        shard = self.directory.shard(shard_name)
        for replica in shard.replicas:
            if self.is_alive(replica):
                return replica
        return None

    def _failover(self, shard_name: str, dead_primary: str):
        """Promote a live replica and drive recovery to completion.

        Recovery can fail transiently (no majority reachable); the loop
        re-evaluates cluster state and retries until the shard has a
        live, recovered primary — including picking a different successor
        if the first choice dies mid-recovery.
        """
        try:
            while True:
                shard = self.directory.shard(shard_name)
                current = shard.primary
                current_server = self.servers.get(current)
                if (self.is_alive(current) and current_server is not None
                        and current_server.serving_after <= self.sim.now):
                    return  # healthy and serving; nothing to do
                successor = self._pick_successor(shard_name)
                if successor is None:
                    # No live replica at all; wait for one to return.
                    yield self.sim.timeout(self.failure_timeout)
                    continue
                if successor != current:
                    self.directory.promote(shard_name, successor)
                    self.epochs[shard_name] += 1
                try:
                    yield recover_primary(self.servers[successor],
                                          lease_wait=self.lease_wait)
                except RecoveryError:
                    # Majority unavailable; retry once more replicas are
                    # heartbeating again.
                    yield self.sim.timeout(self.failure_timeout)
                    continue
                self.failovers.append(
                    (self.sim.now, shard_name, dead_primary, successor))
                if self.on_failover is not None:
                    self.on_failover(shard_name, successor)
                return
        finally:
            self._failing_over.discard(shard_name)


class HeartbeatReporter:
    """Server-side heartbeat loop to the master."""

    def __init__(self, server, master_name: str = "master",
                 interval: float = DEFAULT_HEARTBEAT_INTERVAL) -> None:
        self.server = server
        self.master_name = master_name
        self.interval = interval
        self._daemon: Optional[Process] = None

    def start(self) -> Process:
        if self._daemon is None:
            self._daemon = self.server.sim.process(self._loop())
        return self._daemon

    def _loop(self):
        while True:
            self.server.node.send_oneway(
                self.master_name, "master.heartbeat",
                MasterHeartbeat(server=self.server.name,
                                shard=self.server.shard_name))
            yield self.server.sim.timeout(self.interval)

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        if self._daemon is not None and self._daemon.is_alive:
            self._daemon.interrupt("crash")
        self._daemon = None

    def restart(self) -> None:
        self.start()
