"""SEMEL storage server: versioned KV service with primary/backup roles.

Each server hosts one shard replica over a pluggable storage backend
(MFTL, VFTL, DRAM, ...). The primary for a shard serializes RPCs on its
objects (§3.3):

* **get** — reads the youngest version at or below the request timestamp;
* **put** — rejects writes older than the key's current version
  (at-most-once with global clocks), acknowledges duplicates idempotently
  (the watermark scheme guarantees a retransmitted write's version is
  still retained), writes locally, and commits once f of its 2f backups
  acknowledge the unordered replication record;
* **delete** — replicated the same way.

Backups apply replication records in whatever order they arrive —
"inconsistent replication" (§3.2) — because version stamps recover the
order. All handlers are idempotent.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..ftl.base import KVBackend
from ..net.network import Network
from ..net.rpc import AppError, RpcNode
from ..sim.core import Simulator
from ..versioning import Version
from ..wire import (
    Ack,
    SemelDelete,
    SemelDeleteReply,
    SemelGet,
    SemelGetHistory,
    SemelGetHistoryReply,
    SemelGetReply,
    SemelPut,
    SemelPutReply,
    SemelReplicate,
    WatermarkReport,
)
from .replication import QuorumError, replicate_to_backups
from .sharding import Directory
from .watermark import WatermarkTracker

__all__ = ["StorageServer"]


class StorageServer:
    """One shard replica: RPC service over a versioned storage backend."""

    #: Optional :class:`repro.durability.WriteAheadLog`, attached by the
    #: cluster when durability is configured. A class attribute (like
    #: ``Simulator.tracer``) so the disabled path costs one attribute
    #: load and schedules stay byte-identical.
    wal = None

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: Directory,
        name: str,
        shard_name: str,
        backend: KVBackend,
        replication_timeout: float = 10e-3,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.name = name
        self.shard_name = shard_name
        self.backend = backend
        self.replication_timeout = replication_timeout
        self.node = RpcNode(sim, network, name)
        self.watermarks = WatermarkTracker()
        self.puts_rejected_stale = 0
        self.puts_deduplicated = 0
        #: (key, version) -> completion event for puts still in flight, so
        #: a retransmission arriving mid-write coalesces with the original
        #: instead of double-inserting.
        self._inflight_puts: Dict[tuple, Any] = {}
        #: (key, version) pairs written locally but not yet acked by a
        #: backup quorum (replication failed or is still running). A
        #: retransmission must not be acked as a duplicate success until
        #: replication actually completes.
        self._unreplicated: set = set()
        self._register_handlers()

    # -- role helpers -----------------------------------------------------

    @property
    def shard(self):
        return self.directory.shard(self.shard_name)

    @property
    def is_primary(self) -> bool:
        return self.shard.primary == self.name

    @property
    def backups(self) -> List[str]:
        return [replica for replica in self.shard.replicas
                if replica != self.name]

    @property
    def quorum_acks(self) -> int:
        """Backup acks needed for a majority including this primary."""
        return self.shard.fault_tolerance

    def _require_primary(self) -> None:
        if not self.is_primary:
            raise AppError(
                f"{self.name} is not the primary of {self.shard_name}")

    # -- handler registration ---------------------------------------------

    def _register_handlers(self) -> None:
        self.node.register("semel.get", self._handle_get)
        self.node.register("semel.get_history", self._handle_get_history)
        self.node.register("semel.put", self._handle_put)
        self.node.register("semel.delete", self._handle_delete)
        self.node.register("semel.replicate", self._handle_replicate)
        self.node.register("semel.watermark", self._handle_watermark)

    # -- handlers --------------------------------------------------------------

    def _handle_get(self, request: SemelGet):
        self._require_primary()
        result = yield self.backend.get(
            request.key, max_timestamp=request.max_timestamp)
        if result is None:
            return SemelGetReply(found=False)
        version, value = result
        return SemelGetReply(found=True, version=tuple(version),
                             value=value)

    def _handle_get_history(self, request: SemelGetHistory):
        """Snapshot-history read for analytics (§3.1's tunable-window
        motivation): every retained version of a key in a time range."""
        self._require_primary()
        history = yield self.backend.get_history(
            request.key, request.from_timestamp, request.to_timestamp)
        return SemelGetHistoryReply(versions=tuple(
            (tuple(version), value) for version, value in history))

    def _handle_put(self, request: SemelPut):
        self._require_primary()
        key = request.key
        value = request.value
        version = Version(*request.version)
        inflight_key = (key, version)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.begin_section("put", key)
        inflight = self._inflight_puts.get(inflight_key)
        if inflight is not None:
            # A duplicate of a put still being written: wait for the
            # original to finish and repeat its response.
            self.puts_deduplicated += 1
            yield inflight
            yield from self._finish_replication(key, value, version)
            return SemelPutReply(applied=True, duplicate=True)
        if tracer is not None:
            tracer.on_read(("store", self.name, key))
        existing = self.backend.versions_of(key)
        if version in existing:
            # Retransmitted request: repeat the earlier success response —
            # unless the original attempt died mid-replication, in which
            # case the write is local-only and acking it now would report
            # durability that never happened. Finish replicating first.
            self.puts_deduplicated += 1
            yield from self._finish_replication(key, value, version)
            return SemelPutReply(applied=True, duplicate=True)
        if existing and version < existing[0]:
            # §3.3: a timestamp comparison blocks stale writes; the client
            # receives a rejection but at-most-once semantics hold.
            self.puts_rejected_stale += 1
            raise AppError(
                f"stale write for {key!r}: {version} < {existing[0]}")
        done = self.sim.event()
        self._inflight_puts[inflight_key] = done
        self._unreplicated.add(inflight_key)
        if tracer is not None:
            tracer.on_acquire(("inflight-put", self.name, key,
                               tuple(version)))
        try:
            yield self.backend.put(key, value, version)
            if tracer is not None:
                # Relaxed: the MVCC backend tolerates unordered inserts
                # by design (inconsistent replication, §3.2); version
                # stamps recover the order, so concurrent writers to the
                # same key are not a race.
                tracer.on_write(("store", self.name, key), relaxed=True)
            if self.wal is not None:
                # Durable before the ack that claims it (§3.3): the put
                # must survive an amnesia crash of this primary.
                yield from self.wal.append_put(
                    key, value, version, sync=self.wal.config.sync_semel)
            yield from self._replicate(SemelReplicate(
                op="put", key=key, value=value, version=tuple(version)))
            self._unreplicated.discard(inflight_key)
        finally:
            if tracer is not None:
                tracer.on_release(("inflight-put", self.name, key,
                                   tuple(version)))
            # pop, not del: a crash-kill interrupt lands here after the
            # volatile tables were replaced, so the key may be gone.
            self._inflight_puts.pop(inflight_key, None)
            done.succeed()
        return SemelPutReply(applied=True, duplicate=False)

    def _finish_replication(self, key, value, version):
        """Re-drive replication for a locally applied but never
        quorum-acked put, before a duplicate success is returned."""
        if (key, version) not in self._unreplicated:
            return
        yield from self._replicate(SemelReplicate(
            op="put", key=key, value=value, version=tuple(version)))
        self._unreplicated.discard((key, version))

    def _handle_delete(self, request: SemelDelete):
        self._require_primary()
        yield self.backend.delete(request.key)
        if self.wal is not None:
            yield from self.wal.append_delete(
                request.key, sync=self.wal.config.sync_semel)
        yield from self._replicate(SemelReplicate(
            op="delete", key=request.key))
        return SemelDeleteReply(applied=True)

    def _handle_replicate(self, request: SemelReplicate):
        """Backup-side application of an unordered replication record."""
        key = request.key
        if request.op == "put":
            version = Version(*request.version)
            inflight_key = ("replicate", key, version)
            inflight = self._inflight_puts.get(inflight_key)
            if inflight is not None:
                yield inflight
            elif version not in self.backend.versions_of(key):
                done = self.sim.event()
                self._inflight_puts[inflight_key] = done
                try:
                    yield self.backend.put(key, request.value, version)
                    tracer = self.sim.tracer
                    if tracer is not None:
                        tracer.on_write(("store", self.name, key),
                                        relaxed=True)
                    if self.wal is not None:
                        # The Ack below is this backup's durability
                        # claim toward the primary's quorum count.
                        yield from self.wal.append_put(
                            key, request.value, version,
                            sync=self.wal.config.sync_semel)
                finally:
                    self._inflight_puts.pop(inflight_key, None)
                    done.succeed()
        elif request.op == "delete":
            yield self.backend.delete(key)
            if self.wal is not None:
                yield from self.wal.append_delete(
                    key, sync=self.wal.config.sync_semel)
        else:
            raise AppError(f"unknown replication op {request.op!r}")
        return Ack()

    def _handle_watermark(self, request: WatermarkReport):
        self.watermarks.report(request.client_id, request.timestamp)
        watermark = self.watermarks.watermark
        if watermark > float("-inf"):
            self.backend.set_watermark(watermark)
        yield from ()  # handler protocol: must be a generator
        return Ack()

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """Amnesia fail-stop: kill every in-flight process on this node
        and wipe all volatile state. The caller must already have the
        network dropping this node's traffic (:meth:`Network.crash`);
        only the WAL's durable prefix survives."""
        self.node.crash()
        if self.wal is not None:
            self.wal.crash()
        self._inflight_puts = {}
        self._unreplicated = set()
        self.watermarks = WatermarkTracker()

    def restart(self, backend: KVBackend) -> None:
        """Come back up empty over a fresh ``backend``; state is rebuilt
        by WAL replay and the cluster restart protocol."""
        self.backend = backend
        self.node.restart()

    # -- replication ---------------------------------------------------------------

    def _replicate(self, record: SemelReplicate):
        backups = self.backups
        need = min(self.quorum_acks, len(backups))
        if need <= 0:
            return
        try:
            yield from replicate_to_backups(
                self.node, backups, "semel.replicate", record, need,
                timeout=self.replication_timeout)
        except QuorumError as exc:
            # QuorumError is not an RpcError, so without this it sails
            # past every ``except RpcError`` up the handler chain and
            # lands in _serve as an opaque handler error. An AppError is
            # the protocol-level rejection the sender is built to retry.
            raise AppError(str(exc)) from exc
