"""SARIF 2.1.0 rendering for simlint findings.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
of code-scanning backends — GitHub code scanning ingests it directly,
so CI can surface simlint findings as first-class alerts instead of log
lines. The emitter is deliberately minimal: one run, one tool driver,
``partialFingerprints`` carrying the same stable fingerprint the JSON
output uses (so alert identity survives line churn, mirroring the
baseline's line-free matching).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .engine import Rule
from .findings import Finding, Severity

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule_id: str, rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule_id,
        "shortDescription": {"text": rule.description or rule_id},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning"),
        },
    }


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
        "partialFingerprints": {
            "simlint/v1": finding.fingerprint,
        },
    }
    index = rule_index.get(finding.rule_id)
    if index is not None:
        result["ruleIndex"] = index
    return result


def render_sarif(findings: Iterable[Finding],
                 rules: Dict[str, Rule]) -> str:
    """A complete SARIF 2.1.0 log document as a JSON string.

    ``rules`` is the active rule registry (id -> instance); every active
    rule is listed in the driver descriptor even when it produced no
    results, which is what lets code scanning close alerts for rules
    that went quiet.
    """
    ordered = sorted(rules)
    rule_index = {rule_id: i for i, rule_id in enumerate(ordered)}
    results: List[Dict[str, Any]] = [
        _result(f, rule_index) for f in findings]
    log = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "rules": [_rule_descriptor(rid, rules[rid])
                              for rid in ordered],
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)
