"""The built-in simlint rules (see docs/ANALYSIS.md for the catalogue).

Determinism rules (DET*) protect the guarantee that a fixed seed
reproduces the paper's numbers exactly; simulation rules (SIM*) keep
simulated time honest; protocol rules (RPC*, TXN*) enforce the failure
handling the reproduction's correctness arguments rely on; API001 keeps
the public surface coherent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .engine import ModuleContext, Rule, rule
from .findings import Finding, Severity

__all__ = [
    "WallClockRule",
    "DirectRandomRule",
    "UnorderedIterationRule",
    "EnvironmentReadRule",
    "BlockingInProcessRule",
    "RpcTimeoutRule",
    "WirePayloadRule",
    "YieldAtomicityRule",
    "CrashStatePokeRule",
    "ParallelismHygieneRule",
    "DunderAllRule",
    "UnusedSuppressionRule",
    "rule_catalogue",
]


@rule
class WallClockRule(Rule):
    """DET001: no wall-clock reads inside the reproduction.

    Simulated components must take time from ``Simulator.now`` / their
    ``Clock``; a host-clock read couples results to the machine running
    them and breaks run-to-run reproducibility.
    """

    rule_id = "DET001"
    severity = Severity.ERROR
    description = ("wall-clock read (time.time/perf_counter/datetime.now); "
                   "use Simulator.now or a repro.clocks clock")

    WALL_CLOCK_CALLS = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for call, qualname in ctx.calls():
            if qualname in self.WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, call,
                    f"call to {qualname}() reads the host wall clock; "
                    f"simulated code must use Simulator.now or a clock model")


@rule
class DirectRandomRule(Rule):
    """DET002: all randomness flows through ``SeededRng`` substreams.

    A bare ``random.random()`` draws from interpreter-global state, so
    any new caller perturbs every existing consumer's sequence. The one
    sanctioned wrapper is ``repro.sim.rng``.
    """

    rule_id = "DET002"
    severity = Severity.ERROR
    description = ("direct use of the random module; draw from a "
                   "SeededRng substream instead")
    excluded_path_suffixes = ("sim/rng.py",)

    RANDOM_MODULES = ("random", "numpy.random")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self.RANDOM_MODULES or \
                            alias.name.startswith("numpy.random."):
                        yield self.finding(
                            ctx, node,
                            f"import of {alias.name!r}; use "
                            f"repro.sim.rng.SeededRng substreams")
            elif isinstance(node, ast.ImportFrom):
                if node.module in self.RANDOM_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"import from {node.module!r}; use "
                        f"repro.sim.rng.SeededRng substreams")
        for call, qualname in ctx.calls():
            if qualname is None:
                continue
            root = qualname.split(".")[0]
            if root == "random" or qualname.startswith("numpy.random."):
                yield self.finding(
                    ctx, call,
                    f"call to {qualname}() uses global random state; "
                    f"draw from a SeededRng substream")


@rule
class UnorderedIterationRule(Rule):
    """DET003: no iteration over unordered collections.

    ``set`` iteration order depends on ``PYTHONHASHSEED``; feeding it
    into event scheduling, sharding, or replication fan-out reorders
    events between runs. Directory listings have filesystem order.
    Wrap the iterable in ``sorted(...)``.
    """

    rule_id = "DET003"
    severity = Severity.ERROR
    description = ("iteration over an unordered set/directory listing; "
                   "wrap in sorted(...)")

    SET_METHODS = frozenset({
        "union", "intersection", "difference", "symmetric_difference",
    })
    UNORDERED_CALLS = frozenset({
        "set", "frozenset", "os.listdir", "glob.glob", "glob.iglob",
        "os.scandir",
    })

    def _unordered_reason(self, ctx: ModuleContext,
                          node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set expression"
        if isinstance(node, ast.Call):
            qualname = ctx.qualname(node.func)
            if qualname in self.UNORDERED_CALLS:
                return f"{qualname}(...)"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.SET_METHODS):
                return f".{node.func.attr}(...)"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "iterdir"):
                return ".iterdir()"
        return None

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        iter_sites: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iter_sites.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iter_sites.extend(gen.iter for gen in node.generators)
        for site in iter_sites:
            reason = self._unordered_reason(ctx, site)
            if reason is not None:
                yield self.finding(
                    ctx, site,
                    f"iterating over {reason} has hash/filesystem-dependent "
                    f"order; wrap in sorted(...) to keep event order "
                    f"deterministic")


@rule
class EnvironmentReadRule(Rule):
    """DET004: no nondeterministic environment reads in sim paths.

    ``os.urandom`` / ``uuid.uuid4`` smuggle entropy past the seed;
    ``os.environ`` makes results depend on the invoking shell. Ids must
    derive from seeded streams or counters, configuration from explicit
    parameters.
    """

    rule_id = "DET004"
    severity = Severity.ERROR
    description = ("entropy/environment read (os.urandom, uuid.uuid4, "
                   "os.environ); derive from the seed or explicit config")

    ENTROPY_CALLS = frozenset({
        "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
        "os.getenv",
    })

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for call, qualname in ctx.calls():
            if qualname is None:
                continue
            if qualname in self.ENTROPY_CALLS or \
                    qualname.startswith("secrets."):
                yield self.finding(
                    ctx, call,
                    f"call to {qualname}() is nondeterministic; derive "
                    f"values from the experiment seed or pass them "
                    f"explicitly")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and \
                    ctx.qualname(node) == "os.environ":
                yield self.finding(
                    ctx, node,
                    "reading os.environ makes results depend on the "
                    "invoking shell; take configuration as parameters")


@rule
class BlockingInProcessRule(Rule):
    """SIM001: sim processes must not block the host.

    A generator driven by the simulator advances *simulated* time via
    yielded events; calling ``time.sleep`` or doing host I/O inside one
    stalls the real process without advancing the simulation and ties
    results to host speed.
    """

    rule_id = "SIM001"
    severity = Severity.ERROR
    description = ("blocking host call (time.sleep/open/socket) inside a "
                   "sim process generator; yield a sim timeout/event")

    BLOCKING_CALLS = frozenset({
        "time.sleep", "input", "open", "os.system", "os.popen",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.Popen",
        "socket.socket", "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get", "requests.post", "requests.request",
    })

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for func in ctx.generator_functions():
            for node in ctx.own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                qualname = ctx.qualname(node.func)
                if qualname in self.BLOCKING_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"sim process {func.name!r} calls {qualname}(), "
                        f"which blocks the host; use sim.timeout(...) or "
                        f"move the I/O outside the simulation")


@rule
class RpcTimeoutRule(Rule):
    """RPC001: every RPC send-site carries an explicit timeout policy.

    ``RpcNode.call`` has a default timeout, but protocol code relying on
    it hides the failure-detection budget that CTP/recovery correctness
    arguments depend on — the timeout is part of the protocol, so it
    must be visible at the call site.
    """

    rule_id = "RPC001"
    severity = Severity.ERROR
    description = ("RPC call without an explicit timeout=; the failure "
                   "detection budget must be visible at the send-site")

    #: call(dst, method, payload, timeout, retries) — timeout is the
    #: 4th positional parameter.
    TIMEOUT_POSITION = 4

    def _is_rpc_call(self, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "call":
            return False
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id == "node" or receiver.id.endswith("_node")
        if isinstance(receiver, ast.Attribute):
            return receiver.attr == "node" or receiver.attr.endswith("_node")
        return False

    def _has_timeout(self, node: ast.Call, position: int) -> bool:
        if len(node.args) >= position:
            return True
        for keyword in node.keywords:
            if keyword.arg == "timeout" or keyword.arg is None:  # **kwargs
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for call, qualname in ctx.calls():
            if self._is_rpc_call(call):
                if not self._has_timeout(call, self.TIMEOUT_POSITION):
                    yield self.finding(
                        ctx, call,
                        "RpcNode.call without an explicit timeout=; state "
                        "the failure-detection budget at the send-site")
            elif qualname is not None and \
                    qualname.split(".")[-1] == "replicate_to_backups":
                # replicate_to_backups(node, backups, method, payload,
                #                      need_acks, timeout)
                if not self._has_timeout(call, 6):
                    yield self.finding(
                        ctx, call,
                        "replicate_to_backups without an explicit "
                        "timeout=; quorum waits need a visible budget")


@rule
class WirePayloadRule(Rule):
    """WIRE001: RPC payloads are typed ``repro.wire`` messages.

    A raw dict literal at a send-site bypasses the wire registry: no
    schema check at the sender, no ``wire_size`` accounting, and the
    receiving handler silently falls back to duck typing. Construct the
    registered message class for the method instead.
    """

    rule_id = "WIRE001"
    severity = Severity.ERROR
    description = ("raw dict literal as an RPC payload; construct the "
                   "registered repro.wire message class instead")

    #: attribute name -> 0-based position of the payload argument.
    PAYLOAD_POSITIONS = {
        "call": 2,
        "send_oneway": 2,
        "notify": 2,
        "replicate_to_backups": 3,
    }

    def _node_like(self, receiver: ast.AST) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id == "node" or receiver.id.endswith("_node")
        if isinstance(receiver, ast.Attribute):
            return receiver.attr == "node" or receiver.attr.endswith("_node")
        return False

    def _payload(self, call: ast.Call, attr: str) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == "payload":
                return keyword.value
        position = self.PAYLOAD_POSITIONS[attr]
        if len(call.args) > position:
            return call.args[position]
        return None

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for call, qualname in ctx.calls():
            func = call.func
            attr = None
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("call", "send_oneway", "notify"):
                if self._node_like(func.value):
                    attr = func.attr
            elif qualname is not None and \
                    qualname.split(".")[-1] == "replicate_to_backups":
                attr = "replicate_to_backups"
            if attr is None:
                continue
            payload = self._payload(call, attr)
            if isinstance(payload, (ast.Dict, ast.DictComp)):
                yield self.finding(
                    ctx, payload,
                    f"dict literal passed as the {attr}() payload "
                    f"bypasses the typed wire protocol; build the "
                    f"registered repro.wire message for this method")


@rule
class YieldAtomicityRule(Rule):
    """TXN001: validation outcomes must be recorded before yielding.

    MILANA's Algorithm 1 checks and the transaction-table/prepared-mark
    updates that record its verdict must happen on the same side of any
    yield point: a yield in between lets a concurrent prepare interleave
    and both transactions validate against pre-update state (classic
    OCC time-of-check/time-of-use). Re-validating after the yield is
    the sanctioned escape hatch.
    """

    rule_id = "TXN001"
    severity = Severity.ERROR
    description = ("yield between validate(...) and recording its outcome "
                   "in the txn table / prepared marks")
    required_path_parts = ("milana",)
    counterpart = "SAN001"

    MUTATOR_METHODS = frozenset({"mark_prepared", "mark_committed"})

    def _validate_lines(self, ctx: ModuleContext,
                        func: ast.FunctionDef) -> List[int]:
        lines = []
        for node in ctx.own_nodes(func):
            if isinstance(node, ast.Call):
                qualname = ctx.qualname(node.func)
                if qualname and qualname.split(".")[-1].endswith("validate"):
                    lines.append(node.lineno)
        return lines

    def _mutation_nodes(self, ctx: ModuleContext,
                        func: ast.FunctionDef) -> List[ast.AST]:
        nodes: List[ast.AST] = []
        for node in ctx.own_nodes(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "txn_table"):
                        nodes.append(node)
            elif isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in self.MUTATOR_METHODS):
                    nodes.append(node)
        return nodes

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for func in ctx.generator_functions():
            validates = self._validate_lines(ctx, func)
            if not validates:
                continue
            yields = sorted(node.lineno for node in ctx.own_nodes(func)
                            if isinstance(node, (ast.Yield, ast.YieldFrom)))
            for mutation in self._mutation_nodes(ctx, func):
                # A yield strictly between the last validate before the
                # mutation and the mutation itself, with no re-validate
                # after that yield, is a TOCTOU window.
                before = [v for v in validates if v < mutation.lineno]
                if not before:
                    continue
                last_validate = max(before)
                window = [y for y in yields
                          if last_validate < y < mutation.lineno]
                if window:
                    yield self.finding(
                        ctx, mutation,
                        f"{func.name!r} yields at line {window[0]} between "
                        f"validation (line {last_validate}) and recording "
                        f"its outcome; revalidate after the yield or move "
                        f"the mutation before it")


@rule
class CrashStatePokeRule(Rule):
    """FLT001: fault state is mutated through the fault API only.

    Poking ``network._crashed`` directly bypasses the fault-injection
    surface: no tracer event fires, ``can_communicate`` and the nemesis
    audit see state that no plan recorded, and in-flight delivery checks
    can disagree with the poked set. Use ``Network.crash`` /
    ``Network.recover`` / ``Network.is_crashed`` (or a
    ``NemesisPlan``), and ``Network.install_faults`` for link faults.
    """

    rule_id = "FLT001"
    severity = Severity.ERROR
    description = ("direct access to Network._crashed outside the network "
                   "module; use crash()/recover()/is_crashed() or a "
                   "NemesisPlan")
    excluded_path_suffixes = ("net/network.py",)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and \
                    node.attr == "_crashed":
                yield self.finding(
                    ctx, node,
                    "touching Network._crashed bypasses the fault API "
                    "(no tracer event, invisible to can_communicate "
                    "audits); go through crash()/recover()/is_crashed() "
                    "or a NemesisPlan")


@rule
class ParallelismHygieneRule(Rule):
    """PAR001: sweep parallelism is spawn-context only.

    The sweep runner (``repro.sweep``) fans experiment cells across
    worker processes. Forked workers inherit a snapshot of the parent
    interpreter — module caches, seeded RNG objects, open descriptors —
    so a forked cell can observe state a fresh serial run never would,
    and determinism quietly dies. Spawn re-imports everything from
    source, which also means module-level mutable state in sweep
    modules is rebuilt per worker and silently diverges from the
    parent's copy; keep such modules state-free.
    """

    rule_id = "PAR001"
    severity = Severity.ERROR
    description = ("parallelism hygiene: os.fork/fork start-method/"
                   "ProcessPoolExecutor without mp_context, or "
                   "module-level mutable state in a sweep module; "
                   "spawn-context only")

    FORK_CALLS = frozenset({"os.fork", "os.forkpty", "pty.fork"})
    START_METHOD_CALLS = frozenset({
        "multiprocessing.get_context",
        "multiprocessing.set_start_method",
    })
    MUTABLE_CONSTRUCTORS = frozenset({
        "list", "dict", "set", "bytearray", "defaultdict",
        "OrderedDict", "Counter", "deque",
    })

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for call, qualname in ctx.calls():
            if qualname is None:
                continue
            if qualname in self.FORK_CALLS:
                yield self.finding(
                    ctx, call,
                    f"call to {qualname}() duplicates parent interpreter "
                    f"state into the child; sweep workers must be "
                    f"spawn-context processes")
            elif qualname in self.START_METHOD_CALLS:
                method = call.args[0] if call.args else None
                if method is None:
                    yield self.finding(
                        ctx, call,
                        f"{qualname}() without a start method defaults "
                        f"to the platform method (fork on Linux); pass "
                        f"'spawn' explicitly")
                elif not (isinstance(method, ast.Constant)
                          and method.value == "spawn"):
                    yield self.finding(
                        ctx, call,
                        f"{qualname}() start method must be the literal "
                        f"'spawn'; fork duplicates parent state and "
                        f"other values are platform-dependent")
            elif qualname.split(".")[-1] == "ProcessPoolExecutor":
                if not any(kw.arg == "mp_context"
                           for kw in call.keywords):
                    yield self.finding(
                        ctx, call,
                        "ProcessPoolExecutor without mp_context= uses "
                        "the platform default start method (fork on "
                        "Linux); pass mp_context=get_context('spawn')")
        yield from self._module_state_findings(ctx)

    def _module_state_findings(self, ctx: ModuleContext) -> Iterable[Finding]:
        normalized = ctx.path.replace("\\", "/")
        if "/sweep/" not in f"/{normalized}":
            return
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            if not self._is_mutable_container(value):
                continue
            # Dunder assignments (__all__ & co.) are declarative module
            # metadata, never mutated at runtime.
            plain = [target.id for target in targets
                     if isinstance(target, ast.Name)
                     and not (target.id.startswith("__")
                              and target.id.endswith("__"))]
            if not plain and any(isinstance(t, ast.Name) for t in targets):
                continue
            names = ", ".join(plain) or "<target>"
            yield self.finding(
                ctx, node,
                f"module-level mutable container {names!r} in a sweep "
                f"module; spawn workers re-import this module, so "
                f"mutations diverge silently between parent and "
                f"workers — build it inside a function instead")

    def _is_mutable_container(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.MUTABLE_CONSTRUCTORS)


@rule
class DunderAllRule(Rule):
    """API001: ``__all__`` matches what the module actually defines.

    A stale ``__all__`` breaks ``from module import *`` and misleads
    both readers and the API docs about the supported surface.
    """

    rule_id = "API001"
    severity = Severity.WARNING
    description = "__all__ inconsistent with module-level definitions"

    def _top_level_bindings(self, body: List[ast.stmt]) -> Set[str]:
        names: Set[str] = set()
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(self._target_names(target))
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                names.update(self._top_level_bindings(node.body))
                for handler in getattr(node, "handlers", []):
                    names.update(self._top_level_bindings(handler.body))
                names.update(self._top_level_bindings(
                    getattr(node, "orelse", [])))
                names.update(self._top_level_bindings(
                    getattr(node, "finalbody", [])))
        return names

    @staticmethod
    def _target_names(target: ast.AST) -> Set[str]:
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            names: Set[str] = set()
            for element in target.elts:
                names.update(DunderAllRule._target_names(element))
            return names
        return set()

    def _declared_all(self, ctx: ModuleContext
                      ) -> Tuple[Optional[ast.stmt], Optional[List[str]]]:
        for node in ctx.tree.body:
            value = None
            if isinstance(node, ast.Assign):
                if any(isinstance(t, ast.Name) and t.id == "__all__"
                       for t in node.targets):
                    value = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and \
                        node.target.id == "__all__":
                    value = node.value
            if value is None:
                continue
            if isinstance(value, (ast.List, ast.Tuple)):
                names = []
                for element in value.elts:
                    if isinstance(element, ast.Constant) and \
                            isinstance(element.value, str):
                        names.append(element.value)
                    else:
                        return node, None  # dynamic __all__: skip module
                return node, names
            return node, None
        return None, None

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        node, declared = self._declared_all(ctx)
        if node is None or declared is None:
            return
        bindings = self._top_level_bindings(ctx.tree.body)
        for name in declared:
            if name not in bindings:
                yield self.finding(
                    ctx, node,
                    f"__all__ lists {name!r} but the module never "
                    f"defines it")
        declared_set = set(declared)
        for child in ctx.tree.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                if not child.name.startswith("_") and \
                        child.name not in declared_set:
                    yield self.finding(
                        ctx, child,
                        f"public {child.name!r} is missing from __all__; "
                        f"export it or rename it with a leading underscore")


@rule
class UnusedSuppressionRule(Rule):
    """SUP001: a suppression comment that suppresses nothing.

    After every other rule has run, any ``# simlint: disable[=RULE]``
    comment whose rules never fired is dead weight: either the offending
    code was fixed (delete the comment) or the comment was misspelled
    and is silently masking nothing. References to unknown rule ids are
    always reported; "never fired" is only judged on full runs (no
    ``--select``/``--ignore``), since a filtered run cannot tell.

    The driver runs this rule in a dedicated pass (it needs the usage
    marks left behind by the others); ``check`` is intentionally empty.
    To silence it, use an explicit file-level
    ``# simlint: disable-file=SUP001``.
    """

    rule_id = "SUP001"
    severity = Severity.WARNING
    description = ("suppression comment that suppresses nothing "
                   "(rule never fires there, or unknown rule id)")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def unused_findings(self, ctx: ModuleContext, known_ids: Set[str],
                        filtering: bool) -> Iterable[Finding]:
        from .engine import _ALL
        if self.rule_id in ctx.file_suppressions:
            return
        for sup in ctx.suppressions:
            if self.rule_id in sup.rules:
                continue  # meta-suppressions are never self-reported
            where = ("anywhere in this file" if sup.kind == "file"
                     else "on this line")
            anchor = ast.Pass()
            anchor.lineno = sup.line
            anchor.col_offset = 0
            for rid in sorted(sup.rules):
                if rid == _ALL:
                    continue
                if rid not in known_ids:
                    yield self.finding(
                        ctx, anchor,
                        f"suppression references unknown rule id "
                        f"{rid!r}")
                elif not filtering and rid not in sup.used_rules:
                    yield self.finding(
                        ctx, anchor,
                        f"useless suppression: {rid} does not fire "
                        f"{where}; remove the comment")
            if _ALL in sup.rules and not filtering and not sup.used_rules:
                yield self.finding(
                    ctx, anchor,
                    f"useless blanket suppression: no rule fires "
                    f"{where}; remove the comment")


#: Rule metadata for --list-rules and docs generation.
def rule_catalogue() -> Dict[str, Tuple[str, str]]:
    """rule id -> (severity, one-line description)."""
    from .engine import all_rules
    return {rid: (r.severity, r.description)
            for rid, r in sorted(all_rules().items())}
