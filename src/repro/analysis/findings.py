"""Finding and severity types shared by the engine, rules, and CLI."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

__all__ = ["Finding", "Severity", "SEVERITIES"]


class Severity:
    """Symbolic severities; plain strings so findings serialize trivially."""

    ERROR = "error"
    WARNING = "warning"


SEVERITIES = (Severity.ERROR, Severity.WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str          # posix-style path as given to the analyzer
    line: int          # 1-based
    col: int           # 0-based, as in the ast module
    rule_id: str
    severity: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Location-independent identity used for baseline matching.

        Deliberately excludes line/col so that unrelated edits above a
        grandfathered finding do not invalidate the baseline entry.
        """
        raw = f"{self.path}::{self.rule_id}::{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.severity}: {self.message}")

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
