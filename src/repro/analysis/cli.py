"""simlint command line: ``python -m repro.analysis [paths ...]``.

Exit codes: 0 clean (or all findings baselined), 1 findings, 2 usage
error. ``--format json`` emits a machine-readable report; the schema is
pinned by ``tests/test_analysis.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline, BaselineError
from .engine import all_rules, analyze_paths
from .findings import Finding

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src/repro",)


def build_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=("simlint: determinism & protocol-hygiene static "
                     "analysis for the SEMEL/MILANA reproduction"))
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings recorded in this "
                             "baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_rules(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _list_rules() -> int:
    for rule_id, r in sorted(all_rules().items()):
        print(f"{rule_id}  [{r.severity:7s}]  {r.description}")
    return 0


def _render_text(new: List[Finding], baselined: List[Finding],
                 files: int) -> None:
    for finding in new:
        print(finding.render())
    noun = "file" if files == 1 else "files"
    suffix = f" ({len(baselined)} baselined)" if baselined else ""
    print(f"simlint: {len(new)} finding(s) in {files} {noun}{suffix}",
          file=sys.stderr)


def _render_json(new: List[Finding], baselined: List[Finding],
                 files: int) -> None:
    counts: dict = {}
    for finding in new:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    print(json.dumps({
        "version": 1,
        "files_checked": files,
        "findings": [f.to_json() for f in new],
        "baselined": len(baselined),
        "counts_by_rule": counts,
    }, indent=2))


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "repro.analysis") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")
    try:
        findings, files = analyze_paths(
            args.paths,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore))
    except ValueError as exc:
        parser.error(str(exc))  # exits 2
        return 2  # unreachable; keeps type-checkers happy
    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(f"simlint: wrote {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, BaselineError) as exc:
            parser.error(str(exc))
            return 2
        new, baselined = baseline.split(findings)
    else:
        new, baselined = findings, []
    if args.output_format == "json":
        _render_json(new, baselined, files)
    else:
        _render_text(new, baselined, files)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
