"""simlint command line: ``python -m repro.analysis [paths ...]``.

Exit codes: 0 clean (or all findings baselined), 1 findings (or stale
baseline entries under ``--fail-on-stale``), 2 usage error. ``--format
json`` emits a machine-readable report (schema pinned by
``tests/test_analysis.py``); ``--format sarif`` emits SARIF 2.1.0 for
code-scanning backends; ``--format github`` emits GitHub Actions
workflow commands so findings annotate the PR diff.

``--from-json FILE`` re-renders a report previously saved with
``--format json`` without re-analyzing — CI analyzes once (against the
baseline, producing the JSON artifact) and derives the SARIF upload and
PR annotations from that single run. As a pure renderer it always
exits 0.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineError
from .engine import all_rules, analyze_paths
from .findings import Finding, Severity

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src/repro",)


def build_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=("simlint: determinism & protocol-hygiene static "
                     "analysis for the SEMEL/MILANA reproduction"))
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif",
                                             "github"),
                        default="text", dest="output_format")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings recorded in this "
                             "baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="prune --baseline entries that no longer "
                             "fire, rewriting the file in place")
    parser.add_argument("--fail-on-stale", action="store_true",
                        help="exit 1 if the baseline contains entries "
                             "that no longer fire")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--from-json", metavar="FILE", dest="from_json",
                        help="render a report saved with --format json "
                             "instead of re-analyzing (pure renderer: "
                             "always exits 0)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_rules(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _list_rules() -> int:
    """The full catalogue: static simlint rules plus (when the package
    is importable) the dynamic sansim rules, with each rule's family,
    domain, and cross-domain counterpart."""
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for rule_id, r in sorted(all_rules().items()):
        rows.append((rule_id, r.severity, r.rule_family, r.domain,
                     r.counterpart, r.description))
    try:
        # Imported dynamically: the sansim package is untyped simulation
        # machinery and must stay out of this module's static surface.
        sansim: Any = importlib.import_module("repro.sansim.rules")
    except ImportError:  # pragma: no cover - sansim ships alongside
        sansim = None
    if sansim is not None:
        for rule_id, dyn in sorted(sansim.SANITIZER_RULES.items()):
            rows.append((rule_id, dyn.severity, dyn.family, dyn.domain,
                         dyn.counterpart, dyn.description))
    for rule_id, severity, family, domain, counterpart, description \
            in rows:
        twin = f" [twin: {counterpart}]" if counterpart else ""
        print(f"{rule_id}  [{severity:7s}]  {family}/{domain:7s} "
              f"{description}{twin}")
    return 0


def _emit(document: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(document + "\n", encoding="utf-8")
    else:
        print(document)


def _render_text(new: List[Finding], baselined: int,
                 files: int, stale: int,
                 output: Optional[str]) -> None:
    if new or output:
        _emit("\n".join(f.render() for f in new), output)
    noun = "file" if files == 1 else "files"
    suffix = f" ({baselined} baselined)" if baselined else ""
    if stale:
        suffix += f" ({stale} stale baseline entr" \
                  f"{'y' if stale == 1 else 'ies'})"
    print(f"simlint: {len(new)} finding(s) in {files} {noun}{suffix}",
          file=sys.stderr)


def _render_json(new: List[Finding], baselined: int,
                 files: int, stale: Optional[int],
                 output: Optional[str]) -> None:
    counts: Dict[str, int] = {}
    for finding in new:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    payload = {
        "version": 1,
        "files_checked": files,
        "findings": [f.to_json() for f in new],
        "baselined": baselined,
        "counts_by_rule": counts,
    }
    if stale is not None:  # additive key, only on --baseline runs
        payload["stale_baseline"] = stale
    _emit(json.dumps(payload, indent=2), output)


def _render_sarif(new: List[Finding], select: Optional[List[str]],
                  ignore: Optional[List[str]],
                  output: Optional[str]) -> None:
    from .sarif import render_sarif
    registry = all_rules()
    active = {rid: r for rid, r in registry.items()
              if (not select or rid in select)
              and not (ignore and rid in ignore)}
    _emit(render_sarif(new, active), output)


def _render_github(new: List[Finding], baselined: int,
                   files: int, output: Optional[str]) -> None:
    lines = []
    for f in new:
        kind = "error" if f.severity == Severity.ERROR else "warning"
        # Workflow-command escaping: the message ends at the first
        # newline/percent unless encoded.
        message = (f.message.replace("%", "%25")
                   .replace("\r", "%0D").replace("\n", "%0A"))
        lines.append(f"::{kind} file={f.path},line={f.line},"
                     f"col={f.col + 1},title=simlint {f.rule_id}::"
                     f"{message}")
    _emit("\n".join(lines), output)
    noun = "file" if files == 1 else "files"
    suffix = f" ({baselined} baselined)" if baselined else ""
    print(f"simlint: {len(new)} finding(s) in {files} {noun}{suffix}",
          file=sys.stderr)


def _render_from_json(args: argparse.Namespace,
                      parser: argparse.ArgumentParser) -> int:
    """Pure-render mode: reconstruct findings from a saved JSON report
    and emit the requested format. Exit code is always 0 — the analysis
    run that produced the report already gated."""
    try:
        payload = json.loads(
            Path(args.from_json).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        parser.error(f"--from-json {args.from_json}: {exc}")
        raise  # unreachable; keeps type-checkers happy
    findings = [
        Finding(path=item["path"], line=int(item["line"]),
                col=int(item["col"]), rule_id=item["rule_id"],
                severity=item["severity"], message=item["message"])
        for item in payload.get("findings", [])
    ]
    files = int(payload.get("files_checked", 0))
    baselined = int(payload.get("baselined", 0))
    stale = payload.get("stale_baseline")
    stale_count = int(stale) if stale is not None else None
    if args.output_format == "json":
        _render_json(findings, baselined, files, stale_count, args.output)
    elif args.output_format == "sarif":
        _render_sarif(findings, None, None, args.output)
    elif args.output_format == "github":
        _render_github(findings, baselined, files, args.output)
    else:
        _render_text(findings, baselined, files, stale_count or 0,
                     args.output)
    return 0


def _apply_baseline(args: argparse.Namespace,
                    parser: argparse.ArgumentParser,
                    findings: List[Finding]
                    ) -> Tuple[List[Finding], List[Finding],
                               Optional[int]]:
    """(new, baselined, stale-count); stale is None without --baseline."""
    if not args.baseline:
        if args.update_baseline or args.fail_on_stale:
            parser.error("--update-baseline/--fail-on-stale require "
                         "--baseline FILE")
        return findings, [], None
    try:
        baseline = Baseline.load(args.baseline)
    except (OSError, BaselineError) as exc:
        parser.error(str(exc))
        raise  # unreachable; keeps type-checkers happy
    new, baselined = baseline.split(findings)
    stale = len(baseline.stale_entries(findings))
    if args.update_baseline and stale:
        baseline.pruned(findings).save(args.baseline)
        print(f"simlint: pruned {stale} stale entr"
              f"{'y' if stale == 1 else 'ies'} from {args.baseline}",
              file=sys.stderr)
        stale = 0
    return new, baselined, stale


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "repro.analysis") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.from_json:
        if (args.baseline or args.write_baseline or args.update_baseline
                or args.fail_on_stale or args.select or args.ignore):
            parser.error("--from-json renders a saved report; baseline "
                         "and rule-selection flags apply only when "
                         "analyzing")
        return _render_from_json(args, parser)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")
    select = _split_rules(args.select)
    ignore = _split_rules(args.ignore)
    try:
        findings, files = analyze_paths(args.paths, select=select,
                                        ignore=ignore)
    except ValueError as exc:
        parser.error(str(exc))  # exits 2
        return 2  # unreachable; keeps type-checkers happy
    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(f"simlint: wrote {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0
    new, baselined, stale = _apply_baseline(args, parser, findings)
    if args.output_format == "json":
        _render_json(new, len(baselined), files, stale, args.output)
    elif args.output_format == "sarif":
        _render_sarif(new, select, ignore, args.output)
    elif args.output_format == "github":
        _render_github(new, len(baselined), files, args.output)
    else:
        _render_text(new, len(baselined), files, stale or 0, args.output)
    if new:
        return 1
    if args.fail_on_stale and stale:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
