"""Checked-in baseline for grandfathered findings.

A baseline lets the analyzer land with zero noise on a codebase that
still has violations: known findings are recorded once (by rule, path,
and message — deliberately not by line, so unrelated edits don't churn
the file) and the CLI only fails on *new* findings. The repo policy is
to keep the baseline empty or near-empty: fix violations, don't bank
them.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from .findings import Finding

__all__ = ["Baseline", "BaselineError"]

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file."""


class Baseline:
    """A multiset of (rule, path, message) triples."""

    def __init__(self, entries: Iterable[Tuple[str, str, str]] = ()) -> None:
        self._entries = Counter(entries)

    def __len__(self) -> int:
        return sum(self._entries.values())

    @staticmethod
    def _key(finding: Finding) -> Tuple[str, str, str]:
        return (finding.rule_id, finding.path, finding.message)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(cls._key(f) for f in findings)

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise BaselineError(f"{path}: expected an object with 'entries'")
        if data.get("version") != _FORMAT_VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version {data.get('version')!r}")
        entries = []
        for entry in data["entries"]:
            try:
                entries.append((entry["rule"], entry["path"],
                                entry["message"]))
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"{path}: malformed entry {entry!r}") from exc
        return cls(entries)

    def save(self, path: "str | Path") -> None:
        entries = []
        for (rule_id, file_path, message), count in sorted(
                self._entries.items()):
            for _ in range(count):
                entries.append({"rule": rule_id, "path": file_path,
                                "message": message})
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8")

    def split(self, findings: Iterable[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, baselined), consuming one baseline entry
        per matched finding so duplicate regressions still surface."""
        remaining = Counter(self._entries)
        new: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = self._key(finding)
            if remaining[key] > 0:
                remaining[key] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        return new, matched

    def stale_entries(self, findings: Iterable[Finding]
                      ) -> List[Tuple[str, str, str]]:
        """Baseline entries that no current finding matches.

        A stale entry means the underlying violation was fixed but the
        grandfather record was never pruned — dead weight that would
        silently mask a future regression with the same message."""
        remaining = Counter(self._entries)
        for finding in findings:
            key = self._key(finding)
            if remaining[key] > 0:
                remaining[key] -= 1
        stale: List[Tuple[str, str, str]] = []
        for key, count in sorted(remaining.items()):
            stale.extend([key] * count)
        return stale

    def pruned(self, findings: Iterable[Finding]) -> "Baseline":
        """A copy with stale entries removed (``--update-baseline``)."""
        keep = Counter(self._entries)
        keep.subtract(Counter(self.stale_entries(findings)))
        return Baseline(
            key for key, count in keep.items() for _ in range(count)
            if count > 0)
