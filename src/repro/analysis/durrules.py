"""Crash-consistency simlint rules (DUR family) for the WAL layer.

Every suspend point in a handler is a potential crash point: the
process is interrupt-killed there by :meth:`crash`, and only the WAL's
durable prefix survives into replay. These rules replay each handler's
flattened event stream (:class:`~.project.InlineWalker`) and check the
crash-ordering invariants the durability tests probe dynamically:

* **DUR001 — ack-before-fsync.** A reply that claims durability must
  be dominated by a ``wal.append(..., sync=True)``-or-configured-sync
  append; a ``sync=False`` append leaves a suspend window where a
  crash erases state the client was already told about. This is the
  static twin of the ``test_durability.py`` nemesis A/B pair (the
  lossy ``sync_*=False`` control loses acked writes; the durable
  default does not).
* **DUR002 — mutation-without-log.** Durable state (the versioned
  store, the transaction table) mutated on a WAL-enabled path with no
  append on the same reply segment is silently forgotten by replay.
* **DUR003 — crash-unsafe cleanup.** ``finally`` blocks after a
  suspend run *after* :meth:`crash` replaced the volatile tables, so
  indexing them with bare ``del d[k]``/``d[k]`` raises KeyError into
  the interrupt path; ``.pop(k, None)`` is the sanctioned pattern.
* **DUR004 — nondeterministic WAL payloads.** A record field derived
  from a wall-clock/``random`` read (directly or through the DET101
  taint chain) makes replay reconstruct different state than the run
  that crashed.
* **DUR005 — append/replay registry cross-check.** Every record kind
  appended anywhere must have a matching arm in the replay/bootstrap
  dispatcher, mirroring the wire-registry conformance check: a kind
  with no arm is durably written and silently dropped on recovery.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..wire.registry import REGISTRY
from .engine import ModuleContext, ProjectRule, rule
from .findings import Finding, Severity
from .iprules import (
    _finding,
    _node_at,
    _roots,
    is_volatile_source,
    tainted_functions,
)
from .project import (
    WAL_APPEND_METHODS,
    ClassInfo,
    Event,
    FunctionInfo,
    InlineWalker,
    Project,
)

__all__ = [
    "AckBeforeFsyncRule",
    "MutationWithoutLogRule",
    "CrashUnsafeCleanupRule",
    "VolatileWalPayloadRule",
    "WalReplayRegistryRule",
]

#: Wire response class names — a ``return <one of these>(...)`` (or any
#: ``*Reply``/``Ack`` constructor) is the handler's acknowledgement.
_RESPONSE_CLASS_NAMES = frozenset(
    spec.response.__name__ for spec in REGISTRY.values())

#: ``self.<attr>`` write families that are durable state beyond the
#: storage backend itself. ``key_states`` is deliberately absent: it is
#: OCC metadata rebuilt from the replayed store and txn table, not
#: logged state.
_DURABLE_WRITE_FAMILIES = frozenset({"txn_table"})

#: Function names that host the replay/bootstrap dispatch arms DUR005
#: cross-checks appends against.
_REPLAY_FUNCTION_NAMES = frozenset({
    "replay_wal", "replay", "replay_log", "bootstrap_from_wal"})

#: The typed append helpers pin their record kind (repro.durability.wal).
_TYPED_APPEND_KINDS = {
    "append_put": "semel.put",
    "bootstrap_put": "semel.put",
    "append_delete": "semel.delete",
    "append_txn": "txn",
}

#: Reply field values that renounce durability: an ABORT vote or an
#: UNKNOWN/ABORTED status promises nothing about persisted state, so an
#: unsynced abort record behind it is safe (nothing acked is lost).
_NON_CLAIM_NAMES = frozenset({"UNKNOWN", "ABORTED"})


def _is_ack_name(name: str) -> bool:
    return (name in _RESPONSE_CLASS_NAMES or name.endswith("Reply")
            or name == "Ack")


def _claims_durability(node: ast.AST) -> bool:
    """False when the reply itself renounces durability (an ABORT vote,
    an UNKNOWN/ABORTED status, ``applied=False``)."""
    if not isinstance(node, ast.Call):
        return True
    for keyword in node.keywords:
        value = keyword.value
        if isinstance(value, ast.Constant) and value.value == "ABORT":
            return False
        if isinstance(value, ast.Name) and value.id in _NON_CLAIM_NAMES:
            return False
        if keyword.arg == "applied" and \
                isinstance(value, ast.Constant) and value.value is False:
            return False
    return True


def _is_tracked_mutation(event: Event) -> bool:
    """A mutation of state that must survive a crash: any storage-backend
    write, or a write to a durable ``self.<attr>`` family."""
    if event.kind == "durable_write":
        return True
    return event.kind == "write" and event.family in _DURABLE_WRITE_FAMILIES


def _mentions_self_wal(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "wal" and \
                isinstance(sub.value, ast.Name) and sub.value.id == "self":
            return True
    return False


def _wal_enabled_classes(project: Project) -> Set[str]:
    """Qualnames of classes (including subclasses) whose methods touch
    ``self.wal`` — the surface whose handlers owe the log an append."""
    direct: Set[str] = set()
    for class_info in project.classes.values():
        if any(_mentions_self_wal(method.node)
               for method in class_info.methods.values()):
            direct.add(class_info.qualname)
    enabled: Set[str] = set()
    for class_info in project.classes.values():
        if any(ancestor.qualname in direct
               for ancestor in project.mro(class_info)):
            enabled.add(class_info.qualname)
    return enabled


def _class_in_paths(class_info: ClassInfo,
                    parts: Tuple[str, ...]) -> bool:
    file_parts = PurePath(class_info.module.path).parts
    return any(part in file_parts for part in parts)


def _mentions_wal(expr: ast.AST) -> bool:
    """Whether an append call's receiver expression names a WAL
    (``self.wal``, ``server.wal``, a ``wal`` local, ...)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and "wal" in node.attr.lower():
            return True
        if isinstance(node, ast.Name) and "wal" in node.id.lower():
            return True
    return False


def _is_wal_append_call(call: ast.Call) -> bool:
    func = call.func
    return (isinstance(func, ast.Attribute)
            and func.attr in WAL_APPEND_METHODS
            and _mentions_wal(func.value))


@rule
class AckBeforeFsyncRule(ProjectRule):
    """DUR001: a durability-claiming reply behind a background fsync.

    The handler mutates tracked durable state and acknowledges it, but
    the only WAL append on the path is ``sync=False`` — the entry is
    volatile until a background process fsyncs it, and an amnesia crash
    in the suspend window between the append and the ack (or during the
    ack itself) erases a write the client was told is durable. The
    dynamic witness is the nemesis A/B pair in ``test_durability.py``:
    the lossy ``sync_*=False`` control loses exactly these writes.
    """

    rule_id = "DUR001"
    severity = Severity.ERROR
    description = ("reply claims durability but the WAL append on the "
                   "path is sync=False; a crash in the suspend window "
                   "before the background fsync loses the acked write")
    required_path_parts = ("milana", "semel")
    counterpart = "test_durability.py nemesis A/B (durable vs lossy)"

    def check_project(self, project: Project) -> Iterable[Finding]:
        walker = InlineWalker(project)
        reported: Set[Tuple[str, int]] = set()
        for root in _roots(project, self.required_path_parts):
            if not root.is_generator:
                continue
            events = walker.walk(root)
            unsynced: Optional[Event] = None
            window: Optional[Event] = None
            wrote: Optional[Event] = None
            for event in events:
                if event.kind == "wal_append":
                    if event.detail == "nosync":
                        unsynced = event
                        window = None
                    else:
                        # A later sync/config append waits out its own
                        # fsync, and the earlier background fsync (same
                        # latency, scheduled earlier) completes no later
                        # — the debt is settled before any reply.
                        unsynced = None
                        window = None
                elif event.kind == "suspend" and unsynced is not None \
                        and window is None:
                    # A ``yield from wal.append(..., sync=False)`` emits
                    # its own suspend, but the sync=False generator never
                    # actually yields — the first *real* crash window is
                    # the next suspension after the append statement.
                    if not (event.function is unsynced.function
                            and event.line == unsynced.line):
                        window = event
                elif _is_tracked_mutation(event):
                    wrote = event
                elif event.kind == "reply" and event.detail is not None \
                        and _is_ack_name(event.detail):
                    if unsynced is not None and wrote is not None and \
                            _claims_durability(event.node):
                        key = (event.function.module.path, event.line)
                        if key not in reported:
                            reported.add(key)
                            if window is not None:
                                where = (
                                    f"a crash in the suspend window at "
                                    f"{window.function.name!r} line "
                                    f"{window.line} loses the acked "
                                    f"write")
                            else:
                                where = ("the reply itself races the "
                                         "background fsync")
                            yield _finding(
                                self, event.function.module.path,
                                _node_at(event),
                                f"{root.name!r} replies "
                                f"{event.detail} claiming durability, "
                                f"but the WAL append at line "
                                f"{unsynced.line} is sync=False; "
                                f"{where} — fsync (sync=True or the "
                                f"configured sync_* flag) before "
                                f"acknowledging")
                    unsynced = None
                    window = None
                    wrote = None


@rule
class MutationWithoutLogRule(ProjectRule):
    """DUR002: durable state mutated on a WAL-enabled path, never logged.

    Within one reply segment (handler entry or previous ack up to the
    next ack), a storage-backend write or transaction-table write with
    zero WAL appends anywhere on the segment is forgotten by replay: the
    crash-restart rebuild never sees it.
    """

    rule_id = "DUR002"
    severity = Severity.ERROR
    description = ("durable state mutated on a WAL-enabled path with no "
                   "WAL append on the same path; replay after an "
                   "amnesia crash silently forgets the mutation")
    required_path_parts = ("milana", "semel")
    counterpart = "DUR001"

    def check_project(self, project: Project) -> Iterable[Finding]:
        walker = InlineWalker(project)
        enabled = _wal_enabled_classes(project)
        reported: Set[Tuple[str, int]] = set()
        for root in _roots(project, self.required_path_parts):
            if not root.is_generator:
                continue
            if root.class_info is None or \
                    root.class_info.qualname not in enabled:
                continue
            events = walker.walk(root)
            segments: List[Tuple[Optional[Event], bool]] = []
            first_write: Optional[Event] = None
            appended = False
            for event in events:
                if event.kind == "wal_append":
                    appended = True
                elif _is_tracked_mutation(event) and first_write is None:
                    first_write = event
                elif event.kind == "reply" and event.detail is not None \
                        and _is_ack_name(event.detail):
                    segments.append((first_write, appended))
                    first_write = None
                    appended = False
            segments.append((first_write, appended))
            for write, has_append in segments:
                if write is None or has_append:
                    continue
                key = (write.function.module.path, write.line)
                if key in reported:
                    continue
                reported.add(key)
                family = write.family or "the backing store"
                yield _finding(
                    self, write.function.module.path, _node_at(write),
                    f"{root.name!r} mutates durable state ({family}) "
                    f"on a WAL-enabled path with no WAL append on the "
                    f"same path; an amnesia crash leaves no record to "
                    f"replay — append before (or alongside) the "
                    f"mutation")


@rule
class CrashUnsafeCleanupRule(ProjectRule):
    """DUR003: post-suspend ``finally`` cleanup that can't survive crash.

    On a class with a :meth:`crash` method, a ``try`` body that
    suspends can be interrupt-killed mid-flight; by the time its
    ``finally`` runs, ``crash`` has already replaced the volatile
    tables, so the key being cleaned up may be gone. Bare ``del d[k]``,
    a bare ``d[k]`` read, or ``.pop(k)`` without a default raises
    KeyError into the interrupt path; ``.pop(k, None)`` is required.
    """

    rule_id = "DUR003"
    severity = Severity.ERROR
    description = ("finally-block cleanup after a suspend indexes "
                   "crash-wiped state without a default; use "
                   ".pop(key, None) so the crash-kill interrupt "
                   "survives the already-replaced table")
    required_path_parts = ("milana", "semel", "durability")
    counterpart = "DUR001"

    def check_project(self, project: Project) -> Iterable[Finding]:
        for qualname in sorted(project.classes):
            class_info = project.classes[qualname]
            if not _class_in_paths(class_info, self.required_path_parts):
                continue
            if project.resolve_method(class_info, "crash") is None:
                continue
            for name in sorted(class_info.methods):
                yield from self._check_method(class_info.methods[name])

    def _check_method(self, method: FunctionInfo) -> Iterator[Finding]:
        for node in ModuleContext.own_nodes(method.node):
            if isinstance(node, ast.Try) and \
                    self._suspends(node.body):
                for stmt in node.finalbody:
                    yield from self._check_cleanup(method, stmt)

    @staticmethod
    def _suspends(statements: List[ast.stmt]) -> bool:
        return any(
            isinstance(node, (ast.Yield, ast.YieldFrom))
            for stmt in statements
            for node in ModuleContext.own_nodes(stmt))

    def _check_cleanup(self, method: FunctionInfo,
                       stmt: ast.stmt) -> Iterator[Finding]:
        path = method.module.path
        for node in ast.walk(stmt):
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        yield _finding(
                            self, path, node,
                            f"{method.name!r} cleans up with a bare "
                            f"'del' in a post-suspend finally block; a "
                            f"crash-kill interrupt lands here after the "
                            f"table was replaced and the key is gone — "
                            f"use .pop(key, None)")
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, ast.Load) and \
                    self._is_self_attr(node.value):
                yield _finding(
                    self, path, node,
                    f"{method.name!r} indexes self state with a bare "
                    f"[] in a post-suspend finally block; after a "
                    f"crash-kill interrupt the wiped table raises "
                    f"KeyError — use .get/.pop with a default")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "pop" and \
                    len(node.args) == 1 and not node.keywords and \
                    not (isinstance(node.args[0], ast.Constant)
                         and isinstance(node.args[0].value, int)):
                yield _finding(
                    self, path, node,
                    f"{method.name!r} calls .pop(key) without a "
                    f"default in a post-suspend finally block; after a "
                    f"crash-kill interrupt the wiped table raises "
                    f"KeyError — use .pop(key, None)")

    @staticmethod
    def _is_self_attr(expr: ast.AST) -> bool:
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        return isinstance(expr, ast.Name) and expr.id == "self"


@rule
class VolatileWalPayloadRule(ProjectRule):
    """DUR004: WAL payloads tainted by wall-clock/random reads.

    Replay reconstructs state from record payloads; a payload field
    derived from ``time.time()``/``random`` (directly, or through a
    helper the DET101 taint engine marks) differs between the run that
    crashed and any re-execution, so recovery diverges nondeterministically.
    """

    rule_id = "DUR004"
    severity = Severity.ERROR
    description = ("WAL record payload derives from a wall-clock/random "
                   "read; replay reconstructs different state than the "
                   "run that crashed")
    required_path_parts = ("milana", "semel", "durability")
    excluded_path_suffixes = ("sim/rng.py",)
    counterpart = "DET101"

    def check_project(self, project: Project) -> Iterable[Finding]:
        tainted = tainted_functions(project, self.excluded_path_suffixes)
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not info.path_has_part(self.required_path_parts):
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call) and _is_wal_append_call(node):
                    yield from self._check_payload(
                        project, info, node, tainted)

    def _check_payload(self, project: Project, info: FunctionInfo,
                       call: ast.Call,
                       tainted: Set[str]) -> Iterator[Finding]:
        payload_args = list(call.args) + [
            keyword.value for keyword in call.keywords
            if keyword.arg != "sync"]
        for arg in payload_args:
            for sub in ast.walk(arg):
                if not isinstance(sub, ast.Call):
                    continue
                qualname = info.module.qualname(sub.func)
                if qualname is not None and is_volatile_source(qualname):
                    yield _finding(
                        self, info.module.path, call,
                        f"{info.name!r} appends a WAL payload computed "
                        f"from {qualname}; replay would reconstruct "
                        f"different state — derive it from "
                        f"Simulator.now or a SeededRng substream")
                    return
                callee = project.resolve_call(info, sub)
                if callee is not None and callee.qualname in tainted:
                    yield _finding(
                        self, info.module.path, call,
                        f"{info.name!r} appends a WAL payload from "
                        f"{callee.name!r}, which derives from a "
                        f"wall-clock/random read; replay would "
                        f"reconstruct different state — derive it from "
                        f"Simulator.now or a SeededRng substream")
                    return


@rule
class WalReplayRegistryRule(ProjectRule):
    """DUR005: every appended record kind must have a replay arm.

    Mirrors the wire-registry conformance check: the replay/bootstrap
    dispatcher (``replay_wal`` and friends) is the registry, and an
    append of a kind no arm matches is durably written and silently
    dropped on recovery. Dynamic kind expressions (a plain variable)
    are skipped — only literal kinds and named module constants are
    cross-checked, and only when a replay dispatcher is in the analyzed
    tree (a partial analysis must not indict kinds whose arms it simply
    didn't read).
    """

    rule_id = "DUR005"
    severity = Severity.ERROR
    description = ("WAL record kind is appended but no replay/bootstrap "
                   "arm handles it; recovery silently drops those "
                   "records")
    required_path_parts = ("milana", "semel", "durability")
    counterpart = "PRO001"

    def check_project(self, project: Project) -> Iterable[Finding]:
        constants = self._string_constants(project)
        arms = self._replay_arms(project, constants)
        if not arms:
            return
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not info.path_has_part(self.required_path_parts):
                continue
            for node in ast.walk(info.node):
                if not (isinstance(node, ast.Call)
                        and _is_wal_append_call(node)):
                    continue
                kind = self._append_kind(node, constants)
                if kind is not None and kind not in arms:
                    yield _finding(
                        self, info.module.path, node,
                        f"{info.name!r} appends WAL records of kind "
                        f"{kind!r} but no replay/bootstrap arm handles "
                        f"that kind; a crash-restart durably keeps and "
                        f"then silently drops them — add a "
                        f"{sorted(_REPLAY_FUNCTION_NAMES)[0]!r}-style "
                        f"dispatch arm")

    @staticmethod
    def _string_constants(project: Project) -> Dict[str, str]:
        """Module-level ``NAME = "literal"`` bindings, project-wide, so
        ``entry.kind == SEMEL_PUT`` resolves even through the relative
        imports the module name-map skips."""
        values: Dict[str, str] = {}
        for ctx in project.modules.values():
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.Assign) \
                        and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name) \
                        and isinstance(stmt.value, ast.Constant) \
                        and isinstance(stmt.value.value, str):
                    values[stmt.targets[0].id] = stmt.value.value
        return values

    @classmethod
    def _replay_arms(cls, project: Project,
                     constants: Dict[str, str]) -> Set[str]:
        arms: Set[str] = set()
        for info in project.functions.values():
            if info.name not in _REPLAY_FUNCTION_NAMES:
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Compare):
                    continue
                sides = [node.left] + list(node.comparators)
                if not any(isinstance(side, ast.Attribute)
                           and side.attr == "kind" for side in sides):
                    continue
                for side in sides:
                    if isinstance(side, ast.Attribute) and \
                            side.attr == "kind":
                        continue
                    arms |= cls._kind_tokens(side, constants)
        return arms

    @classmethod
    def _kind_tokens(cls, expr: ast.AST,
                     constants: Dict[str, str]) -> Set[str]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return {expr.value}
        if isinstance(expr, ast.Name):
            value = constants.get(expr.id)
            return {value} if value is not None else set()
        if isinstance(expr, ast.Attribute):
            value = constants.get(expr.attr)
            return {value} if value is not None else set()
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            tokens: Set[str] = set()
            for elt in expr.elts:
                tokens |= cls._kind_tokens(elt, constants)
            return tokens
        return set()

    @classmethod
    def _append_kind(cls, call: ast.Call,
                     constants: Dict[str, str]) -> Optional[str]:
        func = call.func
        assert isinstance(func, ast.Attribute)
        if func.attr in _TYPED_APPEND_KINDS:
            return _TYPED_APPEND_KINDS[func.attr]
        kind_expr: Optional[ast.expr] = None
        if call.args:
            kind_expr = call.args[0]
        else:
            for keyword in call.keywords:
                if keyword.arg == "kind":
                    kind_expr = keyword.value
        if kind_expr is None:
            return None
        tokens = cls._kind_tokens(kind_expr, constants)
        if len(tokens) == 1:
            return next(iter(tokens))
        return None
