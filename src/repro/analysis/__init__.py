"""simlint: determinism & protocol-hygiene static analysis for this repo.

The reproduction's headline guarantee — identical abort-rate/latency
numbers run-to-run for a fixed seed — is a *whole-codebase* invariant.
One ``time.time()`` in an event handler, one bare ``random.random()``,
or one iteration over an unordered ``set`` feeding replication fan-out
silently breaks it. ``repro.analysis`` enforces those rules with an
AST-based analyzer:

* a visitor framework over every module (``engine``),
* a registry of repo-specific rules (``rules``) — DET001..DET004,
  SIM001, RPC001, TXN001, API001,
* inline ``# simlint: disable=RULE`` suppressions,
* a checked-in baseline file for grandfathered findings (``baseline``),
* a CLI: ``python -m repro.analysis [paths] [--format text|json]``,
  also exposed as ``python -m repro analyze``.

See ``docs/ANALYSIS.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from .baseline import Baseline
from .engine import ModuleContext, Rule, all_rules, analyze_paths, rule
from .findings import Finding, Severity

__all__ = [
    "Baseline",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "rule",
]
