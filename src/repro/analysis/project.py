"""Whole-program model for interprocedural simlint rules.

A :class:`Project` spans every successfully parsed module of one
analyzer invocation and layers three artifacts over the per-module
:class:`~repro.analysis.engine.ModuleContext`:

* a **symbol table** — every class and (possibly nested) function,
  keyed by a dotted qualified name derived from the file path
  (``src/repro/milana/server.py`` → ``repro.milana.server``);
* a **call graph** — each call site resolved to a project function
  where possible: ``self.method(...)`` through the class hierarchy,
  bare names through module scope / ``from``-imports (absolute and
  relative), dotted names through import aliases, and, as a last
  resort, a unique-bare-name match across the whole project.
  ``sim.process(fn(...))`` spawn sites are kept separate from plain
  call edges because exceptions do not propagate across a spawn;
* **effect summaries** per function — own-level suspension points,
  raised exception classes (a ``event.fail(Exc(...))`` inside a nested
  worker counts against the enclosing function, which is where the
  failure surfaces when the event is yielded on), wire-method
  registration and call sites, and return-expression shapes.

Rules built on top (see :mod:`repro.analysis.iprules`) either consume
the summaries directly (protocol conformance, exception-leak fixpoints)
or replay a handler through :class:`InlineWalker`, which flattens the
transitive call chain into one ordered event stream with local-variable
tag propagation — the machinery that makes a check-then-act race
visible even when the check and the act live in different functions.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .engine import ModuleContext

__all__ = [
    "Project",
    "ClassInfo",
    "FunctionInfo",
    "CallSite",
    "RegisterSite",
    "WireCallSite",
    "InlineWalker",
    "Event",
    "module_name_for_path",
    "EXCEPTION_BASES",
    "exception_matches",
    "uncaught",
]

#: Known exception hierarchy (class name -> direct base name) for the
#: classes protocol rules reason about. ``AppError`` deliberately
#: subclasses ``RpcError`` in ``repro.net.rpc``; ``QuorumError`` is a
#: plain ``Exception`` — which is exactly why it slips past
#: ``except RpcError`` clauses.
EXCEPTION_BASES: Dict[str, str] = {
    "RpcTimeout": "RpcError",
    "AppError": "RpcError",
    "RpcError": "Exception",
    "QuorumError": "Exception",
    "TransactionAborted": "Exception",
    "Exception": "BaseException",
}

#: Method names that mutate the object they are called on, for
#: state-write detection on ``self.<attr>.<method>(...)`` receivers.
MUTATOR_METHODS = frozenset({
    # dict / set / list
    "add", "discard", "remove", "pop", "popitem", "clear", "update",
    "setdefault", "append", "extend", "insert",
    # repro-specific state tables
    "mark_prepared", "mark_committed", "clear_prepared", "observe_read",
    "report", "set_watermark", "record",
})

#: ``self.<attr>`` families treated as locks rather than shared state:
#: the in-flight coalescing maps guard a critical section, so writes
#: made while one is held (or to the map itself) are not races.
LOCK_ATTR_PREFIXES = ("_inflight",)

#: Append entry points of the write-ahead log, for ``wal_append`` event
#: emission (DUR rules). The generic names only match wal-ish receiver
#: families (``self.wal.append(...)``, a ``wal`` local) so that plain
#: ``list.append`` calls never register as log writes.
WAL_APPEND_METHODS = frozenset({
    "append", "append_put", "append_delete", "append_txn",
    "bootstrap", "bootstrap_put",
})

#: Storage-backend methods that mutate durable (WAL-covered) state, for
#: ``durable_write`` event emission. ``set_watermark`` is deliberately
#: absent: the GC watermark is volatile by design and rebuilt from
#: client reports after a restart.
DURABLE_STORE_METHODS = frozenset({"put", "delete", "bulk_load"})


def _is_wal_family(family: str) -> bool:
    return "wal" in family.lower()


def _append_sync_mode(call: ast.Call) -> str:
    """Classify a WAL append call's fsync discipline from its ``sync``
    keyword: ``"sync"`` (True or omitted — ack-after-fsync),
    ``"nosync"`` (literal False — ack-before-fsync), or ``"config"``
    (a ``self.wal.config.sync_*`` flag or other expression, honest by
    default)."""
    for kw in call.keywords:
        if kw.arg == "sync":
            if isinstance(kw.value, ast.Constant):
                return "sync" if kw.value.value else "nosync"
            return "config"
    return "sync"


def module_name_for_path(path: str) -> str:
    """Dotted module name derived from a file path.

    ``src/repro/milana/server.py`` → ``repro.milana.server``;
    ``pkg/__init__.py`` → ``pkg``. Leading ``src`` components are
    dropped so paths under a conventional src-layout resolve to the
    import name. The mapping only needs to be *consistent* within one
    analyzed tree — relative imports are resolved against it.
    """
    parts = list(PurePath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    while parts and parts[0] in ("src", ".", ".."):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def exception_matches(raised: str, caught: Set[str]) -> bool:
    """True when an exception class named ``raised`` is covered by an
    ``except`` clause catching any of ``caught`` (bare ``except:`` is
    represented by ``BaseException``)."""
    name: Optional[str] = raised
    seen: Set[str] = set()
    while name is not None and name not in seen:
        if name in caught:
            return True
        seen.add(name)
        name = EXCEPTION_BASES.get(name)
    return False


def uncaught(raised: Iterable[str], caught: Set[str]) -> Set[str]:
    """The subset of ``raised`` that escapes an except-set ``caught``."""
    return {name for name in raised if not exception_matches(name, caught)}


class CallSite:
    """One call expression inside a function, with resolution info."""

    def __init__(self, node: ast.Call, callee: Optional["FunctionInfo"],
                 caught: Set[str], is_spawn: bool) -> None:
        self.node = node
        self.callee = callee
        #: Exception class names caught by ``try`` blocks enclosing the
        #: call *within the same function* (bare except → BaseException).
        self.caught = caught
        #: True when the call is the argument of ``sim.process(...)`` —
        #: a spawned process, whose failures do not propagate here.
        self.is_spawn = is_spawn


class RegisterSite:
    """One ``node.register("<method>", handler)`` call."""

    def __init__(self, method: str, node: ast.Call, path: str,
                 handler: Optional["FunctionInfo"]) -> None:
        self.method = method
        self.node = node
        self.path = path
        self.handler = handler


class WireCallSite:
    """One RPC send-site with a literal dotted method name."""

    def __init__(self, method: str, node: ast.Call, kind: str,
                 function: "FunctionInfo") -> None:
        self.method = method
        self.node = node
        #: "call", "send_oneway", "notify", or "replicate_to_backups".
        self.kind = kind
        self.function = function


class FunctionInfo:
    """One function or method, with its effect summary."""

    def __init__(self, module: ModuleContext, module_name: str,
                 node: ast.FunctionDef,
                 class_info: Optional["ClassInfo"],
                 enclosing: Optional["FunctionInfo"]) -> None:
        self.module = module
        self.module_name = module_name
        self.node = node
        self.name = node.name
        self.class_info = class_info
        #: Enclosing function for nested defs (else None).
        self.enclosing = enclosing
        owner = class_info.qualname if class_info else module_name
        if enclosing is not None:
            owner = enclosing.qualname
        self.qualname = f"{owner}.{node.name}" if owner else node.name
        self.params: List[str] = [a.arg for a in node.args.args]
        # -- summaries, filled by Project._summarize -----------------------
        #: Own-level suspension points (yield/yield-from lines), with the
        #: no-op ``yield from ()`` generator-protocol idiom excluded.
        self.suspension_lines: List[int] = []
        self.is_generator: bool = False
        #: Exception class names raised at this function's own level,
        #: including ``event.fail(Exc(...))`` in nested workers (the
        #: failure surfaces where the event is yielded on — here).
        self.own_raises: Set[str] = set()
        self.call_sites: List[CallSite] = []
        self.returns: List[ast.Return] = []
        self._transitive_raises: Optional[Set[str]] = None

    @property
    def is_daemon(self) -> bool:
        return self.name.endswith("_daemon") or self.name.endswith("_loop")

    def path_has_part(self, parts: Sequence[str]) -> bool:
        file_parts = PurePath(self.module.path).parts
        return any(part in file_parts for part in parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


class ClassInfo:
    """One class definition with its direct methods and base names."""

    def __init__(self, module: ModuleContext, module_name: str,
                 node: ast.ClassDef) -> None:
        self.module = module
        self.module_name = module_name
        self.node = node
        self.name = node.name
        self.qualname = f"{module_name}.{node.name}" if module_name \
            else node.name
        #: Base-class expressions as dotted strings (import-resolved).
        self.base_names: List[str] = []
        for base in node.bases:
            dotted = module.qualname(base)
            if dotted:
                self.base_names.append(dotted)
        self.methods: Dict[str, FunctionInfo] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassInfo {self.qualname}>"


def _ordered_own_statements(node: ast.AST) -> Iterator[ast.AST]:
    """Children of ``node`` in source order, not descending into nested
    defs/classes/lambdas (unlike ``ast.walk``, order is deterministic
    and matches the source)."""
    for child in ast.iter_child_nodes(node):
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield from _ordered_own_statements(child)


def _is_noop_yield_from(node: ast.AST) -> bool:
    """``yield from ()`` — the generator-protocol no-op, not a
    suspension point."""
    return (isinstance(node, ast.YieldFrom)
            and isinstance(node.value, (ast.Tuple, ast.List))
            and not node.value.elts)


def _spawn_argument_calls(func: ast.AST) -> Set[int]:
    """ids of Call nodes that appear as arguments of ``*.process(...)``
    (spawned generators: separate process, no exception propagation)."""
    spawned: Set[int] = set()
    for node in _ordered_own_statements(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"):
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    spawned.add(id(arg))
    return spawned


def _caught_map(func: ast.AST) -> Dict[int, Set[str]]:
    """node id -> exception names caught by enclosing try blocks.

    Only ``try`` *bodies* are protected; handlers/else/finally are not
    covered by their own clauses. Nested defs are not entered.
    """
    caught: Dict[int, Set[str]] = {}

    def names_for(handler: ast.ExceptHandler) -> Set[str]:
        if handler.type is None:
            return {"BaseException"}
        types = handler.type.elts \
            if isinstance(handler.type, ast.Tuple) else [handler.type]
        names: Set[str] = set()
        for expr in types:
            if isinstance(expr, ast.Attribute):
                names.add(expr.attr)
            elif isinstance(expr, ast.Name):
                names.add(expr.id)
        return names

    def walk(node: ast.AST, active: Set[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Try):
                handler_names: Set[str] = set()
                for handler in child.handlers:
                    handler_names |= names_for(handler)
                for stmt in child.body:
                    caught[id(stmt)] = active | handler_names
                    walk(stmt, active | handler_names)
                for handler in child.handlers:
                    for stmt in handler.body:
                        caught[id(stmt)] = set(active)
                        walk(stmt, active)
                for stmt in child.orelse + child.finalbody:
                    caught[id(stmt)] = set(active)
                    walk(stmt, active)
            else:
                caught[id(child)] = set(active)
                walk(child, active)

    walk(func, set())
    return caught


class Project:
    """Symbol table + call graph + summaries over one analyzed tree."""

    def __init__(self, contexts: Iterable[ModuleContext]) -> None:
        self.modules: Dict[str, ModuleContext] = {}
        self.module_names: Dict[str, str] = {}  # path -> dotted name
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.register_sites: List[RegisterSite] = []
        self.wire_call_sites: List[WireCallSite] = []
        for ctx in contexts:
            self._collect_module(ctx)
        for info in list(self.functions.values()):
            self._summarize(info)
        self._collect_protocol_sites()

    # -- collection --------------------------------------------------------

    def _collect_module(self, ctx: ModuleContext) -> None:
        module_name = module_name_for_path(ctx.path)
        self.modules[ctx.path] = ctx
        self.module_names[ctx.path] = module_name

        def visit(node: ast.AST, class_info: Optional[ClassInfo],
                  enclosing: Optional[FunctionInfo]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    info = ClassInfo(ctx, module_name, child)
                    self.classes[info.qualname] = info
                    self.classes_by_name.setdefault(
                        info.name, []).append(info)
                    visit(child, info, None)
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    if not isinstance(child, ast.FunctionDef):
                        continue  # async defs don't occur in this tree
                    fn = FunctionInfo(ctx, module_name, child,
                                      class_info if enclosing is None
                                      else None, enclosing)
                    self.functions[fn.qualname] = fn
                    self.functions_by_name.setdefault(
                        fn.name, []).append(fn)
                    if class_info is not None and enclosing is None:
                        class_info.methods[fn.name] = fn
                    visit(child, None, fn)
                else:
                    visit(child, class_info, enclosing)

        visit(ctx.tree, None, None)

    # -- name resolution ---------------------------------------------------

    def _resolve_relative_import(self, ctx: ModuleContext,
                                 level: int, module: Optional[str],
                                 name: str) -> Optional[FunctionInfo]:
        """``from .validation import validate`` inside repro.milana.server
        → repro.milana.validation.validate."""
        package = module_name_for_path(ctx.path).split(".")[:-1]
        if level > len(package):
            return None
        base = package[: len(package) - (level - 1)]
        target = ".".join(base + (module.split(".") if module else []))
        return self.functions.get(f"{target}.{name}")

    def _unique_by_name(self, name: str) -> Optional[FunctionInfo]:
        candidates = self.functions_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_class(self, dotted: str) -> Optional[ClassInfo]:
        """A class by absolute qualname, module-qualified suffix, or
        unique bare name."""
        if dotted in self.classes:
            return self.classes[dotted]
        bare = dotted.split(".")[-1]
        candidates = self.classes_by_name.get(bare, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def mro(self, class_info: ClassInfo) -> List[ClassInfo]:
        """Linearized in-project ancestry (self first, DFS over bases)."""
        result: List[ClassInfo] = []
        seen: Set[str] = set()

        def add(info: ClassInfo) -> None:
            if info.qualname in seen:
                return
            seen.add(info.qualname)
            result.append(info)
            for base_name in info.base_names:
                base = self.resolve_class(base_name)
                if base is not None:
                    add(base)

        add(class_info)
        return result

    def resolve_method(self, class_info: ClassInfo,
                       name: str) -> Optional[FunctionInfo]:
        for ancestor in self.mro(class_info):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """The project function a call resolves to, or None."""
        func = call.func
        # self.method(...)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            owner = caller.class_info
            if owner is None and caller.enclosing is not None:
                owner = caller.enclosing.class_info
            if owner is not None:
                resolved = self.resolve_method(owner, func.attr)
                if resolved is not None:
                    return resolved
            return self._unique_method(func.attr)
        ctx = caller.module
        if isinstance(func, ast.Name):
            name = func.id
            # same-module function
            local = self.functions.get(f"{caller.module_name}.{name}")
            if local is not None and local.class_info is None:
                return local
            # absolute from-import
            if name in ctx.from_imports:
                dotted = ctx.from_imports[name]
                resolved = self.functions.get(dotted)
                if resolved is not None:
                    return resolved
            # relative from-import
            resolved = self._resolve_from_relative(ctx, name)
            if resolved is not None:
                return resolved
            return self._unique_by_name(name)
        if isinstance(func, ast.Attribute):
            dotted = ctx.qualname(func)
            if dotted is not None and dotted in self.functions:
                return self.functions[dotted]
            # obj.method(...) on an unknown receiver: unique method name
            return self._unique_method(func.attr)
        return None

    def _unique_method(self, name: str) -> Optional[FunctionInfo]:
        """Unique-name fallback, restricted to uncommon names so that
        e.g. ``.get(...)`` on a dict never resolves to a method."""
        candidates = [fn for fn in self.functions_by_name.get(name, [])]
        if len(candidates) == 1 and name not in (
                "get", "put", "call", "send", "run", "process", "register",
                "timeout", "event"):
            return candidates[0]
        return None

    def _resolve_from_relative(self, ctx: ModuleContext,
                               name: str) -> Optional[FunctionInfo]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level:
                for alias in node.names:
                    if (alias.asname or alias.name) == name:
                        return self._resolve_relative_import(
                            ctx, node.level, node.module, alias.name)
        return None

    # -- summaries ---------------------------------------------------------

    def _summarize(self, info: FunctionInfo) -> None:
        func = info.node
        spawned = _spawn_argument_calls(func)
        caught = _caught_map(func)
        for node in _ordered_own_statements(func):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                info.is_generator = True
                if not _is_noop_yield_from(node):
                    info.suspension_lines.append(node.lineno)
            elif isinstance(node, ast.Raise):
                name = self._exception_name(node.exc)
                if name:
                    info.own_raises.add(name)
            elif isinstance(node, ast.Return):
                info.returns.append(node)
            elif isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "fail" and node.args
                        and isinstance(node.args[0], ast.Call)):
                    # event.fail(Exc(...)): surfaces at the yield site.
                    name = self._exception_name(node.args[0])
                    target = info.enclosing or info
                    if name:
                        target.own_raises.add(name)
                info.call_sites.append(CallSite(
                    node, None, caught.get(id(node), set()),
                    id(node) in spawned))
        # Fold nested workers' fail-raises upward (done above via
        # ``target``); resolve callees now that all functions exist.
        for site in info.call_sites:
            site.callee = self.resolve_call(info, site.node)

    @staticmethod
    def _exception_name(expr: Optional[ast.AST]) -> Optional[str]:
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None

    def _collect_protocol_sites(self) -> None:
        for info in self.functions.values():
            for site in info.call_sites:
                call = site.node
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr == "register" and call.args:
                    method = call.args[0]
                    if isinstance(method, ast.Constant) and \
                            isinstance(method.value, str):
                        handler = None
                        if len(call.args) > 1:
                            handler = self._handler_for(info, call.args[1])
                        self.register_sites.append(RegisterSite(
                            method.value, call, info.module.path, handler))
                elif func.attr in ("call", "send_oneway", "notify"):
                    if len(call.args) >= 2 and \
                            isinstance(call.args[1], ast.Constant) and \
                            isinstance(call.args[1].value, str):
                        self.wire_call_sites.append(WireCallSite(
                            call.args[1].value, call, func.attr, info))

    def _handler_for(self, registrar: FunctionInfo,
                     expr: ast.AST) -> Optional[FunctionInfo]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and registrar.class_info is not None):
            return self.resolve_method(registrar.class_info, expr.attr)
        if isinstance(expr, ast.Name):
            return self._unique_by_name(expr.id)
        return None

    # -- exception propagation --------------------------------------------

    def transitive_raises(self, info: FunctionInfo) -> Set[str]:
        """Exception names that may escape ``info``: own raises plus
        callees' escapes not caught at the call site. Spawned processes
        are excluded (their failures surface in the spawned process)."""
        if info._transitive_raises is not None:
            return info._transitive_raises
        # Fixpoint over the (possibly cyclic) call graph.
        order: List[FunctionInfo] = []
        seen: Set[str] = set()

        def collect(fn: FunctionInfo) -> None:
            if fn.qualname in seen:
                return
            seen.add(fn.qualname)
            for site in fn.call_sites:
                if site.callee is not None and not site.is_spawn:
                    collect(site.callee)
            order.append(fn)

        collect(info)
        results: Dict[str, Set[str]] = {
            fn.qualname: set(fn.own_raises) for fn in order}
        changed = True
        while changed:
            changed = False
            for fn in order:
                for site in fn.call_sites:
                    if site.callee is None or site.is_spawn:
                        continue
                    known = results.get(site.callee.qualname)
                    if known is None:
                        # Callee already finalized by an earlier query.
                        known = site.callee._transitive_raises or set()
                    escaped = uncaught(known, site.caught)
                    if not escaped <= results[fn.qualname]:
                        results[fn.qualname] |= escaped
                        changed = True
        for fn in order:
            fn._transitive_raises = results[fn.qualname]
        return results[info.qualname]


# -- flattened event-stream walker ----------------------------------------


class Event:
    """One event in a flattened handler execution: kind is one of
    ``guard_read``, ``read``, ``write``, ``suspend``, ``validate``,
    ``record``, ``acquire``, ``release``, plus the durability kinds
    ``wal_append`` (detail = ``sync``/``nosync``/``config`` fsync
    discipline), ``durable_write`` (a storage-backend mutation the WAL
    must cover), and ``reply`` (a ``return WireClass(...)``; detail =
    the class name, node = the constructor call)."""

    __slots__ = ("kind", "family", "function", "line", "col",
                 "in_finally", "lock_depth", "detail", "node")

    def __init__(self, kind: str, family: Optional[str],
                 function: FunctionInfo, node: ast.AST,
                 in_finally: bool = False, lock_depth: int = 0,
                 detail: Optional[str] = None) -> None:
        self.kind = kind
        self.family = family
        self.function = function
        self.line = getattr(node, "lineno", 1)
        self.col = getattr(node, "col_offset", 0)
        self.in_finally = in_finally
        self.lock_depth = lock_depth
        self.detail = detail
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Event {self.kind} {self.family} "
                f"{self.function.name}:{self.line}>")


class _Frame:
    """Per-function state during inlining: local-variable tags mapping a
    name to the ``self.<attr>`` family its value derives from."""

    def __init__(self, info: FunctionInfo, tags: Dict[str, str]) -> None:
        self.info = info
        self.tags = tags


class InlineWalker:
    """Flatten a root function's transitive call chain into one ordered
    event stream.

    * ``self.<helper>(...)`` and module-function calls that resolve in
      the project are inlined (depth- and cycle-limited); spawned
      generators are not (separate process).
    * Local variables assigned from ``self.<attr>`` expressions are
      *tagged* with that attribute family; tags flow through iteration,
      comprehensions, and into callee parameters, so ``record.status``
      still reads/writes the ``txn_table`` family three calls deep.
    * Branch bodies that end in ``return``/``raise``/``continue``/
      ``break`` have their state changes rolled back — the linear
      continuation models the fall-through path, not the exited one.
    * Writes to in-flight coalescing maps (``LOCK_ATTR_PREFIXES``) are
      lock acquire/release events; writes under a held lock or inside a
      ``finally`` block are exempt from race reporting and are marked
      on the emitted event instead.
    """

    MAX_DEPTH = 5

    def __init__(self, project: Project) -> None:
        self.project = project

    def walk(self, root: FunctionInfo) -> List[Event]:
        self.events: List[Event] = []
        self.lock_depth = 0
        self.finally_depth = 0
        self._stack: List[str] = []
        initial_tags = {}
        self._walk_function(root, initial_tags)
        return self.events

    # -- helpers -----------------------------------------------------------

    def _emit(self, kind: str, family: Optional[str],
              frame: _Frame, node: ast.AST,
              detail: Optional[str] = None) -> None:
        self.events.append(Event(
            kind, family, frame.info, node,
            in_finally=self.finally_depth > 0,
            lock_depth=self.lock_depth,
            detail=detail))

    def _is_lock_family(self, family: str) -> bool:
        return family.startswith(LOCK_ATTR_PREFIXES)

    def _walk_function(self, info: FunctionInfo,
                       tags: Dict[str, str]) -> None:
        if info.qualname in self._stack or \
                len(self._stack) >= self.MAX_DEPTH:
            return
        self._stack.append(info.qualname)
        frame = _Frame(info, tags)
        try:
            self._walk_block(info.node.body, frame)
        finally:
            self._stack.pop()

    # -- families ----------------------------------------------------------

    def _families_in(self, expr: ast.AST, frame: _Frame) -> List[str]:
        """Every state family an expression reads (``self.<attr>`` or a
        tagged local, possibly through attribute/subscript chains)."""
        families: List[str] = []
        for node in ast.walk(expr):
            family = self._family_of(node, frame)
            if family is not None:
                families.append(family)
        return families

    def _family_of(self, node: ast.AST,
                   frame: _Frame) -> Optional[str]:
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return node.attr
        if isinstance(node, ast.Name):
            return frame.tags.get(node.id)
        return None

    # -- statement walk ----------------------------------------------------

    def _walk_block(self, statements: List[ast.stmt],
                    frame: _Frame) -> None:
        for stmt in statements:
            self._walk_statement(stmt, frame)

    @staticmethod
    def _block_exits(statements: List[ast.stmt]) -> bool:
        return bool(statements) and isinstance(
            statements[-1], (ast.Return, ast.Raise, ast.Continue,
                             ast.Break))

    def _walk_branch(self, statements: List[ast.stmt],
                     frame: _Frame) -> None:
        """Walk a conditional body; roll back its state effects when the
        body exits the linear flow (the fall-through never saw them)."""
        saved_tags = dict(frame.tags)
        saved_lock = self.lock_depth
        mark = len(self.events)
        self._walk_block(statements, frame)
        if self._block_exits(statements):
            frame.tags.clear()
            frame.tags.update(saved_tags)
            self.lock_depth = saved_lock
            # Detections already fired inside the branch stay reported;
            # only *state* (events considered by later detections) is
            # rolled back. We mark rolled-back events as inert.
            for event in self.events[mark:]:
                if event.kind in ("guard_read", "suspend"):
                    event.kind = f"dead_{event.kind}"

    def _walk_statement(self, stmt: ast.stmt, frame: _Frame) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.If):
            self._walk_expression(stmt.test, frame, guard=True)
            self._walk_branch(stmt.body, frame)
            self._walk_branch(stmt.orelse, frame)
            return
        if isinstance(stmt, (ast.While,)):
            self._walk_expression(stmt.test, frame, guard=True)
            self._walk_block(stmt.body, frame)
            self._walk_block(stmt.orelse, frame)
            return
        if isinstance(stmt, ast.For):
            self._walk_expression(stmt.iter, frame)
            self._tag_assign(stmt.target, stmt.iter, frame)
            self._walk_block(stmt.body, frame)
            self._walk_block(stmt.orelse, frame)
            return
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, frame)
            for handler in stmt.handlers:
                self._walk_branch(handler.body, frame)
            self._walk_block(stmt.orelse, frame)
            self.finally_depth += 1
            try:
                self._walk_block(stmt.finalbody, frame)
            finally:
                self.finally_depth -= 1
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._walk_expression(item.context_expr, frame)
            self._walk_block(stmt.body, frame)
            return
        if isinstance(stmt, ast.Assign):
            self._walk_expression(stmt.value, frame)
            for target in stmt.targets:
                self._handle_write_target(target, frame)
                self._tag_assign(target, stmt.value, frame)
            return
        if isinstance(stmt, ast.AugAssign):
            self._walk_expression(stmt.value, frame)
            self._handle_write_target(stmt.target, frame)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._walk_expression(stmt.value, frame)
                self._handle_write_target(stmt.target, frame)
                self._tag_assign(stmt.target, stmt.value, frame)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._handle_write_target(target, frame)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._walk_expression(stmt.value, frame)
                self._emit_reply(stmt.value, frame)
            return
        if isinstance(stmt, ast.Expr):
            self._walk_expression(stmt.value, frame)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._walk_expression(child, frame)
            elif isinstance(child, ast.stmt):
                self._walk_statement(child, frame)

    # -- writes ------------------------------------------------------------

    def _write_family(self, target: ast.AST,
                      frame: _Frame) -> Optional[str]:
        """The family a store-target mutates: ``self.X = / self.X[k] = /
        tagged.attr = / tagged[k] = / del self.X[k]``."""
        if isinstance(target, ast.Attribute):
            base = self._family_of(target.value, frame)
            if base is not None:
                return base
            # self.X = ...  (direct attribute store on self)
            if isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                return target.attr
            return None
        if isinstance(target, ast.Subscript):
            return self._family_of(target.value, frame) or (
                self._write_family(target.value, frame))
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                family = self._write_family(element, frame)
                if family is not None:
                    return family
        return None

    def _handle_write_target(self, target: ast.AST,
                             frame: _Frame) -> None:
        family = self._write_family(target, frame)
        if family is None:
            return
        if self._is_lock_family(family):
            # Subscript store on a lock map = acquire; ``del`` (a
            # Subscript target with Del context) = release.
            if isinstance(target, ast.Subscript):
                if isinstance(target.ctx, ast.Del):
                    self.lock_depth = max(0, self.lock_depth - 1)
                    self._emit("release", family, frame, target)
                else:
                    self.lock_depth += 1
                    self._emit("acquire", family, frame, target)
            return
        self._emit("write", family, frame, target)
        if family == "txn_table" and isinstance(target, ast.Subscript):
            # Storing a record in the transaction table records a
            # validation outcome (ATM001's "record" event).
            self._emit("record", family, frame, target)

    # -- expressions -------------------------------------------------------

    def _walk_expression(self, expr: ast.AST, frame: _Frame,
                         guard: bool = False) -> None:
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            if expr.value is not None:
                self._walk_expression(expr.value, frame, guard=False)
            if not _is_noop_yield_from(expr):
                self._emit("suspend", None, frame, expr)
            return
        if isinstance(expr, ast.Call):
            self._walk_call(expr, frame, guard=guard)
            return
        if isinstance(expr, ast.IfExp):
            self._walk_expression(expr.test, frame, guard=True)
            self._walk_expression(expr.body, frame, guard=guard)
            self._walk_expression(expr.orelse, frame, guard=guard)
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in expr.generators:
                self._walk_expression(gen.iter, frame, guard=guard)
                self._tag_assign(gen.target, gen.iter, frame)
                for cond in gen.ifs:
                    self._walk_expression(cond, frame, guard=True)
            if isinstance(expr, ast.DictComp):
                self._walk_expression(expr.key, frame, guard=guard)
                self._walk_expression(expr.value, frame, guard=guard)
            else:
                self._walk_expression(expr.elt, frame, guard=guard)
            return
        family = self._family_of(expr, frame)
        if family is not None and not self._is_lock_family(family):
            if isinstance(getattr(expr, "ctx", ast.Load()), ast.Load):
                self._emit("guard_read" if guard else "read",
                           family, frame, expr)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._walk_expression(child, frame, guard=guard)

    def _walk_call(self, call: ast.Call, frame: _Frame,
                   guard: bool = False) -> None:
        # Arguments / receiver first (evaluation order approximation).
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Call) and self._is_spawn(call):
                # Spawned generator: its body runs elsewhere; still walk
                # the argument expressions for reads.
                family = self._wal_append_family(arg, frame)
                if family is not None:
                    # Fire-and-forget log write: the spawning process
                    # never waits out the fsync, so for ack-ordering
                    # purposes this is ack-before-fsync regardless of
                    # the spawned generator's own sync flag.
                    self._emit("wal_append", family, frame, arg,
                               detail="nosync")
                for sub in ast.iter_child_nodes(arg):
                    if isinstance(sub, ast.expr):
                        self._walk_expression(sub, frame)
                continue
            self._walk_expression(arg, frame, guard=guard)
        func = call.func
        # validate(...) event for ATM001 (same semantics as TXN001).
        callee_name = None
        if isinstance(func, ast.Name):
            callee_name = func.id
        elif isinstance(func, ast.Attribute):
            callee_name = func.attr
        if callee_name and callee_name.endswith("validate"):
            self._emit("validate", None, frame, call)
        # Mutator / read on a state receiver: self.X.m(...) or tagged.m(...)
        if isinstance(func, ast.Attribute):
            receiver_family = self._family_of(func.value, frame)
            if receiver_family is None and \
                    isinstance(func.value, ast.Subscript):
                receiver_family = self._family_of(func.value.value, frame)
            if receiver_family is not None:
                if self._is_lock_family(receiver_family):
                    if func.attr in ("pop", "discard", "remove", "clear"):
                        self.lock_depth = max(0, self.lock_depth - 1)
                        self._emit("release", receiver_family, frame, call)
                    elif func.attr in ("setdefault",):
                        self.lock_depth += 1
                        self._emit("acquire", receiver_family, frame, call)
                    # plain .get() on a lock map: not a state read
                elif func.attr in WAL_APPEND_METHODS and \
                        _is_wal_family(receiver_family):
                    self._emit("wal_append", receiver_family, frame, call,
                               detail=_append_sync_mode(call))
                elif func.attr in DURABLE_STORE_METHODS and not guard:
                    self._emit("durable_write", receiver_family, frame,
                               call)
                elif func.attr in MUTATOR_METHODS:
                    self._emit("write", receiver_family, frame, call)
                    if func.attr in ("mark_prepared", "mark_committed"):
                        self._emit("record", receiver_family, frame, call)
                else:
                    self._emit("guard_read" if guard else "read",
                               receiver_family, frame, call)
            elif isinstance(func.value, ast.Name) and \
                    func.value.id == "self":
                pass  # self.method(...): handled via inlining below
            else:
                self._walk_expression(func.value, frame, guard=guard)
        # txn_table subscript store is handled by assignment targets;
        # ``record`` events for subscript stores:
        # (emitted in _handle_write_target callers via family name)
        # Inline resolved project calls.
        if self._is_spawn_wrapper(call):
            return
        callee = self.project.resolve_call(frame.info, call)
        if callee is not None and self._should_inline(frame.info, callee):
            tags: Dict[str, str] = {}
            params = list(callee.params)
            if params and params[0] == "self":
                params = params[1:]
            for param, arg in zip(params, call.args):
                families = self._families_in(arg, frame)
                if families:
                    tags[param] = families[0]
            self._walk_function(callee, tags)

    def _wal_append_family(self, call: ast.Call,
                           frame: _Frame) -> Optional[str]:
        """The wal-ish receiver family of a WAL append call, else None."""
        func = call.func
        if not isinstance(func, ast.Attribute) or \
                func.attr not in WAL_APPEND_METHODS:
            return None
        family = self._family_of(func.value, frame)
        if family is not None and _is_wal_family(family):
            return family
        return None

    def _emit_reply(self, value: ast.expr, frame: _Frame) -> None:
        """A ``return SomeClass(...)`` constructs a reply-shaped value;
        emit it so durability rules can segment handler paths at their
        acks. Rules filter on the class name (wire replies only)."""
        if not isinstance(value, ast.Call):
            return
        func = value.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name and name[:1].isupper():
            self._emit("reply", None, frame, value, detail=name)

    @staticmethod
    def _is_spawn(call: ast.Call) -> bool:
        return (isinstance(call.func, ast.Attribute)
                and call.func.attr == "process")

    def _is_spawn_wrapper(self, call: ast.Call) -> bool:
        return self._is_spawn(call)

    def _should_inline(self, caller: FunctionInfo,
                       callee: FunctionInfo) -> bool:
        # Inline self-methods and plain functions; never inline methods
        # of *other* classes resolved via receiver attributes — their
        # ``self`` is a different object, so their attribute families
        # would alias the caller's.
        if callee.class_info is None:
            return True
        caller_class = caller.class_info
        if caller_class is None and caller.enclosing is not None:
            caller_class = caller.enclosing.class_info
        if caller_class is None:
            return False
        return callee.class_info.qualname in {
            info.qualname for info in self.project.mro(caller_class)}

    # -- tagging -----------------------------------------------------------

    def _tag_assign(self, target: ast.AST, value: ast.AST,
                    frame: _Frame) -> None:
        families = self._families_in(value, frame)
        if not families:
            self._untag(target, frame)
            return
        family = families[0]
        for name in self._target_name_list(target):
            frame.tags[name] = family

    def _untag(self, target: ast.AST, frame: _Frame) -> None:
        for name in self._target_name_list(target):
            frame.tags.pop(name, None)

    @staticmethod
    def _target_name_list(target: ast.AST) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: List[str] = []
            for element in target.elts:
                names.extend(InlineWalker._target_name_list(element))
            return names
        return []
