"""The analysis engine: module contexts, the rule registry, the driver.

A :class:`ModuleContext` wraps one parsed source file and precomputes
everything rules keep asking for: import-alias resolution (so
``import time as t; t.time()`` still resolves to ``time.time``),
generator-function discovery (sim processes are generators), and the
``# simlint: disable=...`` suppression map.

Rules subclass :class:`Rule`, register themselves with the
:func:`rule` decorator, and yield :class:`Finding` objects from
``check``. The driver (:func:`analyze_paths`) walks files, runs every
selected rule, and filters suppressed findings.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from pathlib import Path, PurePath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .findings import Finding, Severity

__all__ = [
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "Suppression",
    "rule",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "SYNTAX_RULE_ID",
    "SUPPRESSION_RULE_ID",
]

#: Pseudo-rule reported when a file cannot be parsed at all.
SYNTAX_RULE_ID = "SYN001"

#: The meta-rule that reports useless suppression comments; the driver
#: runs it in a dedicated pass after every other rule has had the chance
#: to mark suppressions as used.
SUPPRESSION_RULE_ID = "SUP001"

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable-file|disable)\s*(?:=\s*([A-Za-z0-9_,\s]+))?")

#: Sentinel meaning "every rule" in suppression sets.
_ALL = "*"


class Suppression:
    """One ``# simlint: disable[-file]`` comment, with usage tracking.

    ``used_rules`` records the ids of findings this comment actually
    suppressed during a run; the SUP001 meta-rule reports comments whose
    rules never fired.
    """

    __slots__ = ("kind", "line", "rules", "used_rules")

    def __init__(self, kind: str, line: int, rules: Set[str]) -> None:
        self.kind = kind  # "file" or "line"
        self.line = line  # the comment's line, even for file-scoped
        self.rules = rules  # rule ids, or {_ALL}
        self.used_rules: Set[str] = set()


class ModuleContext:
    """One source file, parsed, with rule-facing helpers."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source)  # may raise SyntaxError
        #: every suppression comment in the file, in source order.
        self.suppressions: List[Suppression] = []
        #: line -> set of suppressed rule ids ("*" means all rules).
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: rule ids suppressed for the whole file ("*" means all).
        self.file_suppressions: Set[str] = set()
        self._parse_suppressions()
        #: ``import x.y as z`` -> {"z": "x.y"}; ``import time`` -> {"time": "time"}
        self.import_aliases: Dict[str, str] = {}
        #: ``from a.b import c as d`` -> {"d": "a.b.c"}
        self.from_imports: Dict[str, str] = {}
        self._collect_imports()

    # -- imports / name resolution ----------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; attribute chains re-form
                        # the dotted path naturally, so map a -> a.
                        root = alias.name.split(".")[0]
                        self.import_aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hit stdlib rules
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.from_imports[bound] = f"{node.module}.{alias.name}"

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Best-effort dotted name of an expression, import-aware.

        ``time.time`` -> "time.time"; with ``from time import time`` the
        bare name ``time`` also resolves to "time.time"; with
        ``import numpy.random as npr``, ``npr.rand`` -> "numpy.random.rand".
        Unresolvable expressions (calls, subscripts) return ``None``.
        """
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.from_imports:
                return self.from_imports[name]
            if name in self.import_aliases:
                return self.import_aliases[name]
            return name
        if isinstance(node, ast.Attribute):
            base = self.qualname(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def calls(self) -> Iterator[Tuple[ast.Call, Optional[str]]]:
        """Every Call node paired with the resolved qualname of its callee."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node, self.qualname(node.func)

    # -- generator discovery ----------------------------------------------

    @staticmethod
    def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
        """Walk a function's body without descending into nested defs."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def generator_functions(self) -> List[ast.FunctionDef]:
        """Functions that contain a yield at their own level (sim processes)."""
        result = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.FunctionDef):
                for child in self.own_nodes(node):
                    if isinstance(child, (ast.Yield, ast.YieldFrom)):
                        result.append(node)
                        break
        return result

    # -- suppressions ------------------------------------------------------

    def _parse_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [(tok.start[0], tok.string)
                        for tok in tokens if tok.type == tokenize.COMMENT]
        except tokenize.TokenError:
            comments = []
        for line, text in comments:
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            kind, rules_text = match.groups()
            rules = ({part.strip() for part in rules_text.split(",")
                      if part.strip()} if rules_text else {_ALL})
            if kind == "disable-file":
                self.suppressions.append(Suppression("file", line, rules))
                self.file_suppressions |= rules
            else:
                self.suppressions.append(Suppression("line", line, rules))
                self.line_suppressions.setdefault(line, set()).update(rules)

    def is_suppressed(self, finding: Finding) -> bool:
        hit = False
        for sup in self.suppressions:
            if sup.kind == "line" and sup.line != finding.line:
                continue
            if _ALL in sup.rules or finding.rule_id in sup.rules:
                sup.used_rules.add(finding.rule_id)
                hit = True
        return hit


class Rule:
    """Base class for simlint rules.

    Subclasses set ``rule_id``, ``severity``, ``description`` and
    implement ``check``. ``excluded_path_suffixes`` names files the rule
    never applies to (e.g. DET002 must not flag ``sim/rng.py``, the one
    sanctioned wrapper around ``random.Random``); ``required_path_parts``
    restricts a rule to a sub-tree (e.g. TXN001 to ``milana/``).
    """

    rule_id: str = ""
    severity: str = Severity.ERROR
    description: str = ""
    excluded_path_suffixes: Tuple[str, ...] = ()
    required_path_parts: Tuple[str, ...] = ()
    #: Rule family label; defaults to the id's alphabetic prefix
    #: (see :attr:`rule_family`).
    family: str = ""
    #: simlint rules are static; the sansim catalogue registers its
    #: rules as ``dynamic`` (see ``repro.sansim.rules``).
    domain: str = "static"
    #: The rule id witnessing (or approximating) the same bug class in
    #: the other domain, e.g. ATM001 <-> SAN002. Empty when none.
    counterpart: str = ""

    @property
    def rule_family(self) -> str:
        if self.family:
            return self.family
        prefix = "".join(ch for ch in self.rule_id if ch.isalpha())
        return prefix or self.rule_id

    def applies_to(self, ctx: ModuleContext) -> bool:
        posix = PurePath(ctx.path).as_posix()
        if any(posix.endswith(suffix) for suffix in self.excluded_path_suffixes):
            return False
        if self.required_path_parts:
            parts = PurePath(ctx.path).parts
            return any(part in parts for part in self.required_path_parts)
        return True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules run after every module has been parsed, against the
    :class:`~.project.Project` symbol table / call graph, and yield
    findings for any file in the project. ``check`` is a no-op so the
    per-module pass skips them cheaply; scoping (the equivalent of
    ``applies_to``) is the rule's own job, since a finding's path is not
    known until the whole program has been traversed.
    """

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: "object") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> Dict[str, Rule]:
    """The registry (id -> rule instance), importing the built-in rules."""
    from . import durrules as _dur  # noqa: F401 - registration side effect
    from . import iprules as _ip  # noqa: F401 - registration side effect
    from . import rules as _builtin  # noqa: F401 - registration side effect
    return dict(_REGISTRY)


# -- driver ----------------------------------------------------------------


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            found.extend(str(f) for f in sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            found.append(str(p))
    return sorted(dict.fromkeys(found))


def _normalize(path: str) -> str:
    """Posix-style path, relative to the CWD when it lives under it."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on windows
        rel = path
    if not rel.startswith(".."):
        path = rel
    return PurePath(path).as_posix()


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Run every (selected) rule over every file under ``paths``.

    Returns ``(findings, files_checked)`` with inline-suppressed findings
    already removed; baseline filtering is the caller's job.
    """
    registry = all_rules()
    active = {rid: r for rid, r in registry.items()
              if (not select or rid in select)
              and not (ignore and rid in ignore)}
    unknown = [rid for rid in list(select or []) + list(ignore or [])
               if rid not in registry and rid != SYNTAX_RULE_ID]
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    findings: List[Finding] = []
    files = iter_python_files(paths)
    contexts: Dict[str, ModuleContext] = {}
    for path in files:
        norm = _normalize(path)
        source = Path(path).read_text(encoding="utf-8")
        try:
            contexts[norm] = ModuleContext(norm, source)
        except SyntaxError as exc:
            findings.append(Finding(
                path=norm, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                rule_id=SYNTAX_RULE_ID, severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}"))

    # Pass 1: per-module rules.
    module_rules = [r for r in active.values()
                    if not isinstance(r, ProjectRule)
                    and r.rule_id != SUPPRESSION_RULE_ID]
    for ctx in contexts.values():
        for r in module_rules:
            if not r.applies_to(ctx):
                continue
            for finding in r.check(ctx):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)

    # Pass 2: whole-program rules over the project model.
    project_rules = [r for r in active.values()
                     if isinstance(r, ProjectRule)]
    if project_rules and contexts:
        from .project import Project
        project = Project(contexts.values())
        for r in project_rules:
            for finding in r.check_project(project):
                ctx_for = contexts.get(finding.path)
                if ctx_for is not None and ctx_for.is_suppressed(finding):
                    continue
                findings.append(finding)

    # Pass 3: the useless-suppression meta-rule, now that every other
    # rule has marked the suppressions it consumed.
    meta = active.get(SUPPRESSION_RULE_ID)
    if meta is not None:
        filtering = bool(select or ignore)
        known_ids = set(registry) | {SYNTAX_RULE_ID}
        for ctx in contexts.values():
            if not meta.applies_to(ctx):
                continue
            findings.extend(
                meta.unused_findings(ctx, known_ids, filtering))

    findings.sort(key=lambda f: f.sort_key)
    return findings, len(files)
