"""Interprocedural simlint rules over the :class:`~.project.Project`.

Three families (see docs/ANALYSIS.md for the catalogue):

* **ATM0xx — yield-point atomicity races.** A coroutine handler that
  *checks* shared server state, suspends (a yield anywhere in its
  transitive call chain), and then *acts* on the stale check has a
  time-of-check/time-of-use window: another handler interleaves at the
  suspension. ATM001 generalizes TXN001 (validate → yield → record)
  across function boundaries; ATM002 is the general check-then-act
  pattern over any ``self.<attr>`` state family.
* **PRO0xx — protocol conformance against the repro.wire registry.**
  Registration completeness (PRO001), handler reply types (PRO002),
  reachable RpcError/timeout handling on every registered-method call
  path (PRO003), and exception leakage out of handlers/daemons
  (PRO004 — the rule that catches a ``QuorumError`` escaping through
  ``except RpcError`` clauses, because it is *not* an RpcError).
* **DET1xx — interprocedural nondeterminism taint.** A helper that
  returns a wall-clock/``random`` value poisons every caller that
  stores it into simulator-visible state, even though no single
  function violates DET001/DET002 on its own line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..wire.registry import REGISTRY
from .engine import ProjectRule, Rule, rule
from .findings import Finding, Severity
from .project import (
    Event,
    FunctionInfo,
    InlineWalker,
    Project,
    RegisterSite,
    uncaught,
)
from .rules import WallClockRule

__all__ = [
    "is_volatile_source",
    "tainted_functions",
    "InterproceduralValidateRaceRule",
    "CheckThenActRaceRule",
    "RegistrationConformanceRule",
    "HandlerReplyTypeRule",
    "UnhandledRpcFailureRule",
    "HandlerExceptionLeakRule",
    "InterproceduralTaintRule",
]

#: Namespaces the wire registry defines; PRO rules only reason about
#: methods in these namespaces so ad-hoc test methods stay out of scope.
_KNOWN_NAMESPACES = {method.split(".")[0] for method in REGISTRY}

#: Wire message class names, for PRO002 reply-type matching.
_WIRE_CLASS_NAMES = (
    {spec.request.__name__ for spec in REGISTRY.values()}
    | {spec.response.__name__ for spec in REGISTRY.values()})


def _namespace(method: str) -> str:
    return method.split(".")[0]


def _finding(rule_obj: Rule, path: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule_id=rule_obj.rule_id,
        severity=rule_obj.severity,
        message=message,
    )


def _roots(project: Project,
           path_parts: Tuple[str, ...]) -> List[FunctionInfo]:
    """Coroutine entry points: registered wire handlers plus daemon/loop
    generators, restricted to modules whose path contains one of
    ``path_parts``."""
    roots: List[FunctionInfo] = []
    seen: Set[str] = set()
    for site in project.register_sites:
        handler = site.handler
        if handler is None or site.method not in REGISTRY:
            continue
        if handler.qualname not in seen and \
                handler.path_has_part(path_parts):
            seen.add(handler.qualname)
            roots.append(handler)
    for info in project.functions.values():
        if info.is_daemon and info.is_generator and \
                info.qualname not in seen and \
                info.path_has_part(path_parts):
            seen.add(info.qualname)
            roots.append(info)
    return sorted(roots, key=lambda fn: fn.qualname)


@rule
class InterproceduralValidateRaceRule(ProjectRule):
    """ATM001: validate → suspension → outcome recording, across calls.

    TXN001 catches the OCC time-of-check/time-of-use window inside one
    function; this rule replays the whole transitive call chain of each
    MILANA handler/daemon, so splitting the validation or the recording
    into a helper no longer hides the window.
    """

    rule_id = "ATM001"
    severity = Severity.ERROR
    description = ("interprocedural OCC race: a suspension between "
                   "validate(...) and recording its outcome, across the "
                   "handler's call chain")
    required_path_parts = ("milana",)
    counterpart = "SAN002"

    def check_project(self, project: Project) -> Iterable[Finding]:
        walker = InlineWalker(project)
        reported: Set[Tuple[str, int]] = set()
        for root in _roots(project, self.required_path_parts):
            if not root.is_generator:
                continue
            events = walker.walk(root)
            validate: Optional[Event] = None
            validate_suspends = 0
            suspends = 0
            last_suspend: Optional[Event] = None
            for event in events:
                if event.kind == "suspend":
                    suspends += 1
                    last_suspend = event
                elif event.kind == "validate":
                    validate = event
                    validate_suspends = suspends
                elif event.kind == "record" and validate is not None \
                        and suspends > validate_suspends:
                    assert last_suspend is not None
                    same_function = (
                        validate.function is event.function
                        and last_suspend.function is event.function
                        and event.function is root)
                    if same_function:
                        continue  # intra-function: TXN001's territory
                    key = (event.function.module.path, event.line)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield _finding(
                        self, event.function.module.path, _node_at(event),
                        f"{root.name!r} validates "
                        f"(in {validate.function.name!r} line "
                        f"{validate.line}) but records the outcome in "
                        f"{event.function.name!r} after a suspension at "
                        f"{last_suspend.function.name!r} line "
                        f"{last_suspend.line}; revalidate after the "
                        f"yield or record before it")


def _node_at(event: Event) -> ast.AST:
    node = ast.Pass()
    node.lineno = event.line
    node.col_offset = event.col
    return node


def is_volatile_source(qualname: str) -> bool:
    """A fully-qualified call name that reads the wall clock or a
    non-seeded random stream — the sources DET001/DET002 flag directly
    and DET101/DUR004 chase through helper returns."""
    return (qualname in WallClockRule.WALL_CLOCK_CALLS
            or qualname.split(".")[0] == "random"
            or qualname.startswith("numpy.random."))


def tainted_functions(project: Project,
                      excluded_path_suffixes: Tuple[str, ...] = ()
                      ) -> Set[str]:
    """Qualnames of functions whose return value derives from a
    wall-clock/random read, propagated through ``return helper(...)``
    chains. Shared taint engine for DET101 and DUR004."""
    def excluded(info: FunctionInfo) -> bool:
        path = info.module.path
        return any(path.endswith(suffix)
                   for suffix in excluded_path_suffixes)

    sources: Set[str] = set()
    for info in project.functions.values():
        if excluded(info) or not info.returns:
            continue
        ctx = info.module
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                qualname = ctx.qualname(node.func)
                if qualname is not None and is_volatile_source(qualname):
                    sources.add(info.qualname)
                    break
    # Propagate through ``return helper(...)`` chains.
    changed = True
    while changed:
        changed = False
        for info in project.functions.values():
            if info.qualname in sources or excluded(info):
                continue
            for ret in info.returns:
                if ret.value is None:
                    continue
                for call in ast.walk(ret.value):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = project.resolve_call(info, call)
                    if callee is not None and \
                            callee.qualname in sources:
                        sources.add(info.qualname)
                        changed = True
                        break
                if info.qualname in sources:
                    break
    return sources


@rule
class CheckThenActRaceRule(ProjectRule):
    """ATM002: check-then-act on shared server state across a yield.

    A guard that reads ``self.<attr>`` state, a suspension point, and
    then a write to the same state family — with no intervening
    re-check or completed check-then-act — lets a concurrent handler
    change the state the guard observed. Writes made while an
    ``_inflight*`` coalescing entry is held, or in ``finally`` blocks,
    are the sanctioned critical-section pattern and are exempt.
    """

    rule_id = "ATM002"
    severity = Severity.ERROR
    description = ("check-then-act race: shared self.* state guarded "
                   "before a suspension point and written after it "
                   "without re-checking")
    required_path_parts = ("milana", "semel")
    counterpart = "SAN001"

    #: State families that are monotonic counters / metrics, where the
    #: guard-write pattern is not a race.
    IGNORED_FAMILIES = frozenset({
        "validation_failures", "ctp_resolutions", "puts_rejected_stale",
        "puts_deduplicated", "handler_errors",
    })

    def check_project(self, project: Project) -> Iterable[Finding]:
        walker = InlineWalker(project)
        reported: Set[Tuple[str, int, str]] = set()
        for root in _roots(project, self.required_path_parts):
            if not root.is_generator:
                continue
            yield from self._check_root(project, walker, root, reported)

    def _check_root(self, project: Project, walker: InlineWalker,
                    root: FunctionInfo,
                    reported: Set[Tuple[str, int, str]]
                    ) -> Iterator[Finding]:
        events = walker.walk(root)
        suspends = 0
        last_suspend: Optional[Event] = None
        # family -> (guard event, suspend count at guard time)
        pending: Dict[str, Tuple[Event, int]] = {}
        for event in events:
            if event.kind == "suspend":
                suspends += 1
                last_suspend = event
            elif event.kind == "guard_read":
                assert event.family is not None
                pending[event.family] = (event, suspends)
            elif event.kind == "write":
                family = event.family
                assert family is not None
                if family in self.IGNORED_FAMILIES:
                    continue
                entry = pending.pop(family, None)
                if event.in_finally or event.lock_depth > 0:
                    # Sanctioned critical section / cleanup: neither a
                    # race nor a completed check-then-act.
                    if entry is not None:
                        pending[family] = entry
                    continue
                if entry is None:
                    continue
                guard, guard_suspends = entry
                if suspends <= guard_suspends:
                    continue  # check-then-act completed before yielding
                assert last_suspend is not None
                key = (event.function.module.path, event.line, family)
                if key in reported:
                    continue
                reported.add(key)
                yield _finding(
                    self, event.function.module.path, _node_at(event),
                    f"{root.name!r} checks self.{family} "
                    f"(in {guard.function.name!r} line {guard.line}) "
                    f"but writes it in {event.function.name!r} after a "
                    f"suspension at {last_suspend.function.name!r} line "
                    f"{last_suspend.line}; re-check after the yield or "
                    f"hold an in-flight guard")


@rule
class RegistrationConformanceRule(ProjectRule):
    """PRO001: the handler surface matches the wire registry.

    Every registered wire method has exactly one handler registration
    in the analyzed tree, every ``register``/``call`` site with a
    dotted method name refers to a registry entry. Namespace-gated: a
    namespace is only checked for completeness when the analyzed tree
    registers at least one of its methods, so analyzing a single file
    does not report the rest of the tree as missing.
    """

    rule_id = "PRO001"
    severity = Severity.ERROR
    description = ("handler registration out of sync with the repro.wire "
                   "registry (missing, duplicate, or unknown method)")

    def check_project(self, project: Project) -> Iterable[Finding]:
        by_method: Dict[str, List[RegisterSite]] = {}
        for site in project.register_sites:
            if "." not in site.method:
                continue  # ad-hoc methods bypass the registry
            by_method.setdefault(site.method, []).append(site)
            if site.method not in REGISTRY:
                yield _finding(
                    self, site.path, site.node,
                    f"register of {site.method!r}, which has no "
                    f"MethodSpec in the repro.wire registry")
        for method, sites in sorted(by_method.items()):
            for extra in sites[1:]:
                yield _finding(
                    self, extra.path, extra.node,
                    f"duplicate handler registration for {method!r} "
                    f"(first at {sites[0].path}:"
                    f"{sites[0].node.lineno})")
        namespaces_present = {
            _namespace(m) for m in by_method if m in REGISTRY}
        for method in sorted(REGISTRY):
            namespace = _namespace(method)
            if namespace not in namespaces_present:
                continue
            if method not in by_method:
                anchor = next(
                    site for site in project.register_sites
                    if _namespace(site.method) == namespace)
                yield _finding(
                    self, anchor.path, anchor.node,
                    f"registered wire method {method!r} has no handler "
                    f"in the analyzed tree (namespace {namespace!r} is "
                    f"handled here)")
        for site in project.wire_call_sites:
            if "." not in site.method or \
                    _namespace(site.method) not in _KNOWN_NAMESPACES:
                continue
            if site.method not in REGISTRY:
                yield _finding(
                    self, site.function.module.path, site.node,
                    f"{site.kind}() to {site.method!r}, which has no "
                    f"MethodSpec in the repro.wire registry")


@rule
class HandlerReplyTypeRule(ProjectRule):
    """PRO002: handlers return the registered reply message type.

    The RPC layer type-checks replies at runtime (``_serve`` turns a
    mistyped result into a generic error response); this rule moves the
    check to analysis time by matching every ``return WireClass(...)``
    in a handler against the method's ``MethodSpec.response``.
    """

    rule_id = "PRO002"
    severity = Severity.ERROR
    description = ("handler returns a different wire message than the "
                   "registered reply type for its method")

    def check_project(self, project: Project) -> Iterable[Finding]:
        seen: Set[Tuple[str, str]] = set()
        for site in project.register_sites:
            spec = REGISTRY.get(site.method)
            handler = site.handler
            if spec is None or handler is None:
                continue
            if (site.method, handler.qualname) in seen:
                continue  # duplicate registration is PRO001's finding
            seen.add((site.method, handler.qualname))
            expected = spec.response.__name__
            for ret, returned in self._returned_classes(project, handler):
                if returned != expected:
                    yield _finding(
                        self, handler.module.path, ret,
                        f"handler {handler.name!r} for {site.method!r} "
                        f"returns {returned}, but the registered reply "
                        f"is {expected}")

    def _returned_classes(
            self, project: Project, handler: FunctionInfo,
            depth: int = 0) -> Iterator[Tuple[ast.Return, str]]:
        """(return statement, wire class name) pairs, following
        ``return self._helper(...)`` one level deep."""
        for ret in handler.returns:
            value = ret.value
            if not isinstance(value, ast.Call):
                continue
            name = None
            if isinstance(value.func, ast.Name):
                name = value.func.id
            elif isinstance(value.func, ast.Attribute):
                name = value.func.attr
            if name in _WIRE_CLASS_NAMES:
                yield ret, name
            elif depth == 0:
                callee = project.resolve_call(handler, value)
                if callee is not None:
                    for _, inner in self._returned_classes(
                            project, callee, depth + 1):
                        yield ret, inner


@rule
class UnhandledRpcFailureRule(ProjectRule):
    """PRO003: registered-method call sites have a reachable
    RpcError/timeout handling path.

    An ``RpcNode.call`` to a wire method can always fail with
    ``RpcTimeout``; if neither the call site nor any caller on a path
    from a handler/daemon entry point catches it, the failure either
    kills a daemon or surfaces as a generic handler error — the
    hardened failure-handling contract requires an explicit decision at
    some level of the chain.
    """

    rule_id = "PRO003"
    severity = Severity.ERROR
    description = ("RPC call to a registered method with no reachable "
                   "RpcError/RpcTimeout handling on any caller path")
    required_path_parts = ("milana", "semel", "harness")

    def check_project(self, project: Project) -> Iterable[Finding]:
        roots = _roots(project, self.required_path_parts)
        unprotected: Dict[str, FunctionInfo] = {}  # qualname -> witness root
        witness: Dict[str, FunctionInfo] = {}
        queue: List[Tuple[FunctionInfo, FunctionInfo]] = \
            [(fn, fn) for fn in roots]
        while queue:
            fn, root = queue.pop(0)
            if fn.qualname in unprotected:
                continue
            unprotected[fn.qualname] = fn
            witness[fn.qualname] = root
            for site in fn.call_sites:
                if site.callee is None:
                    continue
                if not site.is_spawn and \
                        uncaught({"RpcTimeout"}, site.caught):
                    queue.append((site.callee, root))
                elif site.is_spawn:
                    # A spawned process starts a fresh unprotected chain.
                    queue.append((site.callee, root))
        for wire_site in project.wire_call_sites:
            if wire_site.kind != "call" or \
                    wire_site.method not in REGISTRY:
                continue
            fn = wire_site.function
            if fn.qualname not in unprotected:
                continue
            caught = self._caught_at(fn, wire_site.node)
            if not uncaught({"RpcTimeout"}, caught):
                continue
            root = witness[fn.qualname]
            via = "" if root is fn else \
                f" on the path from {root.name!r}"
            yield _finding(
                self, fn.module.path, wire_site.node,
                f"call to {wire_site.method!r} in {fn.name!r} has no "
                f"reachable RpcError/RpcTimeout handling{via}; catch "
                f"RpcError here or on a caller")

    @staticmethod
    def _caught_at(fn: FunctionInfo, node: ast.Call) -> Set[str]:
        for site in fn.call_sites:
            if site.node is node:
                return site.caught
        return set()


@rule
class HandlerExceptionLeakRule(ProjectRule):
    """PRO004: handlers and daemons do not leak transport/quorum errors.

    ``_serve`` converts an ``AppError`` into a protocol-level rejection;
    anything else escaping a handler is counted as ``handler_errors``
    and flattened into an opaque failure — and an exception escaping a
    daemon's generator kills the daemon permanently. ``QuorumError`` is
    the classic leak: it is *not* an ``RpcError``, so ``except
    RpcError`` clauses on the path do not stop it.
    """

    rule_id = "PRO004"
    severity = Severity.ERROR
    description = ("transport/quorum exception can escape a wire handler "
                   "(opaque handler error) or a daemon (daemon death)")
    required_path_parts = ("milana", "semel", "harness")

    HANDLER_LEAKS = frozenset({"RpcError", "RpcTimeout", "QuorumError"})
    DAEMON_LEAKS = frozenset(
        {"RpcError", "RpcTimeout", "QuorumError", "AppError"})

    def check_project(self, project: Project) -> Iterable[Finding]:
        seen: Set[str] = set()
        for site in project.register_sites:
            handler = site.handler
            if handler is None or site.method not in REGISTRY:
                continue
            if handler.qualname in seen:
                continue
            seen.add(handler.qualname)
            leaks = sorted(
                project.transitive_raises(handler) & self.HANDLER_LEAKS)
            if leaks:
                yield _finding(
                    self, handler.module.path, handler.node,
                    f"handler {handler.name!r} for {site.method!r} may "
                    f"leak {', '.join(leaks)} to the RPC layer (opaque "
                    f"handler_errors failure); convert to AppError or a "
                    f"protocol reply")
        for info in sorted(project.functions.values(),
                           key=lambda fn: fn.qualname):
            if not info.is_daemon or not info.is_generator or \
                    info.qualname in seen:
                continue
            if not info.path_has_part(self.required_path_parts):
                continue
            leaks = sorted(
                project.transitive_raises(info) & self.DAEMON_LEAKS)
            if leaks:
                yield _finding(
                    self, info.module.path, info.node,
                    f"daemon {info.name!r} dies permanently if "
                    f"{', '.join(leaks)} escapes its loop; catch it and "
                    f"retry on the next round")


@rule
class InterproceduralTaintRule(ProjectRule):
    """DET101: wall-clock/random values flowing into state via helpers.

    DET001/DET002 flag direct calls; this rule follows the value: a
    function whose return derives from a wall-clock or ``random`` read
    taints every call site, and storing a tainted value into ``self.*``
    state (or feeding it to ``sim.timeout``-style scheduling) breaks
    determinism one function removed from the offending call.
    """

    rule_id = "DET101"
    severity = Severity.ERROR
    description = ("value derived from a wall-clock/random read in a "
                   "helper flows into simulator or server state")
    excluded_path_suffixes = ("sim/rng.py",)

    _SCHEDULING_ATTRS = frozenset({"timeout", "schedule", "at", "after"})

    def check_project(self, project: Project) -> Iterable[Finding]:
        tainted = tainted_functions(project, self.excluded_path_suffixes)
        if not tainted:
            return
        for info in project.functions.values():
            if self._excluded(info):
                continue
            yield from self._sinks(project, info, tainted)

    def _excluded(self, info: FunctionInfo) -> bool:
        path = info.module.path
        return any(path.endswith(suffix)
                   for suffix in self.excluded_path_suffixes)

    def _sinks(self, project: Project, info: FunctionInfo,
               tainted: Set[str]) -> Iterator[Finding]:
        def tainted_call_in(expr: ast.AST) -> Optional[str]:
            for call in ast.walk(expr):
                if isinstance(call, ast.Call):
                    callee = project.resolve_call(info, call)
                    if callee is not None and callee.qualname in tainted:
                        return callee.name
            return None

        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                if not any(self._is_state_target(t) for t in targets):
                    continue
                source = tainted_call_in(node.value)
                if source is not None:
                    yield _finding(
                        self, info.module.path, node,
                        f"{info.name!r} stores a value from "
                        f"{source!r}, which derives from a wall-clock/"
                        f"random read, into self.* state; derive it "
                        f"from Simulator.now or a SeededRng substream")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._SCHEDULING_ATTRS:
                for arg in node.args:
                    source = tainted_call_in(arg)
                    if source is not None:
                        yield _finding(
                            self, info.module.path, node,
                            f"{info.name!r} feeds a value from "
                            f"{source!r}, which derives from a "
                            f"wall-clock/random read, into simulator "
                            f"scheduling; use Simulator.now or a "
                            f"SeededRng substream")
                        break

    @staticmethod
    def _is_state_target(target: ast.AST) -> bool:
        if isinstance(target, ast.Attribute):
            return isinstance(target.value, ast.Name) and \
                target.value.id == "self"
        if isinstance(target, ast.Subscript):
            return InterproceduralTaintRule._is_state_target(target.value)
        return False
