"""Transaction data structures shared by MILANA clients and servers.

A transaction executes entirely on one client (§4.1): the client assigns
``ts_begin`` at begin and ``ts_commit`` at commit from its PTP clock,
buffers writes locally, and tracks for every key it read the exact version
it observed plus whether the server reported a prepared version at or
below ``ts_begin`` (the bit local validation needs, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..versioning import Version

__all__ = [
    "PREPARED",
    "COMMITTED",
    "ABORTED",
    "UNKNOWN",
    "STATUS_RANK",
    "ReadObservation",
    "Transaction",
    "TransactionRecord",
]

# Transaction states, used in the primary's transaction table, in backup
# logs, and in recovery / CTP exchanges.
PREPARED = "PREPARED"
COMMITTED = "COMMITTED"
ABORTED = "ABORTED"
UNKNOWN = "UNKNOWN"

#: Merge order for replica logs and WAL replay: a decided status always
#: beats PREPARED, and once decided a status never changes.
STATUS_RANK = {PREPARED: 0, ABORTED: 1, COMMITTED: 2}


@dataclass(frozen=True)
class ReadObservation:
    """What the client learned when it read a key."""

    #: The version returned, or None when no version <= ts_begin existed.
    version: Optional[Version]
    #: True if the server had a prepared version with ts <= ts_begin.
    prepared: bool
    value: Any = None


@dataclass
class Transaction:
    """Client-side transaction handle."""

    txn_id: str
    client_id: int
    ts_begin: float
    reads: Dict[str, ReadObservation] = field(default_factory=dict)
    writes: Dict[str, Any] = field(default_factory=dict)
    ts_commit: Optional[float] = None
    status: str = "ACTIVE"
    #: §4.3 extension: declared read-write in advance, permitting cached
    #: or any-replica reads at the price of mandatory remote validation.
    read_write_hint: bool = False

    @property
    def is_read_only(self) -> bool:
        return not self.writes

    @property
    def read_set(self) -> List[Tuple[str, Optional[Tuple]]]:
        """(key, observed version tuple) pairs, for prepare payloads."""
        return [
            (key, tuple(obs.version) if obs.version is not None else None)
            for key, obs in self.reads.items()
        ]

    @property
    def write_set(self) -> List[Tuple[str, Any]]:
        return list(self.writes.items())

    @property
    def keys_touched(self) -> List[str]:
        return sorted(set(self.reads) | set(self.writes))


@dataclass
class TransactionRecord:
    """Server-side record of a prepared/decided transaction.

    Lives in the primary's transaction table and, via replication, in the
    backups' logs — the raw material of the Algorithm 2 recovery merge.
    """

    txn_id: str
    client_id: int
    client_name: str
    ts_commit: float
    #: (key, version tuple or None) for keys of *this shard* in the read set.
    reads: List[Tuple[str, Optional[Tuple]]]
    #: (key, value) for keys of this shard in the write set.
    writes: List[Tuple[str, Any]]
    #: All participant shard names (for CTP and recovery, §4.2).
    participants: List[str]
    status: str = PREPARED
    prepared_at: float = 0.0

    def to_wire(self) -> Dict[str, Any]:
        """Plain-dict form for RPC payloads and backup logs."""
        return {
            "txn_id": self.txn_id,
            "client_id": self.client_id,
            "client_name": self.client_name,
            "ts_commit": self.ts_commit,
            "reads": list(self.reads),
            "writes": list(self.writes),
            "participants": list(self.participants),
            "status": self.status,
            "prepared_at": self.prepared_at,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "TransactionRecord":
        return cls(
            txn_id=payload["txn_id"],
            client_id=payload["client_id"],
            client_name=payload["client_name"],
            ts_commit=payload["ts_commit"],
            reads=[(key, tuple(ver) if ver is not None else None)
                   for key, ver in payload["reads"]],
            writes=[tuple(pair) for pair in payload["writes"]],
            participants=list(payload["participants"]),
            status=payload["status"],
            prepared_at=payload["prepared_at"],
        )

    @property
    def commit_version_of(self):
        """Factory for this transaction's write version stamps."""
        return Version(self.ts_commit, self.client_id)
