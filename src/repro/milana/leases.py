"""Read leases (§4.5).

A primary may only serve gets (and thereby feed ``latest_read``) while it
holds a lease granted by at least f backups. After failover the new
primary waits until its local clock passes the old lease's horizon before
serving, which closes the serializability hole left by the unreplicated
``latest_read`` state: no read the old primary served can have a
timestamp beyond its lease expiry.
"""

from __future__ import annotations

from typing import Optional

from ..net.rpc import RpcError
from ..semel.replication import QuorumError, replicate_to_backups
from ..sim.process import Process
from ..wire import MilanaRenewLease

__all__ = ["LeaseManager", "DEFAULT_LEASE_DURATION",
           "DEFAULT_LEASE_INTERVAL"]

DEFAULT_LEASE_DURATION = 100e-3
DEFAULT_LEASE_INTERVAL = 25e-3


class LeaseManager:
    """Renews a primary's read lease against its backups."""

    def __init__(
        self,
        server,  # MilanaServer
        duration: float = DEFAULT_LEASE_DURATION,
        interval: float = DEFAULT_LEASE_INTERVAL,
    ) -> None:
        if interval >= duration:
            raise ValueError(
                f"renew interval {interval} must be < duration {duration}")
        self.server = server
        self.duration = duration
        self.interval = interval
        self.lease_expiry = float("-inf")
        self.renewals = 0
        self.renewal_failures = 0
        self._daemon: Optional[Process] = None
        # Attach so the server's serving check consults this lease.
        server.lease_manager = self

    @property
    def held(self) -> bool:
        """Whether the lease currently covers the local clock."""
        return self.server.sim.now < self.lease_expiry

    def start(self) -> Process:
        if self._daemon is None:
            self._daemon = self.server.sim.process(self._renew_loop())
        return self._daemon

    def renew_once(self):
        """Generator: one renewal round; returns True on success."""
        server = self.server
        backups = server.backups
        need = min(server.quorum_acks, len(backups))
        expiry = server.sim.now + self.duration
        if need <= 0:
            self.lease_expiry = expiry
            self.renewals += 1
            return True
        try:
            yield from replicate_to_backups(
                server.node, backups, "milana.renew_lease",
                MilanaRenewLease(primary=server.name, expiry=expiry),
                need, timeout=server.replication_timeout)
        except (QuorumError, RpcError):
            self.renewal_failures += 1
            return False
        self.lease_expiry = expiry
        self.renewals += 1
        return True

    def _renew_loop(self):
        while True:
            if self.server.is_primary:
                yield from self.renew_once()
            yield self.server.sim.timeout(self.interval)

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """Kill the renew loop and forget the lease (it lived in DRAM)."""
        if self._daemon is not None and self._daemon.is_alive:
            self._daemon.interrupt("crash")
        self._daemon = None
        self.lease_expiry = float("-inf")

    def restart(self) -> None:
        """Resume renewals after a restart; the lease itself must be
        re-earned from the backups."""
        self.start()
