"""Primary failover and the Algorithm 2 recovery merge (§4.5).

When a primary fails, a backup is promoted and must reach a consistent
state before serving:

1. pull transaction logs from every reachable replica of the shard (a
   majority, f+1 including itself, must be available);
2. merge per Algorithm 2 — committed records apply directly; a prepared
   record with a single participant commits (the client would have
   committed it); a multi-shard prepared record is resolved by querying
   the other participants' primaries (commit if any committed or if all
   prepared; abort if any aborted or never prepared);
3. rebuild the DRAM key states: ``latest_committed`` from stored version
   stamps, ``prepared`` from the merged table (``latest_read`` cannot be
   rebuilt — the lease wait covers it);
4. propagate the merged table to the backups;
5. wait out the old primary's read lease before serving.
"""

from __future__ import annotations

from typing import Dict, List

from ..net.rpc import RpcError
from ..sim.process import Process
from ..wire import (
    MilanaFetchLog,
    MilanaReplicateTxn,
    MilanaTxnStatus,
    TxnRecordWire,
)
from .leases import DEFAULT_LEASE_DURATION
from .server import MilanaServer
from .transaction import ABORTED, COMMITTED, PREPARED, STATUS_RANK, \
    UNKNOWN, TransactionRecord

__all__ = ["RecoveryError", "recover_primary", "recover_steps",
           "merge_records"]

_STATUS_RANK = STATUS_RANK


class RecoveryError(Exception):
    """Recovery could not complete (e.g. no majority of replicas)."""


def merge_records(
        logs: List[List[TxnRecordWire]]) -> Dict[str, TransactionRecord]:
    """Merge replica logs, keeping the most-decided status per txn.

    COMMITTED/ABORTED beat PREPARED: any replica that saw a decision
    proves the decision happened (Algorithm 2's premise that a majority-
    acknowledged record survives on at least one live replica).
    """
    merged: Dict[str, TransactionRecord] = {}
    for log in logs:
        for wire in log:
            record = wire.to_record()
            existing = merged.get(record.txn_id)
            if (existing is None
                    or _STATUS_RANK[record.status]
                    > _STATUS_RANK[existing.status]):
                merged[record.txn_id] = record
    return merged


def recover_primary(
    server: MilanaServer,
    lease_wait: float = DEFAULT_LEASE_DURATION,
) -> Process:
    """Bring a freshly promoted primary to a consistent, serving state.

    The caller must already have promoted ``server`` in the directory.
    The returned process fires once the server is serving.
    """
    return server.sim.process(_recover(server, lease_wait))


def recover_steps(
    server: MilanaServer,
    lease_wait: float = DEFAULT_LEASE_DURATION,
):
    """Generator form of :func:`recover_primary`, for callers that drive
    recovery from their own process — the cluster restart protocol uses
    this so a second crash can interrupt the whole recovery in one
    place."""
    return _recover(server, lease_wait)


def _recover(server: MilanaServer, lease_wait: float):
    sim = server.sim
    if not server.is_primary:
        raise RecoveryError(
            f"{server.name} is not the primary of {server.shard_name}")
    # Reads and prepares are refused until the lease horizon passes.
    server.serving_after = float("inf")

    # 1. Collect logs from reachable replicas (self included).
    shard = server.shard
    logs: List[List[TxnRecordWire]] = [
        [TxnRecordWire.from_record(record)
         for record in server.txn_table.values()]
    ]
    reachable = 1
    for replica in shard.replicas:
        if replica == server.name:
            continue
        try:
            reply = yield server.node.call(
                replica, "milana.fetch_log", MilanaFetchLog(),
                timeout=server.replication_timeout)
        except RpcError:
            continue
        logs.append(list(reply.records))
        reachable += 1
    if reachable < shard.fault_tolerance + 1:
        raise RecoveryError(
            f"only {reachable} replicas reachable; need majority "
            f"{shard.fault_tolerance + 1}")

    # 2. Algorithm 2 merge.
    merged = merge_records(logs)
    for record in merged.values():
        if record.status == COMMITTED:
            yield from _ensure_applied(server, record)
        elif record.status == ABORTED:
            server.txn_table[record.txn_id] = record
        else:  # PREPARED
            yield from _resolve_prepared(server, record)

    # 3. Rebuild per-key state.
    for key in server.backend.keys():
        versions = server.backend.versions_of(key)
        if versions:
            server.key_states.mark_committed(key, versions[0])
    for record in server.txn_table.values():
        if record.status == PREPARED:
            for key, _value in record.writes:
                server.key_states.mark_prepared(
                    key, record.txn_id, record.ts_commit)

    # 4. Propagate the merged table to the backups (best effort; the
    #    records are already majority-durable).
    for record in server.txn_table.values():
        for backup in server.backups:
            server.node.send_oneway(
                backup, "milana.replicate_txn",
                MilanaReplicateTxn(
                    record=TxnRecordWire.from_record(record)))

    # 5. Lease wait (§4.5): latest_read state died with the old primary;
    #    no stale read can have a timestamp beyond its lease horizon.
    yield sim.timeout(lease_wait)
    server.serving_after = sim.now
    return server


def _ensure_applied(server: MilanaServer, record: TransactionRecord):
    """Apply a committed record's writes if this replica missed them."""
    version = record.commit_version_of
    puts = []
    for key, value in record.writes:
        if version not in server.backend.versions_of(key):
            puts.append(server.backend.put(key, value, version))
    if puts:
        yield server.sim.all_of(puts)
    record.status = COMMITTED
    server.txn_table[record.txn_id] = record


def _resolve_prepared(server: MilanaServer, record: TransactionRecord):
    """Algorithm 2, prepared branch."""
    if len(record.participants) <= 1:
        # Single shard: the client committed iff this prepare succeeded,
        # and it did (the record exists on a majority).
        yield from _ensure_applied(server, record)
        return
    statuses = []
    unreachable = False
    for shard_name in record.participants:
        if shard_name == server.shard_name:
            continue
        primary = server.directory.shard(shard_name).primary
        try:
            reply = yield server.node.call(
                primary, "milana.txn_status",
                MilanaTxnStatus(txn_id=record.txn_id),
                timeout=server.replication_timeout)
            statuses.append(reply.status)
        except RpcError:
            unreachable = True
    if COMMITTED in statuses:
        yield from _ensure_applied(server, record)
    elif ABORTED in statuses or UNKNOWN in statuses:
        # An explicit UNKNOWN means that participant never prepared, so
        # the client cannot have committed (CTP rule 2).
        record.status = ABORTED
        server.txn_table[record.txn_id] = record
    elif unreachable:
        # Cannot decide safely yet: keep it prepared; the CTP daemon will
        # retry once the other participant is reachable again.
        record.status = PREPARED
        server.txn_table[record.txn_id] = record
        for key, _value in record.writes:
            server.key_states.mark_prepared(
                key, record.txn_id, record.ts_commit)
    else:
        # All participants still prepared: the transaction is outstanding
        # and should be committed (§4.5). Propagate the decision with
        # acked, retried delivery — a lost oneway here would strand the
        # peers' prepared records until their own CTP rounds.
        yield from _ensure_applied(server, record)
        for shard_name in record.participants:
            if shard_name == server.shard_name:
                continue
            server.sim.process(server._deliver_decide(
                shard_name, record.txn_id, COMMITTED))
