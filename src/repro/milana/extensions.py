"""Client-side extensions the paper leaves as future work.

* :class:`CachingMilanaClient` (§4.3): "In principle, clients can choose
  between aggressive caching and local validation: any transaction T that
  is marked as read-write in advance may read from its cache, but then T
  must validate remotely." The client keeps an inter-transaction cache of
  (version, value) per key; transactions begun with
  ``read_write_hint=True`` satisfy reads from it with zero round trips,
  and the primary's read-set validation (Algorithm 1, lines 2–8) catches
  any staleness at prepare time — a stale cache costs an abort, never a
  consistency violation. Validation-failed keys are evicted so the retry
  refetches fresh data.

* :class:`NearestReplicaClient` (§4.6): "all reads in MILANA are serviced
  by the primary but this requirement can be relaxed for read-write
  transactions, which can read data from the nearest replica and validate
  at the primary before commit." Hinted transactions read from a replica
  chosen per key (spreading read load); because backups track no
  ``latest_read`` and report no prepared bit, such transactions also
  validate remotely.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Tuple

from ..net.rpc import RpcError
from ..sim.process import Process
from ..versioning import Version
from ..wire import MilanaGetUnvalidated
from .client import MilanaClient, TransactionAborted
from .transaction import ABORTED, ReadObservation, Transaction

__all__ = ["CachingMilanaClient", "NearestReplicaClient"]


class CachingMilanaClient(MilanaClient):
    """MILANA with aggressive inter-transaction caching (§4.3)."""

    def __init__(self, *args, cache_capacity: int = 4096,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be >= 1, got {cache_capacity}")
        self.cache_capacity = cache_capacity
        #: key -> (Version, value), LRU-ordered.
        self._cache: "OrderedDict[str, Tuple[Version, Any]]" = \
            OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- transaction lifecycle -------------------------------------------------

    def begin(self, read_write_hint: bool = False) -> Transaction:
        txn = super().begin()
        txn.read_write_hint = read_write_hint
        return txn

    def txn_get(self, txn: Transaction, key: str) -> Process:
        return self.sim.process(self._cached_txn_get(txn, key))

    def _cached_txn_get(self, txn: Transaction, key: str):
        if key in txn.writes:
            return txn.writes[key]
        if key in txn.reads:
            return txn.reads[key].value
        if txn.read_write_hint:
            cached = self._cache_lookup(key, txn.ts_begin)
            if cached is not None:
                version, value = cached
                self.cache_hits += 1
                txn.reads[key] = ReadObservation(
                    version=version, prepared=False, value=value)
                return value
            self.cache_misses += 1
        value = yield from self._txn_get(txn, key)
        observation = txn.reads.get(key)
        if observation is not None and observation.version is not None:
            self._cache_insert(key, observation.version,
                               observation.value)
        return value

    def commit(self, txn: Transaction) -> Process:
        return self.sim.process(self._commit_with_cache(txn))

    def _commit_with_cache(self, txn: Transaction):
        if txn.read_write_hint:
            # The cache may be stale: remote validation is mandatory.
            outcome = yield from self._commit_two_phase(txn)
        else:
            outcome = yield from self._commit(txn)
        if outcome == ABORTED:
            # Conservatively drop everything the transaction read; the
            # retry refetches current versions from the primaries.
            for key in txn.reads:
                self._cache.pop(key, None)
        else:
            version = Version(txn.ts_commit, self.client_id) \
                if txn.ts_commit is not None else None
            if version is not None:
                for key, value in txn.writes.items():
                    self._cache_insert(key, version, value)
        return outcome

    # -- cache internals ----------------------------------------------------------

    def _cache_lookup(self, key: str,
                      max_timestamp: float) -> Optional[Tuple]:
        entry = self._cache.get(key)
        if entry is None:
            return None
        version, value = entry
        if version.timestamp > max_timestamp:
            # Cached data is from the future of this snapshot; a fresh
            # server read is needed.
            return None
        self._cache.move_to_end(key)
        return version, value

    def _cache_insert(self, key: str, version: Version,
                      value: Any) -> None:
        existing = self._cache.get(key)
        if existing is not None and existing[0] >= version:
            return
        self._cache[key] = (version, value)
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class NearestReplicaClient(MilanaClient):
    """MILANA reading from arbitrary replicas for hinted transactions
    (§4.6's load-spreading relaxation)."""

    def begin(self, read_write_hint: bool = False) -> Transaction:
        txn = super().begin()
        txn.read_write_hint = read_write_hint
        return txn

    def txn_get(self, txn: Transaction, key: str) -> Process:
        if not txn.read_write_hint:
            return super().txn_get(txn, key)
        return self.sim.process(self._replica_txn_get(txn, key))

    def _replica_txn_get(self, txn: Transaction, key: str):
        if key in txn.writes:
            return txn.writes[key]
        if key in txn.reads:
            return txn.reads[key].value
        shard = self.directory.shard_of(key)
        # "Nearest" in the simulated LAN: spread load deterministically
        # by key so hot keys fan out across the replica set.
        replica = shard.replicas[hash(key) % len(shard.replicas)]
        try:
            reply = yield self.node.call(
                replica, "milana.get_unvalidated",
                MilanaGetUnvalidated(key=key, timestamp=txn.ts_begin),
                timeout=self.rpc_timeout, retries=self.rpc_retries)
        except RpcError:
            # Fall back to the primary if the chosen replica is down.
            value = yield from self._txn_get(txn, key)
            return value
        if reply.snapshot_miss:
            raise TransactionAborted(
                f"snapshot at {txn.ts_begin} unavailable for {key!r}")
        version = Version(*reply.version) if reply.found else None
        txn.reads[key] = ReadObservation(
            version=version, prepared=False, value=reply.value)
        return reply.value

    def commit(self, txn: Transaction) -> Process:
        if txn.read_write_hint:
            # Replica reads carry no prepared information: remote
            # validation is mandatory.
            return self.sim.process(self._commit_two_phase(txn))
        return super().commit(txn)
