"""MILANA: a lightweight transactional layer over SEMEL.

Serializable ACID transactions via client-coordinated OCC + 2PC (§4),
with snapshot reads from SEMEL's multi-version store, client-local
validation of read-only transactions, relaxed (unordered) backup updates,
and full failure recovery: Algorithm 2 log merge on primary failover,
cooperative termination on client failure, and read leases.
"""

from .client import MilanaClient, TransactionAborted, TxnStats
from .extensions import CachingMilanaClient, NearestReplicaClient
from .leases import (
    DEFAULT_LEASE_DURATION,
    DEFAULT_LEASE_INTERVAL,
    LeaseManager,
)
from .recovery import RecoveryError, merge_records, recover_primary
from .server import DEFAULT_CTP_TIMEOUT, MilanaServer
from .transaction import (
    ABORTED,
    COMMITTED,
    PREPARED,
    UNKNOWN,
    ReadObservation,
    Transaction,
    TransactionRecord,
)
from .validation import KeyState, KeyStateTable, ValidationResult, validate

__all__ = [
    "MilanaClient",
    "MilanaServer",
    "CachingMilanaClient",
    "NearestReplicaClient",
    "TxnStats",
    "TransactionAborted",
    "Transaction",
    "TransactionRecord",
    "ReadObservation",
    "PREPARED",
    "COMMITTED",
    "ABORTED",
    "UNKNOWN",
    "KeyState",
    "KeyStateTable",
    "ValidationResult",
    "validate",
    "LeaseManager",
    "DEFAULT_LEASE_DURATION",
    "DEFAULT_LEASE_INTERVAL",
    "DEFAULT_CTP_TIMEOUT",
    "RecoveryError",
    "recover_primary",
    "merge_records",
]
