"""MILANA client library: OCC transactions coordinated at the client.

Implements the §4.1 API — beginTransaction / get / put /
commitTransaction / abortTransaction — with the client acting as the 2PC
coordinator (§4.2) and, for read-only transactions, as its own validator
(§4.3):

* reads are issued at ``ts_begin`` and record the returned version plus
  the server's prepared bit;
* writes are buffered; reads of buffered keys hit the local cache;
* a read-only transaction commits **locally** iff no key in its read set
  had a prepared version at or below ``ts_begin`` — zero round trips;
* a read-write transaction prepares at every participant shard primary,
  commits iff all vote SUCCESS, and notifies the outcome asynchronously —
  the client answers the application after collecting votes, without
  waiting for the decide round.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..clocks.base import Clock
from ..histogram import LatencyHistogram
from ..net.network import Network
from ..net.rpc import RpcError, RpcNode, RpcTimeout
from ..sim.core import Simulator
from ..sim.process import Process
from ..semel.sharding import Directory
from ..verify import TxnEntry
from ..versioning import Version
from ..wire import (
    MilanaDecide,
    MilanaGet,
    MilanaPrepare,
    MilanaTxnStatus,
    MilanaTxnStatusReply,
    TxnRecordWire,
    WatermarkReport,
)
from .transaction import (
    ABORTED,
    COMMITTED,
    PREPARED,
    UNKNOWN,
    ReadObservation,
    Transaction,
)

__all__ = ["MilanaClient", "TxnStats", "TransactionAborted"]


class TransactionAborted(Exception):
    """Raised by ``txn_get`` when a read cannot observe a snapshot (the
    single-version backend case) — the caller should abort and retry."""


@dataclass
class TxnStats:
    """Per-client transaction outcome and latency accounting."""

    started: int = 0
    committed: int = 0
    aborted: int = 0
    local_validations: int = 0
    remote_validations: int = 0
    latency_total: float = 0.0
    latency_committed_total: float = 0.0
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    #: Prepare attempts whose outcome at the participant is unknown
    #: (RPC timed out): NOT the same as an ABORT vote — the participant
    #: may hold a prepared record that must be resolved.
    unknown_votes: int = 0
    #: Decide broadcasts escalated to acked, retried-until-delivered.
    reliable_decides: int = 0
    #: Individual decide delivery attempts that had to be repeated.
    decide_retries: int = 0
    #: Full latency distribution of decided transactions (p50/p95/p99).
    latency_histogram: LatencyHistogram = field(
        default_factory=LatencyHistogram)

    @property
    def decided(self) -> int:
        return self.committed + self.aborted

    @property
    def abort_rate(self) -> float:
        return self.aborted / self.decided if self.decided else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_total / self.decided if self.decided else 0.0

    @property
    def mean_commit_latency(self) -> float:
        if not self.committed:
            return 0.0
        return self.latency_committed_total / self.committed

    def count_abort(self, reason: str) -> None:
        self.aborted += 1
        self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1


class MilanaClient:
    """One application-server client running MILANA transactions."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: Directory,
        clock: Clock,
        client_id: int,
        name: Optional[str] = None,
        local_validation: bool = True,
        rpc_timeout: float = 10e-3,
        rpc_retries: int = 1,
        reliable_decide: bool = False,
        record_history: bool = False,
        decide_retry_limit: int = 25,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.clock = clock
        self.client_id = client_id
        self.name = name or f"milana-client-{client_id}"
        self.node = RpcNode(sim, network, self.name)
        self.local_validation = local_validation
        self.rpc_timeout = rpc_timeout
        self.rpc_retries = rpc_retries
        #: Always deliver decides as acked, retried calls. Off by
        #: default: the oneway fast path is the paper's §4.2 behaviour,
        #: and escalation still happens per-txn when a vote is UNKNOWN.
        self.reliable_decide = reliable_decide
        #: Record committed transactions as verify.TxnEntry for offline
        #: serializability audits (harness.audit).
        self.record_history = record_history
        self.decide_retry_limit = decide_retry_limit
        self.stats = TxnStats()
        self.history: List[TxnEntry] = []
        #: txn_id -> final outcome, serving the participant-side
        #: termination query (milana.txn_outcome) backstop.
        self._decided_outcomes: Dict[str, str] = {}
        self.node.register("milana.txn_outcome", self._handle_txn_outcome)
        #: Timestamp of the latest decided transaction: this client's
        #: watermark contribution (§4.4).
        self.last_decided_timestamp = float("-inf")
        self._txn_start_times: Dict[str, float] = {}
        # Per-instance so txn ids — and everything keyed on them — are
        # independent of whatever other clients ran in this process.
        # Uniqueness still holds: ids are namespaced by client_id.
        self._txn_counter = itertools.count(1)

    # -- transaction lifecycle ------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction stamped with the client's current time."""
        txn = Transaction(
            txn_id=f"t{self.client_id}.{next(self._txn_counter)}",
            client_id=self.client_id,
            ts_begin=self.clock.now(),
        )
        self.stats.started += 1
        self._txn_start_times[txn.txn_id] = self.sim.now
        return txn

    def put(self, txn: Transaction, key: str, value: Any) -> None:
        """Buffer a write; it reaches servers only at commit."""
        txn.writes[key] = value

    def txn_get(self, txn: Transaction, key: str) -> Process:
        """Read ``key`` at the transaction's snapshot; fires with the value
        (or None for a missing key)."""
        return self.sim.process(self._txn_get(txn, key))

    def txn_get_many(self, txn: Transaction, keys) -> Process:
        """Read several keys at the transaction's snapshot in parallel.

        Issues the server round trips concurrently (they are independent
        snapshot reads at ``ts_begin``), which collapses an N-key read
        phase from N round trips to ~1. Fires with a dict
        ``{key: value}``.
        """
        return self.sim.process(self._txn_get_many(txn, list(keys)))

    def _txn_get_many(self, txn: Transaction, keys):
        pending = [
            (key, self.sim.process(self._txn_get(txn, key)))
            for key in keys
        ]
        if pending:
            outcome = self.sim.all_of([proc for _, proc in pending])
            try:
                yield outcome
            except Exception:
                # One read failed (e.g. snapshot miss): the others may
                # still fail later; absorb their failures so the abort
                # propagates exactly once, through this call.
                for _, proc in pending:
                    proc.defused = True
                raise
        return {key: proc.value for key, proc in pending}

    def commit(self, txn: Transaction) -> Process:
        """Run the commit protocol; fires with COMMITTED or ABORTED."""
        return self.sim.process(self._commit(txn))

    def abort(self, txn: Transaction, reason: str = "application") -> None:
        """Discard the transaction's state and count the abort."""
        txn.status = ABORTED
        self._decide_locally(txn, reason=reason)

    # -- reads -----------------------------------------------------------------

    def _txn_get(self, txn: Transaction, key: str):
        if key in txn.writes:
            return txn.writes[key]
        if key in txn.reads:
            return txn.reads[key].value
        primary = self.directory.primary_of(key)
        reply = yield self.node.call(
            primary, "milana.get",
            MilanaGet(key=key, timestamp=txn.ts_begin),
            timeout=self.rpc_timeout, retries=self.rpc_retries)
        if reply.snapshot_miss:
            # The key exists but not at our snapshot (single-version
            # store discarded it): the transaction cannot read a
            # consistent snapshot and must abort.
            raise TransactionAborted(
                f"snapshot at {txn.ts_begin} unavailable for {key!r}")
        version = Version(*reply.version) if reply.found else None
        observation = ReadObservation(
            version=version,
            prepared=reply.prepared,
            value=reply.value,
        )
        txn.reads[key] = observation
        return observation.value

    # -- commit paths ----------------------------------------------------------------

    def _commit(self, txn: Transaction):
        if txn.is_read_only and self.local_validation:
            outcome = self._commit_read_only_local(txn)
            return outcome
        outcome = yield from self._commit_two_phase(txn)
        return outcome

    def _commit_read_only_local(self, txn: Transaction) -> str:
        """§4.3: commit iff the read set came from a consistent snapshot.

        Every returned value was the youngest committed version at
        ``ts_begin`` by construction; the snapshot is consistent exactly
        when no key had a prepared (in-doubt) version at or below
        ``ts_begin``.
        """
        self.stats.local_validations += 1
        conflicted = [key for key, obs in txn.reads.items() if obs.prepared]
        if conflicted:
            txn.status = ABORTED
            self._decide_locally(
                txn, reason="local-validation: prepared version in "
                "read set")
            return ABORTED
        txn.status = COMMITTED
        self._decide_locally(txn)
        return COMMITTED

    def _commit_two_phase(self, txn: Transaction):
        """Client-coordinated 2PC (§4.2, Figure 4)."""
        self.stats.remote_validations += 1
        txn.ts_commit = self.clock.now()
        by_shard = self._group_by_shard(txn)
        participants = sorted(by_shard)
        votes: Dict[str, str] = {}
        reasons: List[str] = []

        calls = []
        for shard_name in participants:
            reads, writes = by_shard[shard_name]
            request = MilanaPrepare(record=TxnRecordWire(
                txn_id=txn.txn_id,
                client_id=self.client_id,
                client_name=self.name,
                ts_commit=txn.ts_commit,
                reads=tuple(
                    (key, tuple(version) if version is not None else None)
                    for key, version in reads),
                writes=tuple(writes),
                participants=tuple(participants),
                status=PREPARED,
                prepared_at=0.0,
            ))
            primary = self.directory.shard(shard_name).primary
            calls.append((shard_name, self.sim.process(
                self._prepare_one(primary, request))))
        for shard_name, call in calls:
            vote, reason = yield call
            votes[shard_name] = vote
            if reason:
                reasons.append(reason)

        unknown = sum(1 for vote in votes.values() if vote == UNKNOWN)
        self.stats.unknown_votes += unknown
        if all(vote == "SUCCESS" for vote in votes.values()):
            outcome = COMMITTED
        else:
            # An UNKNOWN vote also aborts: the coordinator cannot prove
            # the participant prepared. The difference from an ABORT
            # vote is delivery, below — that participant may hold a
            # prepared record that must learn the outcome.
            outcome = ABORTED
        self._decided_outcomes[txn.txn_id] = outcome
        # Report to the application first; notify participants async
        # (§4.2). The oneway fast path carries the outcome when every
        # vote arrived; once any outcome is in doubt the broadcast is
        # escalated to acked delivery, retried until each participant
        # confirms — otherwise an in-doubt prepared record could linger
        # and block every reader's local validation.
        reliable = self.reliable_decide or unknown > 0
        for shard_name in participants:
            if reliable:
                self.stats.reliable_decides += 1
                self.sim.process(self._deliver_decide(
                    shard_name, txn.txn_id, outcome))
            else:
                primary = self.directory.shard(shard_name).primary
                self.node.send_oneway(
                    primary, "milana.decide",
                    MilanaDecide(txn_id=txn.txn_id, outcome=outcome))
        txn.status = outcome
        if outcome == COMMITTED:
            self._decide_locally(txn)
        else:
            self._decide_locally(
                txn, reason=reasons[0] if reasons else "validation")
        return outcome

    def _prepare_one(self, primary: str, request: MilanaPrepare):
        try:
            reply = yield self.node.call(
                primary, "milana.prepare", request,
                timeout=self.rpc_timeout, retries=self.rpc_retries)
        except RpcTimeout as exc:
            # No vote arrived: the participant may or may not hold a
            # prepared record. Distinguishable from a real ABORT vote so
            # the decide path knows delivery must be reliable.
            return UNKNOWN, f"prepare outcome unknown at {primary}: {exc}"
        except RpcError as exc:
            return "ABORT", f"prepare failed at {primary}: {exc}"
        return reply.vote, reply.reason

    def _deliver_decide(self, shard_name: str, txn_id: str, outcome: str):
        """Push the outcome to one participant until it acknowledges.

        Re-resolves the shard primary every round so delivery follows a
        failover. Gives up after ``decide_retry_limit`` rounds — the
        participant-side termination query (CTP + ``milana.txn_outcome``)
        is the backstop for participants unreachable that long.
        """
        payload = MilanaDecide(txn_id=txn_id, outcome=outcome)
        for _ in range(self.decide_retry_limit):
            primary = self.directory.shard(shard_name).primary
            try:
                yield self.node.call(
                    primary, "milana.decide", payload,
                    timeout=self.rpc_timeout)
            except RpcError:
                self.stats.decide_retries += 1
                yield self.sim.timeout(self.rpc_timeout)
                continue
            return

    def _handle_txn_outcome(self, request: MilanaTxnStatus):
        """Participant termination-query backstop: report the recorded
        outcome of one of this coordinator's transactions."""
        yield from ()
        return MilanaTxnStatusReply(
            status=self._decided_outcomes.get(request.txn_id, UNKNOWN))

    # -- bookkeeping ------------------------------------------------------------------

    def _group_by_shard(self, txn: Transaction) -> Dict[str, Tuple[list, list]]:
        by_shard: Dict[str, Tuple[list, list]] = {}
        for key, version in txn.read_set:
            shard = self.directory.shard_of(key).name
            by_shard.setdefault(shard, ([], []))[0].append((key, version))
        for key, value in txn.write_set:
            shard = self.directory.shard_of(key).name
            by_shard.setdefault(shard, ([], []))[1].append((key, value))
        return by_shard

    def _decide_locally(self, txn: Transaction,
                        reason: Optional[str] = None) -> None:
        started_at = self._txn_start_times.pop(txn.txn_id, self.sim.now)
        latency = self.sim.now - started_at
        self.stats.latency_total += latency
        self.stats.latency_histogram.record(latency)
        if txn.status == COMMITTED:
            self.stats.committed += 1
            self.stats.latency_committed_total += latency
        else:
            self.stats.count_abort(reason or "unknown")
        self._decided_outcomes[txn.txn_id] = txn.status
        decided_ts = txn.ts_commit if txn.ts_commit is not None \
            else txn.ts_begin
        self.last_decided_timestamp = max(
            self.last_decided_timestamp, decided_ts)
        if self.record_history and txn.status == COMMITTED:
            version = Version(txn.ts_commit, self.client_id) \
                if txn.writes else None
            self.history.append(TxnEntry(
                txn_id=txn.txn_id,
                reads={key: obs.version
                       for key, obs in txn.reads.items()},
                writes={key: version for key in txn.writes},
                ts=decided_ts))

    # -- watermark broadcasting (§4.4) ---------------------------------------------------

    def broadcast_watermark(self) -> None:
        """Send the latest-decided timestamp to every storage server."""
        if self.last_decided_timestamp == float("-inf"):
            return
        report = WatermarkReport(client_id=self.client_id,
                                 timestamp=self.last_decided_timestamp)
        for server in self.directory.all_servers():
            self.node.send_oneway(server, "semel.watermark", report)

    def start_watermark_daemon(self, interval: float = 0.1) -> Process:
        return self.sim.process(self._watermark_loop(interval))

    def _watermark_loop(self, interval: float):
        while True:
            yield self.sim.timeout(interval)
            self.broadcast_watermark()
