"""Algorithm 1: the MILANA primary validation algorithm.

Per-key state kept in DRAM on each primary (§4.1):

* ``latest_read`` — the largest snapshot timestamp any get has used;
* ``prepared`` — the (txn_id, ts_commit) of a prepared-but-undecided
  transaction writing this key, or None;
* ``latest_committed`` — the version stamp of the youngest committed
  write.

None of this is persisted; recovery rebuilds ``prepared`` and
``latest_committed`` from replicas and the store, and covers the missing
``latest_read`` with a lease wait (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..versioning import Version
from .transaction import TransactionRecord

__all__ = ["KeyState", "KeyStateTable", "validate", "ValidationResult"]


@dataclass
class KeyState:
    """Validation-relevant state of one key on a primary."""

    latest_read: float = float("-inf")
    prepared: Optional[Tuple[str, float]] = None  # (txn_id, ts_commit)
    latest_committed: Optional[Version] = None

    def prepared_at_or_before(self, timestamp: float) -> bool:
        return self.prepared is not None and self.prepared[1] <= timestamp


class KeyStateTable:
    """All per-key validation state for one shard primary."""

    def __init__(self) -> None:
        self._states: Dict[str, KeyState] = {}

    def get(self, key: str) -> KeyState:
        state = self._states.get(key)
        if state is None:
            state = KeyState()
            self._states[key] = state
        return state

    def peek(self, key: str) -> Optional[KeyState]:
        return self._states.get(key)

    def observe_read(self, key: str, timestamp: float) -> None:
        state = self.get(key)
        if timestamp > state.latest_read:
            state.latest_read = timestamp

    def mark_prepared(self, key: str, txn_id: str,
                      ts_commit: float) -> None:
        state = self.get(key)
        state.prepared = (txn_id, ts_commit)

    def clear_prepared(self, key: str, txn_id: str) -> None:
        state = self.get(key)
        if state.prepared is not None and state.prepared[0] == txn_id:
            state.prepared = None

    def mark_committed(self, key: str, version: Version) -> None:
        state = self.get(key)
        if (state.latest_committed is None
                or version > state.latest_committed):
            state.latest_committed = version

    def keys(self) -> List[str]:
        return list(self._states)


@dataclass(frozen=True)
class ValidationResult:
    ok: bool
    reason: str = ""


def validate(record: TransactionRecord,
             table: KeyStateTable) -> ValidationResult:
    """Algorithm 1, verbatim.

    Read-set checks (lines 2–8): every key read must have no prepared
    version and must still be at the exact version the client observed.

    Write-set checks (lines 9–18): no prepared version, no read newer
    than the new commit timestamp, no committed version at or above it.
    """
    for key, observed in record.reads:
        state = table.peek(key)
        latest_committed = state.latest_committed if state else None
        prepared = state.prepared if state else None
        if prepared is not None:
            return ValidationResult(
                False, f"read key {key!r} has a prepared version")
        observed_version = Version(*observed) if observed is not None \
            else None
        if latest_committed != observed_version:
            return ValidationResult(
                False,
                f"read key {key!r} changed: observed {observed_version}, "
                f"now {latest_committed}")

    new_version = record.commit_version_of
    for key, _value in record.writes:
        state = table.peek(key)
        if state is None:
            continue
        if state.prepared is not None:
            return ValidationResult(
                False, f"write key {key!r} has a prepared version")
        if state.latest_read >= new_version.timestamp:
            return ValidationResult(
                False,
                f"write key {key!r} read at {state.latest_read} >= "
                f"commit ts {new_version.timestamp}")
        if (state.latest_committed is not None
                and state.latest_committed >= new_version):
            return ValidationResult(
                False,
                f"write key {key!r} committed {state.latest_committed} >= "
                f"new version {new_version}")
    return ValidationResult(True)
