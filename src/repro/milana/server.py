"""MILANA primary/backup server: OCC validation and 2PC participation.

Extends the SEMEL storage server with the transaction API of §4.1:

* ``milana.get`` — snapshot read at the transaction's begin timestamp,
  returning the version **plus the prepared bit** that makes client-local
  validation of read-only transactions possible (§4.3); records the read
  timestamp in ``latest_read``;
* ``milana.prepare`` — Algorithm 1 validation; on success the record
  enters the transaction table, the written keys are marked prepared, and
  the prepare record is replicated (unordered) to f backups before the
  vote returns;
* ``milana.decide`` — commit applies the buffered writes as versions
  stamped ``(ts_commit, client_id)``, updates ``latest_committed``, clears
  the prepared marks, and replicates the decision; abort just clears;
* ``milana.txn_status`` / ``milana.fetch_log`` — the query surface used by
  the Cooperative Termination Protocol and Algorithm 2 recovery;
* ``milana.renew_lease`` — backups grant the read lease of §4.5.

A Cooperative Termination daemon watches the transaction table for
prepared transactions whose coordinator (the client) has gone quiet and
resolves them with the 4-rule CTP of §4.5.

Sanitizer notes: the handlers below report their shared-state accesses
to ``sim.tracer`` (repro.sansim) — transaction records as
``("txn", server, txn_id)``, the single-apply outcome invariant as the
exclusive ``("txn-apply", server, txn_id)``, per-key validation state
as ``("keystate", server, key)``, and the in-flight done-events as
locks. Every site is guarded by one ``tracer is not None`` check, so a
plain Simulator (tracer = None, a class attribute) pays a single
attribute load and the schedule is untouched.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..durability.wal import SEMEL_DELETE, SEMEL_PUT, TXN_RECORD
from ..ftl.base import KVBackend
from ..net.network import Network
from ..net.rpc import AppError, RpcError
from ..semel.replication import QuorumError, replicate_to_backups
from ..semel.server import StorageServer
from ..semel.sharding import Directory
from ..sim.core import Simulator
from ..versioning import Version
from ..wire import (
    Ack,
    MilanaCatchup,
    MilanaCatchupReply,
    MilanaDecide,
    MilanaDecideReply,
    MilanaFetchLog,
    MilanaFetchLogReply,
    MilanaGet,
    MilanaGetReply,
    MilanaGetUnvalidated,
    MilanaGetUnvalidatedReply,
    MilanaPrepare,
    MilanaPrepareReply,
    MilanaRenewLease,
    MilanaRenewLeaseReply,
    MilanaReplicateTxn,
    MilanaTxnStatus,
    MilanaTxnStatusReply,
    TxnRecordWire,
)
from .transaction import ABORTED, COMMITTED, PREPARED, STATUS_RANK, \
    UNKNOWN, TransactionRecord
from .validation import KeyStateTable, validate

__all__ = ["MilanaServer", "DEFAULT_CTP_TIMEOUT"]

#: How long a prepared transaction may sit undecided before a participant
#: primary assumes the client failed and runs CTP.
DEFAULT_CTP_TIMEOUT = 50e-3


class MilanaServer(StorageServer):
    """A SEMEL server that also speaks the MILANA transaction protocol."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        directory: Directory,
        name: str,
        shard_name: str,
        backend: KVBackend,
        replication_timeout: float = 10e-3,
        ctp_timeout: Optional[float] = DEFAULT_CTP_TIMEOUT,
    ) -> None:
        super().__init__(sim, network, directory, name, shard_name,
                         backend, replication_timeout)
        #: txn_id -> TransactionRecord; the §4.1 transaction table.
        self.txn_table: Dict[str, TransactionRecord] = {}
        self.key_states = KeyStateTable()
        #: Set during failover: reads/prepares rejected until this time.
        self.serving_after = float("-inf")
        self.validation_failures = 0
        self.ctp_resolutions = 0
        #: Backup-granted lease expiries (by primary name), §4.5.
        self.granted_leases: Dict[str, float] = {}
        #: Optional LeaseManager; when attached, transactional reads are
        #: refused while the lease is lapsed (§4.5: a primary serves gets
        #: only under a lease from f backups).
        self.lease_manager = None
        #: txn_id -> completion event for a prepare/decide still being
        #: processed, so a network-duplicated request coalesces with the
        #: original instead of acking early (prepare: before the record
        #: is quorum-durable) or double-applying writes (decide).
        self._inflight_txn_ops: Dict[str, Any] = {}
        self._register_milana_handlers()
        self.ctp_timeout = ctp_timeout
        #: The CTP daemon's process, kept so an amnesia crash can kill it.
        self._ctp_proc = (sim.process(self._ctp_daemon())
                          if ctp_timeout is not None else None)

    # -- registration -------------------------------------------------------

    def _register_milana_handlers(self) -> None:
        self.node.register("milana.get", self._handle_txn_get)
        self.node.register("milana.prepare", self._handle_prepare)
        self.node.register("milana.decide", self._handle_decide)
        self.node.register("milana.txn_status", self._handle_txn_status)
        self.node.register("milana.fetch_log", self._handle_fetch_log)
        self.node.register("milana.replicate_txn",
                           self._handle_replicate_txn)
        self.node.register("milana.renew_lease", self._handle_renew_lease)
        self.node.register("milana.get_unvalidated",
                           self._handle_get_unvalidated)
        self.node.register("milana.catchup", self._handle_catchup)

    def _require_serving(self) -> None:
        self._require_primary()
        if self.sim.now < self.serving_after:
            raise AppError(
                f"{self.name} recovering: serving after "
                f"{self.serving_after:.6f}")
        if self.lease_manager is not None and not self.lease_manager.held:
            raise AppError(
                f"{self.name} lease lapsed; cannot serve reads (§4.5)")

    # -- lazy key-state hydration ----------------------------------------------

    def _hydrate_committed(self, key: str) -> None:
        """Infer ``latest_committed`` from stored version stamps.

        Covers pre-populated data and post-failover state: §4.5 notes the
        latest committed version "can be inferred from the version stamps
        included with each write".
        """
        state = self.key_states.get(key)
        if state.latest_committed is None:
            versions = self.backend.versions_of(key)
            if versions:
                state.latest_committed = versions[0]

    # -- transactional reads --------------------------------------------------------

    def _handle_txn_get(self, request: MilanaGet):
        self._require_serving()
        key = request.key
        timestamp = request.timestamp
        self._hydrate_committed(key)
        result = yield self.backend.get(key, max_timestamp=timestamp)
        state = self.key_states.get(key)
        self.key_states.observe_read(key, timestamp)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.on_read(("keystate", self.name, key))
        prepared_flag = state.prepared_at_or_before(timestamp)
        if result is None:
            # Distinguish "key never existed" from "snapshot unavailable":
            # on a single-version store a key may exist only at a version
            # newer than the snapshot — the reader must abort (Figure 6).
            snapshot_miss = self.backend.contains(key)
            return MilanaGetReply(found=False, prepared=prepared_flag,
                                  snapshot_miss=snapshot_miss)
        version, value = result
        return MilanaGetReply(found=True, version=tuple(version),
                              value=value, prepared=prepared_flag)

    def _handle_get_unvalidated(self, request: MilanaGetUnvalidated):
        """Snapshot read served by ANY replica (§4.6's relaxation).

        Backups can serve reads for read-write transactions to spread
        load: no ``latest_read`` is recorded and no prepared bit is
        returned, so the transaction MUST validate remotely — the
        primary's read-set check catches both staleness from replication
        lag and concurrent committers.
        """
        key = request.key
        result = yield self.backend.get(key,
                                        max_timestamp=request.timestamp)
        if result is None:
            snapshot_miss = self.backend.contains(key)
            return MilanaGetUnvalidatedReply(found=False,
                                             snapshot_miss=snapshot_miss)
        version, value = result
        return MilanaGetUnvalidatedReply(found=True,
                                         version=tuple(version),
                                         value=value)

    # -- two-phase commit: prepare ------------------------------------------------------

    def _handle_prepare(self, request: MilanaPrepare):
        self._require_serving()
        record = request.record.to_record()
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.begin_section("prepare", record.txn_id)
        inflight = self._inflight_txn_ops.get(record.txn_id)
        if inflight is not None:
            # A duplicate of a prepare still replicating: wait for the
            # original so the vote below is only repeated once the record
            # is quorum-durable.
            yield inflight
        if tracer is not None:
            tracer.on_read(("txn", self.name, record.txn_id))
        existing = self.txn_table.get(record.txn_id)
        if existing is not None:
            # Retransmitted prepare: repeat the recorded vote.
            vote = "SUCCESS" if existing.status in (PREPARED, COMMITTED) \
                else "ABORT"
            return MilanaPrepareReply(vote=vote)
        for key, _ in list(record.reads) + list(record.writes):
            self._hydrate_committed(key)
            if tracer is not None:
                tracer.on_read(("keystate", self.name, key))
        result = validate(record, self.key_states)
        if not result.ok:
            self.validation_failures += 1
            record.status = ABORTED
            self.txn_table[record.txn_id] = record
            if tracer is not None:
                tracer.on_write(("txn", self.name, record.txn_id))
            if self.wal is not None:
                # An ABORT vote claims no durability; log in the
                # background (no yield here: the vote must follow the
                # validation verdict without an interleaving point).
                self._spawn_background_append(
                    self.wal.append_txn(record, sync=False))
            return MilanaPrepareReply(vote="ABORT", reason=result.reason)
        record.status = PREPARED
        record.prepared_at = self.sim.now
        self.txn_table[record.txn_id] = record
        if tracer is not None:
            tracer.on_write(("txn", self.name, record.txn_id))
        for key, _value in record.writes:
            self.key_states.mark_prepared(key, record.txn_id,
                                          record.ts_commit)
            if tracer is not None:
                tracer.on_write(("keystate", self.name, key))
        done = self.sim.event()
        self._inflight_txn_ops[record.txn_id] = done
        if tracer is not None:
            tracer.on_acquire(("inflight", self.name, record.txn_id))
        try:
            if self.wal is not None:
                # The SUCCESS vote below asserts this prepare record
                # survives this node's crash: fsync before voting.
                yield from self.wal.append_txn(
                    record, sync=self.wal.config.sync_prepares)
            yield from self._replicate_txn_record(record)
        except QuorumError as exc:
            # The prepare record is not quorum-durable, so a SUCCESS
            # vote here could commit a transaction that a recovering
            # coordinator cannot reconstruct. No SUCCESS was ever sent,
            # so aborting locally and voting ABORT is always safe.
            self._apply_abort(record)
            if self.wal is not None:
                yield from self.wal.append_txn(record, sync=False)
            return MilanaPrepareReply(vote="ABORT", reason=str(exc))
        finally:
            # pop, not del: a crash-kill interrupt lands here after the
            # volatile tables were replaced, so the key may be gone.
            self._inflight_txn_ops.pop(record.txn_id, None)
            if tracer is not None:
                tracer.on_release(("inflight", self.name, record.txn_id))
            done.succeed()
        return MilanaPrepareReply(vote="SUCCESS")

    def _spawn_background_append(self, gen):
        """Spawn a fire-and-forget WAL append with its failure routed to
        the node's error counter.

        Nothing ever waits on the spawned process, so without this an
        exception inside the append would be an unhandled failure and
        :meth:`Event._fire` would raise it straight into
        ``Simulator.run``, killing the whole simulation — worse than
        dropping it. Count it on ``handler_errors`` (the same place a
        handler fault lands) and defuse.
        """
        proc = self.sim.process(gen)

        def _observe(event) -> None:
            if event.ok is False:
                event.defused = True
                self.node.handler_errors += 1

        proc.callbacks.append(_observe)
        return proc

    # -- two-phase commit: decide ----------------------------------------------------------

    def _handle_decide(self, request: MilanaDecide):
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.begin_section("decide", request.txn_id)
        inflight = self._inflight_txn_ops.get(request.txn_id)
        if inflight is not None:
            # A duplicate racing the original decide (or a decide racing
            # the prepare's replication): coalesce — the status check
            # below then sees the settled state instead of re-applying.
            yield inflight
        if tracer is not None:
            tracer.on_read(("txn", self.name, request.txn_id))
        record = self.txn_table.get(request.txn_id)
        outcome = request.outcome
        if record is None:
            # Never saw the prepare (or GC'd): report UNKNOWN so an
            # acked sender can tell "applied" from "nothing to apply".
            yield from ()
            return MilanaDecideReply(status=UNKNOWN)
        if record.status in (COMMITTED, ABORTED):
            yield from ()
            return MilanaDecideReply(status=record.status)
        if outcome not in (COMMITTED, ABORTED):
            raise AppError(f"bad outcome {outcome!r}")
        done = self.sim.event()
        self._inflight_txn_ops[request.txn_id] = done
        if tracer is not None:
            tracer.on_acquire(("inflight", self.name, request.txn_id))
        try:
            if outcome == COMMITTED:
                yield from self._apply_commit(record)
            else:
                self._apply_abort(record)
                if self.wal is not None:
                    yield from self.wal.append_txn(
                        record, sync=self.wal.config.sync_decides)
                yield from self._replicate_txn_record(record)
        except QuorumError as exc:
            # Not an RpcError, so it would otherwise escape as an opaque
            # handler error. The decision is applied locally but not
            # quorum-durable; reject so the coordinator retries, and the
            # retransmission repeats the recorded status.
            raise AppError(
                f"decide for {request.txn_id} not quorum-durable: "
                f"{exc}") from exc
        finally:
            self._inflight_txn_ops.pop(request.txn_id, None)
            if tracer is not None:
                tracer.on_release(("inflight", self.name, request.txn_id))
            done.succeed()
        return MilanaDecideReply(status=record.status)

    def _apply_commit(self, record: TransactionRecord):
        """Make a prepared transaction's writes visible, then durable.

        Prepared marks clear at *visibility* (the version is readable from
        the engine's write buffer / mapping table) rather than flash
        durability: the decision is already majority-durable via the
        replicated prepare records, so holding the keys blocked for the
        full page-program (packing) time would only manufacture false
        conflicts.
        """
        version = record.commit_version_of
        visibles = []
        puts = []
        for key, value in record.writes:
            visible = self.sim.event()
            visibles.append(visible)
            puts.append(self.backend.put(key, value, version,
                                         visible=visible))
        if visibles:
            yield self.sim.all_of(visibles)
        tracer = self.sim.tracer
        for key, _value in record.writes:
            self.key_states.mark_committed(key, version)
            self.key_states.clear_prepared(key, record.txn_id)
            if tracer is not None:
                tracer.on_write(("keystate", self.name, key))
        record.status = COMMITTED
        if tracer is not None:
            tracer.on_write(("txn", self.name, record.txn_id))
            # Single-apply invariant: a transaction's outcome is applied
            # exactly once per primary (the pre-PR-4 CTP bug broke this).
            tracer.on_write(("txn-apply", self.name, record.txn_id),
                            exclusive=True)
        if puts:
            yield self.sim.all_of(puts)
        if self.wal is not None:
            # The "quorum-durable" claim of the decide ack starts with
            # this primary's own log entry: fsync before acknowledging.
            yield from self.wal.append_txn(
                record, sync=self.wal.config.sync_decides)
        yield from self._replicate_txn_record(record)

    def _apply_abort(self, record: TransactionRecord) -> None:
        tracer = self.sim.tracer
        for key, _value in record.writes:
            self.key_states.clear_prepared(key, record.txn_id)
            if tracer is not None:
                tracer.on_write(("keystate", self.name, key))
        record.status = ABORTED
        if tracer is not None:
            tracer.on_write(("txn", self.name, record.txn_id))
            tracer.on_write(("txn-apply", self.name, record.txn_id),
                            exclusive=True)

    # -- replication of transaction records --------------------------------------------------

    def _replicate_txn_record(self, record: TransactionRecord):
        backups = self.backups
        need = min(self.quorum_acks, len(backups))
        if need <= 0:
            return
        yield from replicate_to_backups(
            self.node, backups, "milana.replicate_txn",
            MilanaReplicateTxn(record=TxnRecordWire.from_record(record)),
            need, timeout=self.replication_timeout)

    def _handle_replicate_txn(self, request: MilanaReplicateTxn):
        """Backup side: store the record; apply writes once committed.

        Records may arrive in any order (prepare after commit, commits
        out of timestamp order) — §3.2's relaxed backup updates. Status
        only ever moves forward (PREPARED -> COMMITTED/ABORTED).
        """
        record = request.record.to_record()
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.on_read(("txn", self.name, record.txn_id))
        existing = self.txn_table.get(record.txn_id)
        if existing is not None and existing.status in (COMMITTED, ABORTED):
            yield from ()
            return Ack()
        self.txn_table[record.txn_id] = record
        if tracer is not None:
            tracer.on_write(("txn", self.name, record.txn_id))
        if self.wal is not None:
            # This Ack is the backup's contribution to the primary's
            # durability quorum: the record must survive our own crash.
            sync = (self.wal.config.sync_prepares
                    if record.status == PREPARED
                    else self.wal.config.sync_decides)
            yield from self.wal.append_txn(record, sync=sync)
        if record.status == COMMITTED:
            version = record.commit_version_of
            for key, value in record.writes:
                if version not in self.backend.versions_of(key):
                    yield self.backend.put(key, value, version)
                    if tracer is not None:
                        # Versioned MVCC stores tolerate concurrent puts
                        # by design; record the edge, never flag it.
                        tracer.on_write(("store", self.name, key),
                                        relaxed=True)
        return Ack()

    # -- status queries (CTP / recovery) ------------------------------------------------------

    def _handle_txn_status(self, request: MilanaTxnStatus):
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.on_read(("txn", self.name, request.txn_id))
        record = self.txn_table.get(request.txn_id)
        yield from ()
        if record is None:
            return MilanaTxnStatusReply(status=UNKNOWN)
        return MilanaTxnStatusReply(status=record.status)

    def _handle_fetch_log(self, request: MilanaFetchLog):
        yield from ()
        return MilanaFetchLogReply(records=tuple(
            TxnRecordWire.from_record(record)
            for record in self.txn_table.values()))

    # -- crash / restart (amnesia fail-stop) -------------------------------

    def crash(self) -> None:
        """Amnesia: kill the node's processes (including the CTP daemon
        and lease renewals) and wipe every volatile table. Only the
        WAL's durable prefix survives to :meth:`replay_wal`."""
        super().crash()
        if self._ctp_proc is not None and self._ctp_proc.is_alive:
            self._ctp_proc.interrupt("crash")
        self._ctp_proc = None
        self.txn_table = {}
        self.key_states = KeyStateTable()
        # Nothing serves until recovery says so (primaries re-enter via
        # Algorithm 2; backups never consult serving_after).
        self.serving_after = float("inf")
        self.granted_leases = {}
        self._inflight_txn_ops = {}
        if self.lease_manager is not None:
            self.lease_manager.crash()

    def restart(self, backend: KVBackend) -> None:
        super().restart(backend)
        if self.ctp_timeout is not None:
            self._ctp_proc = self.sim.process(self._ctp_daemon())
        if self.lease_manager is not None:
            self.lease_manager.restart()

    def replay_wal(self):
        """Generator: rebuild the store and transaction table from the
        durable WAL prefix.

        Charges ``replay_latency`` per record, then bulk-applies:
        SEMEL put/delete records rebuild the versioned store; txn
        records rebuild the table keeping the most-decided status per
        transaction (a decided entry is always appended after the
        prepared one), and committed records' writes are re-applied at
        their commit versions — the write values ride in the prepare
        records, which is what makes Algorithm 2's merge workable.
        """
        wal = self.wal
        if wal is None:
            return
        entries = wal.durable_records()
        wal.replays += 1
        delay = wal.replay_delay(len(entries))
        if delay > 0.0:
            yield self.sim.timeout(delay)
        puts: Dict[tuple, tuple] = {}
        merged: Dict[str, TransactionRecord] = {}
        for entry in entries:
            if entry.kind == SEMEL_PUT:
                key, value, version = entry.payload
                version = Version(*version)
                puts[(key, tuple(version))] = (key, value, version)
            elif entry.kind == SEMEL_DELETE:
                (key,) = entry.payload
                puts = {kv: item for kv, item in puts.items()
                        if kv[0] != key}
            elif entry.kind == TXN_RECORD:
                record = entry.payload.to_record()
                existing = merged.get(record.txn_id)
                if (existing is None
                        or STATUS_RANK[record.status]
                        > STATUS_RANK[existing.status]):
                    merged[record.txn_id] = record
        for record in merged.values():
            if record.status == COMMITTED:
                version = record.commit_version_of
                for key, value in record.writes:
                    puts.setdefault((key, tuple(version)),
                                    (key, value, version))
        if puts:
            self.backend.bulk_load(
                puts[kv] for kv in sorted(puts))
        self.txn_table = merged
        for key in self.backend.keys():
            versions = self.backend.versions_of(key)
            if versions:
                self.key_states.mark_committed(key, versions[0])
        for record in merged.values():
            if record.status == PREPARED:
                for key, _value in record.writes:
                    self.key_states.mark_prepared(
                        key, record.txn_id, record.ts_commit)

    def catch_up_from_primary(self):
        """Generator: pull decided records and newest store versions
        from the shard primary after an amnesia restart. Returns True
        once caught up, False when the primary was unreachable (the
        restart protocol retries)."""
        primary = self.shard.primary
        if primary == self.name:
            return True
        try:
            reply = yield self.node.call(
                primary, "milana.catchup",
                MilanaCatchup(replica=self.name),
                timeout=self.replication_timeout)
        except RpcError:
            return False
        for wire in reply.records:
            record = wire.to_record()
            existing = self.txn_table.get(record.txn_id)
            if (existing is None
                    or STATUS_RANK[record.status]
                    > STATUS_RANK[existing.status]):
                self.txn_table[record.txn_id] = record
                if self.wal is not None:
                    # Catch-up data must survive the *next* crash too;
                    # no ack rides on it, so a background fsync is fine.
                    yield from self.wal.append_txn(record, sync=False)
            if record.status == COMMITTED:
                version = record.commit_version_of
                for key, value in record.writes:
                    if version not in self.backend.versions_of(key):
                        yield self.backend.put(key, value, version)
        for key, version_tuple, value in reply.versions:
            version = Version(*version_tuple)
            if version not in self.backend.versions_of(key):
                yield self.backend.put(key, value, version)
                if self.wal is not None:
                    yield from self.wal.append_put(
                        key, value, version, sync=False)
        return True

    def _handle_catchup(self, request: MilanaCatchup):
        """Primary side of a restarted backup's catch-up pull.

        Requires the primary *role* but not serving state: a primary
        mid-lease-wait already holds the merged, authoritative table,
        and backups catching up during that window shortens the shard's
        exposure to a second failure.
        """
        self._require_primary()
        records = tuple(
            TxnRecordWire.from_record(record)
            for _txn_id, record in sorted(self.txn_table.items())
            if record.status in (COMMITTED, ABORTED))
        versions = []
        for key in sorted(self.backend.keys()):
            result = yield self.backend.get(key)
            if result is None:
                continue
            version, value = result
            versions.append((key, tuple(version), value))
        return MilanaCatchupReply(records=records,
                                  versions=tuple(versions))

    # -- leases (§4.5) ----------------------------------------------------------------------------

    def _handle_renew_lease(self, request: MilanaRenewLease):
        yield from ()
        self.granted_leases[request.primary] = request.expiry
        return MilanaRenewLeaseReply(granted=True)

    # -- cooperative termination (§4.5, client failure) ----------------------------------------------

    def _ctp_daemon(self):
        """Resolve prepared transactions whose coordinator went silent."""
        while True:
            yield self.sim.timeout(self.ctp_timeout / 2)
            if not self.is_primary:
                continue
            now = self.sim.now
            stale = [
                record for record in self.txn_table.values()
                if record.status == PREPARED
                and now - record.prepared_at > self.ctp_timeout
            ]
            for record in stale:
                try:
                    yield from self._run_ctp(record)
                except (RpcError, QuorumError):
                    # An unreachable peer or a lost replication quorum
                    # must not kill the daemon: the record stays
                    # PREPARED and the next round retries.
                    continue

    def _run_ctp(self, record: TransactionRecord):
        """The four termination rules of §4.5 (client failure), with a
        coordinator termination query as the first move: if the client
        is reachable and already decided, its answer is authoritative
        and no peer round is needed."""
        tracer = self.sim.tracer
        if tracer is not None:
            # The CTP daemon is long-lived: each resolution is its own
            # section so guard windows reset per transaction.
            tracer.begin_section("ctp", record.txn_id)
            tracer.on_read(("txn", self.name, record.txn_id))
            for key, _value in record.writes:
                tracer.on_read(("keystate", self.name, key))
        outcome = yield from self._query_coordinator(record)
        if tracer is not None:
            tracer.on_read(("txn", self.name, record.txn_id))
        if record.status != PREPARED:
            return  # decided while we were querying
        if outcome is None:
            statuses = [PREPARED]  # this primary's own state
            for shard_name in record.participants:
                if shard_name == self.shard_name:
                    continue
                primary = self.directory.shard(shard_name).primary
                try:
                    reply = yield self.node.call(
                        primary, "milana.txn_status",
                        MilanaTxnStatus(txn_id=record.txn_id),
                        timeout=self.replication_timeout)
                except RpcError:
                    # Unreachable participant: cannot decide yet;
                    # retry later.
                    return
                statuses.append(reply.status)
            if tracer is not None:
                tracer.on_read(("txn", self.name, record.txn_id))
            if record.status != PREPARED:
                return  # decided while we were querying
            if COMMITTED in statuses:
                outcome = COMMITTED  # rule 1: someone saw the commit
            elif ABORTED in statuses:
                outcome = ABORTED    # rules 1/3
            elif UNKNOWN in statuses:
                outcome = ABORTED    # rule 2: a participant never prepared
            else:
                outcome = COMMITTED  # rule 4: everyone prepared
        inflight = self._inflight_txn_ops.get(record.txn_id)
        if inflight is not None:
            # A decide (or a duplicate prepare's replication) is applying
            # this very transaction: wait it out instead of applying the
            # outcome a second time underneath it.
            yield inflight
        if tracer is not None:
            tracer.on_read(("txn", self.name, record.txn_id))
        if record.status != PREPARED:
            return  # decided while we were querying / waiting
        self.ctp_resolutions += 1
        done = self.sim.event()
        self._inflight_txn_ops[record.txn_id] = done
        if tracer is not None:
            tracer.on_acquire(("inflight", self.name, record.txn_id))
        try:
            if outcome == COMMITTED:
                yield from self._apply_commit(record)
            else:
                self._apply_abort(record)
                if self.wal is not None:
                    yield from self.wal.append_txn(
                        record, sync=self.wal.config.sync_decides)
                yield from self._replicate_txn_record(record)
        finally:
            self._inflight_txn_ops.pop(record.txn_id, None)
            if tracer is not None:
                tracer.on_release(("inflight", self.name, record.txn_id))
            done.succeed()
        # Propagate the decision to the other participants, reliably:
        # each delivery is acked and retried — a lost oneway here would
        # leave the peer prepared until its own CTP round.
        for shard_name in record.participants:
            if shard_name == self.shard_name:
                continue
            self.sim.process(self._deliver_decide(
                shard_name, record.txn_id, outcome))

    def _query_coordinator(self, record: TransactionRecord):
        """Ask the coordinator client for the outcome it decided.

        Returns COMMITTED/ABORTED when the coordinator answered with a
        decision, else None (unreachable, or it never decided)."""
        if not record.client_name \
                or not self.node.network.is_registered(record.client_name):
            return None
        try:
            reply = yield self.node.call(
                record.client_name, "milana.txn_outcome",
                MilanaTxnStatus(txn_id=record.txn_id),
                timeout=self.replication_timeout)
        except RpcError:
            return None
        if reply.status in (COMMITTED, ABORTED):
            return reply.status
        return None

    def _deliver_decide(self, shard_name: str, txn_id: str, outcome: str,
                        max_rounds: int = 25):
        """Acked decide delivery to one peer primary, retried across
        rounds (and across failovers: the primary is re-resolved every
        round) until the peer confirms."""
        payload = MilanaDecide(txn_id=txn_id, outcome=outcome)
        for _ in range(max_rounds):
            primary = self.directory.shard(shard_name).primary
            try:
                yield self.node.call(
                    primary, "milana.decide", payload,
                    timeout=self.replication_timeout)
            except RpcError:
                yield self.sim.timeout(self.replication_timeout)
                continue
            return
