"""Single-version FTL baseline ("SFTL" in Figures 6–7).

A standard FTL keeps exactly one version per key: each put supersedes the
previous value immediately. Snapshot reads in the past therefore fail
whenever the key has been rewritten since the snapshot — which is exactly
why tardy read-only transactions abort on this backend while MILANA's
multi-version store lets them commit (Figure 6).

Mechanically this is the unified FTL with version retention clamped to
one, so the comparison isolates *multi-versioning* rather than unrelated
engine differences.
"""

from __future__ import annotations

from ..flash.device import FlashDevice
from ..ftl.mftl import MFTLBackend
from ..sim.core import Simulator

__all__ = ["SingleVersionBackend"]


class SingleVersionBackend(MFTLBackend):
    """The paper's single-version generic FTL storage mode."""

    def __init__(self, sim: Simulator, device: FlashDevice,
                 **kwargs) -> None:
        kwargs["multi_version"] = False
        super().__init__(sim, device, **kwargs)
