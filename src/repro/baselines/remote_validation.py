"""Remote-validation-only MILANA (the "w/o LV" series of Figure 8).

Identical protocol, but read-only transactions validate at the servers
through the full 2PC prepare round instead of locally at the client —
isolating the contribution of client-local validation to latency and
throughput (the paper's 35 % / 55 % claims).
"""

from __future__ import annotations

from ..milana.client import MilanaClient

__all__ = ["RemoteValidationClient"]


class RemoteValidationClient(MilanaClient):
    """MILANA with client-local validation disabled."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs["local_validation"] = False
        super().__init__(*args, **kwargs)
