"""Comparison baselines the paper evaluates against:

* :class:`SingleVersionBackend` — single-version generic FTL (Figure 6);
* :class:`CentimanClient` — watermark-based local validation (Figure 9);
* :class:`RemoteValidationClient` — MILANA without local validation
  (Figure 8's "w/o LV" series).
"""

from .centiman import (
    CentimanClient,
    DEFAULT_DISSEMINATION_EVERY,
    WatermarkBoard,
)
from .remote_validation import RemoteValidationClient
from .single_version import SingleVersionBackend

__all__ = [
    "SingleVersionBackend",
    "CentimanClient",
    "WatermarkBoard",
    "DEFAULT_DISSEMINATION_EVERY",
    "RemoteValidationClient",
]
