"""Centiman-style local validation (the §5.3 comparison, Figure 9).

Centiman [Ding et al., SoCC '15] lets a client locally validate a
read-only transaction **only if every value it read carries a timestamp
below the current watermark** — versions old enough that every potentially
conflicting transaction has already been fully processed. Otherwise the
client falls back to remote validation.

The contrast with MILANA (§4.3): MILANA's servers return a prepared bit
with every read, so *all* read-only transactions validate locally no
matter how fresh the data; Centiman's check fails exactly when contention
concentrates reads on recently written keys, forcing remote validation
round trips — the Figure 9 throughput gap, with the locally-validated
fraction collapsing from ~89 % (α = 0.4) to ~25 % (α = 0.8).

Watermark dissemination: "clients disseminate watermark after every 1,000
transactions" (§5.3). We model the dissemination medium as a shared board
(its latency is dominated by the batching interval, which is the
experimental knob).
"""

from __future__ import annotations

from typing import Dict

from ..milana.client import MilanaClient
from ..milana.transaction import COMMITTED, Transaction

__all__ = ["WatermarkBoard", "CentimanClient",
           "DEFAULT_DISSEMINATION_EVERY"]

#: §5.3: "Clients disseminate watermark after every 1,000 transactions."
DEFAULT_DISSEMINATION_EVERY = 1000


class WatermarkBoard:
    """Shared watermark state across all Centiman clients.

    The watermark is the minimum, over clients, of the last *posted*
    decided-transaction timestamp; it lags real time by the dissemination
    batching, which is precisely what makes the local-validation check
    fail under contention.
    """

    def __init__(self) -> None:
        self._posted: Dict[int, float] = {}

    def post(self, client_id: int, timestamp: float) -> None:
        current = self._posted.get(client_id, float("-inf"))
        self._posted[client_id] = max(current, timestamp)

    @property
    def watermark(self) -> float:
        if not self._posted:
            return float("-inf")
        return min(self._posted.values())


class CentimanClient(MilanaClient):
    """A MILANA client whose read-only commit rule is Centiman's."""

    def __init__(self, *args, watermark_board: WatermarkBoard,
                 dissemination_every: int = DEFAULT_DISSEMINATION_EVERY,
                 **kwargs) -> None:
        kwargs.setdefault("local_validation", True)
        super().__init__(*args, **kwargs)
        self.watermark_board = watermark_board
        self.dissemination_every = dissemination_every
        self._decided_since_post = 0
        self.local_validation_attempts = 0
        self.local_validation_successes = 0
        # Seed the board at startup: any transaction this client runs will
        # begin after "now", so "now" is a valid low-water contribution.
        self.watermark_board.post(self.client_id, self.clock.now())

    @property
    def local_validation_fraction(self) -> float:
        if not self.local_validation_attempts:
            return 0.0
        return (self.local_validation_successes
                / self.local_validation_attempts)

    def _commit(self, txn: Transaction):
        if txn.is_read_only:
            self.local_validation_attempts += 1
            watermark = self.watermark_board.watermark
            fresh = [
                key for key, obs in txn.reads.items()
                if obs.version is not None
                and obs.version.timestamp >= watermark
            ]
            if not fresh:
                # Everything read is below the watermark: commit locally.
                self.local_validation_successes += 1
                self.stats.local_validations += 1
                txn.status = COMMITTED
                self._decide_locally(txn)
                self._after_decide()
                return txn.status
            # Fresh data in the read set: fall back to remote validation.
            outcome = yield from self._commit_two_phase(txn)
            self._after_decide()
            return outcome
        outcome = yield from self._commit_two_phase(txn)
        self._after_decide()
        return outcome

    def abort(self, txn: Transaction, reason: str = "application") -> None:
        super().abort(txn, reason)
        self._after_decide()

    def _after_decide(self) -> None:
        self._decided_since_post += 1
        if self._decided_since_post >= self.dissemination_every:
            self._decided_since_post = 0
            self.watermark_board.post(
                self.client_id, self.last_decided_timestamp)
