"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's published evaluation, quantifying knobs the
text discusses qualitatively:

* **packing delay** (§5.1: "waits up to 1 ms (tunable)") — the
  latency/throughput trade of batching 512 B records into 4 KB pages;
* **replication factor** (§3.2) — the cost of waiting for f of 2f backup
  acknowledgements as the shard grows;
* **watermark dissemination interval** (§4.4) — how quickly version
  garbage becomes collectable vs. broadcast overhead;
* **GC version-retention window** (§3.1: "e.g., keep all versions that
  are less than 5 seconds old") — retained-version footprint vs. snapshot
  availability.
"""

from __future__ import annotations

from typing import Sequence

from ..flash.device import FlashDevice
from ..ftl.mftl import MFTLBackend
from ..sim.core import Simulator
from ..sim.rng import SeededRng
from ..workloads.microbench import run_kv_microbench
from .cluster import ClusterConfig
from .experiments import ExperimentResult, _table1_geometry
from .runner import run_retwis_on_cluster

__all__ = [
    "run_packing_delay_ablation",
    "run_replication_factor_ablation",
    "run_watermark_interval_ablation",
    "run_gc_window_ablation",
    "run_client_caching_ablation",
]


def run_packing_delay_ablation(
    delays: Sequence[float] = (0.0, 0.25e-3, 0.5e-3, 1e-3, 2e-3),
    num_keys: int = 2000,
    get_percent: float = 50.0,
    duration: float = 0.06,
    warmup: float = 0.02,
    num_workers: int = 64,
    seed: int = 41,
) -> ExperimentResult:
    """Sweep the MFTL packing deadline.

    Zero delay writes a page per record (8x write amplification at 512 B
    records); long delays add put latency when traffic is thin. The 1 ms
    default is the paper's choice.
    """
    rows = []
    for delay in delays:
        sim = Simulator()
        # Size for the zero-delay worst case: one record per page (8x the
        # packed footprint), or the sweep's first point wedges the device.
        device = FlashDevice(sim, _table1_geometry(num_keys * 8))
        backend = MFTLBackend(sim, device, packing_delay=delay)
        result = run_kv_microbench(
            sim, backend, SeededRng(seed).substream(f"d{delay}"),
            num_keys=num_keys, get_percent=get_percent,
            duration=duration, warmup=warmup, num_workers=num_workers,
            version_window=0.005)
        records_per_flush = (
            backend.packer.records_written / backend.packer.pages_written
            if backend.packer.pages_written else 0.0)
        rows.append([
            delay * 1e3,
            result.throughput / 1e3,
            result.mean_put_latency * 1e6,
            records_per_flush,
            device.stats.page_writes,
        ])
    return ExperimentResult(
        name="Ablation: MFTL packing delay",
        headers=["delay ms", "kreq/s", "put us", "records/page",
                 "page writes"],
        rows=rows,
        notes=("Expected: zero delay maximizes write amplification "
               "(few records per page); large delays raise put latency "
               "under thin traffic. The paper's 1 ms sits on the flat "
               "part of the curve at realistic load."),
    )


def run_replication_factor_ablation(
    replica_counts: Sequence[int] = (1, 3, 5),
    num_clients: int = 8,
    num_keys: int = 1000,
    alpha: float = 0.6,
    duration: float = 0.25,
    warmup: float = 0.05,
    seed: int = 43,
) -> ExperimentResult:
    """Sweep the shard replication factor (2f+1 replicas).

    SEMEL commits once f of 2f backups acknowledge, so write latency grows
    only with the slowest of the fastest-f backups — the cost of fault
    tolerance should be one round trip, roughly independent of f.
    """
    rows = []
    for replicas in replica_counts:
        config = ClusterConfig(
            num_shards=1, replicas_per_shard=replicas,
            num_clients=num_clients, backend="dram",
            clock_preset="ptp-sw", seed=seed, populate_keys=num_keys)
        result = run_retwis_on_cluster(
            config, alpha=alpha, duration=duration, warmup=warmup)
        rows.append([
            replicas,
            (replicas - 1) // 2,
            result.throughput,
            result.mean_latency * 1e3,
            result.abort_rate,
        ])
    return ExperimentResult(
        name="Ablation: replication factor",
        headers=["replicas", "f", "txn/s", "latency ms", "abort rate"],
        rows=rows,
        notes=("Expected: going from no replication to 3 replicas costs "
               "one backup round trip on the prepare path; 3 -> 5 "
               "replicas costs little more (still one quorum wait)."),
    )


def run_watermark_interval_ablation(
    intervals: Sequence[float] = (0.01, 0.05, 0.2),
    num_clients: int = 8,
    num_keys: int = 800,
    alpha: float = 0.7,
    duration: float = 0.3,
    warmup: float = 0.05,
    seed: int = 47,
) -> ExperimentResult:
    """Sweep the clients' watermark broadcast interval (§4.4).

    Slower dissemination holds the GC watermark back, so storage retains
    more dead versions (memory/flash footprint), but performance is
    unaffected — retention is off the critical path by design.
    """
    rows = []
    for interval in intervals:
        config = ClusterConfig(
            num_shards=1, replicas_per_shard=1,
            num_clients=num_clients, backend="dram",
            clock_preset="ptp-sw", seed=seed, populate_keys=num_keys)
        result = run_retwis_on_cluster(
            config, alpha=alpha, duration=duration, warmup=warmup,
            watermark_interval=interval)
        server = result.cluster.servers["srv-0-0"]
        versions = [len(server.backend.versions_of(key))
                    for key in result.cluster.populated_keys[:200]]
        rows.append([
            interval * 1e3,
            result.throughput,
            sum(versions) / len(versions),
            max(versions),
        ])
    return ExperimentResult(
        name="Ablation: watermark dissemination interval",
        headers=["interval ms", "txn/s", "mean versions/key",
                 "max versions/key"],
        rows=rows,
        notes=("Expected: retained versions grow with the dissemination "
               "interval while throughput stays flat — watermark GC is "
               "off the critical path."),
    )


def run_client_caching_ablation(
    alphas: Sequence[float] = (0.4, 0.8),
    num_clients: int = 8,
    num_keys: int = 1000,
    txns_per_client: int = 150,
    read_keys_per_txn: int = 4,
    seed: int = 59,
) -> ExperimentResult:
    """§4.3's trade: aggressive caching vs local validation.

    Read-write-hinted transactions read from the client cache (zero
    round trips per hit) but must validate remotely; the question is
    whether the saved reads beat the extra validation round plus
    stale-cache aborts — and how the answer flips with contention.
    """
    from ..milana.extensions import CachingMilanaClient
    from .cluster import Cluster

    rows = []
    for alpha in alphas:
        for mode in ("local-validation", "caching"):
            def factory(sim, network, directory, clock, client_id, lv,
                        _mode=mode):
                if _mode == "caching":
                    return CachingMilanaClient(
                        sim, network, directory, clock,
                        client_id=client_id)
                from ..milana.client import MilanaClient
                return MilanaClient(sim, network, directory, clock,
                                    client_id=client_id,
                                    local_validation=True)

            cluster = Cluster(ClusterConfig(
                num_shards=1, replicas_per_shard=3,
                num_clients=num_clients, backend="dram",
                clock_preset="ptp-sw", seed=seed,
                populate_keys=num_keys, client_factory=factory))
            sim = cluster.sim
            from ..workloads.zipf import ZipfGenerator

            def client_loop(client, index):
                rng = cluster.rng.substream(f"cache{index}")
                zipf = ZipfGenerator(rng.substream("zipf"),
                                     cluster.populated_keys, alpha)
                for i in range(txns_per_client):
                    hinted = mode == "caching"
                    txn = (client.begin(read_write_hint=True)
                           if hinted else client.begin())
                    keys = zipf.draw_distinct(read_keys_per_txn)
                    for key in keys:
                        yield client.txn_get(txn, key)
                    if rng.random() < 0.3:
                        client.put(txn, keys[0], f"w{i}")
                    yield client.commit(txn)

            procs = [sim.process(client_loop(client, index))
                     for index, client in enumerate(cluster.clients)]
            start = sim.now
            for proc in procs:
                sim.run_until_event(proc)
            elapsed = sim.now - start
            committed = sum(c.stats.committed for c in cluster.clients)
            aborted = sum(c.stats.aborted for c in cluster.clients)
            hit_rate = 0.0
            if mode == "caching":
                hits = sum(c.cache_hits for c in cluster.clients)
                misses = sum(c.cache_misses for c in cluster.clients)
                hit_rate = hits / (hits + misses) if hits + misses else 0
            decided = committed + aborted
            rows.append([
                alpha, mode,
                committed / elapsed if elapsed else 0.0,
                aborted / decided if decided else 0.0,
                hit_rate,
            ])
    return ExperimentResult(
        name="Ablation: aggressive client caching vs local validation "
             "(section 4.3 future work)",
        headers=["alpha", "mode", "txn/s", "abort rate",
                 "cache hit rate"],
        rows=rows,
        notes=("Expected: caching wins when hit rates are high and "
               "contention low (saved read round trips); under high "
               "contention stale-cache aborts and mandatory remote "
               "validation erode the gain — the trade the paper "
               "anticipates."),
    )


def run_gc_window_ablation(
    windows: Sequence[float] = (0.002, 0.01, 0.05),
    num_keys: int = 2000,
    get_percent: float = 50.0,
    duration: float = 0.08,
    warmup: float = 0.02,
    num_workers: int = 64,
    seed: int = 53,
) -> ExperimentResult:
    """Sweep the version-retention window (§3.1's tunable threshold).

    Longer windows serve older snapshots (long-running analytics reads)
    at the cost of more live data on flash — hence more GC remapping.
    """
    rows = []
    for window in windows:
        sim = Simulator()
        device = FlashDevice(sim, _table1_geometry(num_keys))
        backend = MFTLBackend(sim, device)
        result = run_kv_microbench(
            sim, backend, SeededRng(seed).substream(f"w{window}"),
            num_keys=num_keys, get_percent=get_percent,
            duration=duration, warmup=warmup, num_workers=num_workers,
            version_window=window)
        rows.append([
            window * 1e3,
            result.throughput / 1e3,
            backend.stats.records_remapped,
            backend.stats.records_discarded,
        ])
    return ExperimentResult(
        name="Ablation: GC version-retention window",
        headers=["window ms", "kreq/s", "records remapped",
                 "records discarded"],
        rows=rows,
        notes=("Expected: larger windows retain more versions, forcing "
               "GC to remap more live records per reclaimed block."),
    )
