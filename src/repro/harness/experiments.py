"""Experiment drivers: one function per table/figure in the paper (§5).

Every driver returns an :class:`ExperimentResult` whose ``render()``
produces the same rows/series the paper reports. Scale parameters default
to values that finish in seconds-to-minutes of wall clock; the paper's
full scale (millions of keys, 15-minute runs) is reachable by raising
them, but the *shapes* — who wins, by what factor, where the crossovers
fall — are what the reproduction validates (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..baselines.centiman import CentimanClient, WatermarkBoard
from ..clocks.perfect import PerfectClock
from ..flash.device import FlashDevice
from ..flash.geometry import FlashGeometry
from ..ftl.dram import DRAMBackend
from ..ftl.mftl import MFTLBackend
from ..ftl.vftl import VFTLBackend
from ..semel.client import SemelClient
from ..semel.server import StorageServer
from ..semel.sharding import Directory
from ..net.latency import FixedLatency
from ..net.network import Network
from ..net.rpc import AppError
from ..sim.core import Simulator
from ..sim.rng import SeededRng
from ..workloads.microbench import run_kv_microbench
from ..workloads.retwis import RETWIS_MIX_75_READONLY
from .cluster import ClusterConfig
from .report import format_table, series_block
from .runner import run_retwis_on_cluster

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_figure1",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
]


@dataclass
class ExperimentResult:
    """Uniform result container for tables and figures."""

    name: str
    headers: List[str]
    rows: List[List[Any]]
    #: Figure series: name -> (xs, ys); rendered alongside the table.
    series: Dict[str, Tuple[list, list]] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=self.name)]
        for series_name, (xs, ys) in self.series.items():
            parts.append(series_block(series_name, xs, ys))
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Table 1: single-SSD multi-version FTL performance (MFTL vs VFTL)
# ---------------------------------------------------------------------------

def _table1_geometry(num_keys: int) -> FlashGeometry:
    """Size the device so put-heavy mixes run at high utilization.

    The MFTL-vs-VFTL differences the paper reports are utilization
    effects: with the double reserve, VFTL's effective space is 0.81 of
    raw vs MFTL's 0.9, so at ~80 % live utilization VFTL garbage-collects
    far more per reclaimed page. ~2.2x raw headroom over the live set
    puts the 25-50 % GET rows in that regime while leaving the read-heavy
    rows CPU-bound like the paper's.
    """
    records_per_page = 8
    live_pages = max(1, num_keys // records_per_page)
    num_blocks = max(40, (live_pages * 30) // (10 * 32))
    return FlashGeometry(page_size=4096, pages_per_block=32,
                         num_blocks=num_blocks, num_channels=32)


def run_table1(
    num_keys: int = 4000,
    duration: float = 0.12,
    warmup: float = 0.04,
    num_workers: int = 128,
    get_percents: Sequence[float] = (100, 75, 50, 25),
    seed: int = 7,
) -> ExperimentResult:
    """Table 1: throughput (kreq/s) and GET/PUT latency, VFTL vs MFTL.

    A single emulated SSD per §5.1: pre-populated store, closed-loop
    workers bounded by the hardware queue depth, GC active via a
    watermark window.
    """
    cells: Dict[Tuple[str, float], Any] = {}
    for kind in ("vftl", "mftl"):
        for get_percent in get_percents:
            sim = Simulator()
            geometry = _table1_geometry(num_keys)
            device = FlashDevice(sim, geometry)
            if kind == "mftl":
                backend = MFTLBackend(sim, device)
            else:
                backend = VFTLBackend(sim, device)
            result = run_kv_microbench(
                sim, backend, SeededRng(seed).substream(f"{kind}")
                .substream(f"g{get_percent}"),
                num_keys=num_keys, get_percent=get_percent,
                duration=duration, warmup=warmup,
                num_workers=num_workers, version_window=0.005)
            cells[(kind, get_percent)] = (
                result, backend.write_amplification)

    rows = []
    for get_percent in get_percents:
        vftl, vftl_wa = cells[("vftl", get_percent)]
        mftl, mftl_wa = cells[("mftl", get_percent)]
        rows.append([
            get_percent,
            vftl.throughput / 1e3, mftl.throughput / 1e3,
            vftl.mean_get_latency * 1e6, mftl.mean_get_latency * 1e6,
            vftl.mean_put_latency * 1e6, mftl.mean_put_latency * 1e6,
            vftl_wa, mftl_wa,
        ])
    return ExperimentResult(
        name="Table 1: Single SSD Multi-version FTL Performance",
        headers=["Get%", "VFTL kreq/s", "MFTL kreq/s",
                 "VFTL get us", "MFTL get us",
                 "VFTL put us", "MFTL put us",
                 "VFTL WA", "MFTL WA"],
        rows=rows,
        notes=("Paper shape: MFTL wins throughput at >=50% GET "
               "(up to +45%), much lower GET latency (up to 7x); VFTL "
               "wins at 25% GET via lower packing delay."),
    )


# ---------------------------------------------------------------------------
# Figure 1: impact of clock skew on a shared-object update
# ---------------------------------------------------------------------------

class _OffsetClock(PerfectClock):
    """A clock with a constant offset from true time."""

    def __init__(self, sim, offset: float, name: str = "offset-clock"):
        super().__init__(sim, name=name)
        self._offset = offset

    def _raw_now(self) -> float:
        return self.sim.now + self._offset


def run_figure1(
    write_latencies: Sequence[float] = (0.2e-6, 100e-6),
    skews: Sequence[float] = (0.0, 1e-6, 10e-6, 100e-6, 1e-3),
    rounds: int = 150,
    seed: int = 3,
) -> ExperimentResult:
    """Figure 1: spurious rejections of a lagging client vs clock skew.

    Two clients alternately update one shared object through a SEMEL
    server; the lagging client's writes are rejected (stale timestamp)
    until its clock passes the leader's last stamp — wasted time ~ max(0,
    epsilon - t_w) per update, so skews above the write latency hurt and
    skews below it are free.
    """
    rows = []
    series: Dict[str, Tuple[list, list]] = {}
    for t_w in write_latencies:
        xs, ys = [], []
        for epsilon in skews:
            sim = Simulator()
            rng = SeededRng(seed)
            network = Network(sim, rng, latency=FixedLatency(5e-6))
            directory = Directory({"shard0": ["srv"]})
            StorageServer(sim, network, directory, "srv", "shard0",
                          DRAMBackend(sim, write_latency=t_w, op_cpu=0.0))
            leader = SemelClient(
                sim, network, directory,
                _OffsetClock(sim, +epsilon / 2), client_id=1)
            laggard = SemelClient(
                sim, network, directory,
                _OffsetClock(sim, -epsilon / 2), client_id=2)
            rejections = 0
            attempts = 0

            def duel():
                nonlocal rejections, attempts
                for _ in range(rounds):
                    yield leader.put("shared", "from-leader")
                    while True:
                        attempts += 1
                        try:
                            yield laggard.put("shared", "from-laggard")
                            break
                        except AppError:
                            rejections += 1
                            yield sim.timeout(max(t_w, 1e-6))

            sim.run_until_event(sim.process(duel()))
            reject_rate = rejections / attempts if attempts else 0.0
            rows.append([t_w * 1e6, epsilon * 1e6, reject_rate])
            xs.append(epsilon * 1e6)
            ys.append(reject_rate)
        series[f"t_w={t_w * 1e6:.1f}us"] = (xs, ys)
    return ExperimentResult(
        name="Figure 1: Impact of Clock Skew",
        headers=["t_w (us)", "skew eps (us)", "reject rate"],
        rows=rows,
        series=series,
        notes=("Paper shape: rejections appear once eps >> t_w; fast "
               "(DRAM-class) devices suffer at far smaller skews than "
               "flash."),
    )


# ---------------------------------------------------------------------------
# Figure 6: abort rate vs number of clients, single- vs multi-version FTL
# ---------------------------------------------------------------------------

def run_figure6(
    client_counts: Sequence[int] = (2, 4, 8, 12, 16),
    alphas: Sequence[float] = (0.5, 0.75, 0.95),
    num_keys: int = 400,
    duration: float = 0.4,
    warmup: float = 0.1,
    seed: int = 11,
) -> ExperimentResult:
    """Figure 6: multi-versioning cuts abort rates under contention.

    Single storage node, no clock skew (all clients share the one VM's
    clock in the paper), Retwis Table-2 mix, single- vs multi-version
    FTL.
    """
    rows = []
    series: Dict[str, Tuple[list, list]] = {}
    for backend in ("sftl", "mftl"):
        for alpha in alphas:
            xs, ys = [], []
            for num_clients in client_counts:
                config = ClusterConfig(
                    num_shards=1, replicas_per_shard=1,
                    num_clients=num_clients, backend=backend,
                    clock_preset="perfect", seed=seed,
                    populate_keys=num_keys,
                    network_base_latency=20e-6)
                result = run_retwis_on_cluster(
                    config, alpha=alpha, duration=duration, warmup=warmup)
                rows.append([backend, alpha, num_clients,
                             result.abort_rate])
                xs.append(num_clients)
                ys.append(result.abort_rate)
            series[f"{backend} a={alpha}"] = (xs, ys)
    return ExperimentResult(
        name="Figure 6: Transaction abort rate vs number of clients",
        headers=["backend", "alpha", "clients", "abort rate"],
        rows=rows,
        series=series,
        notes=("Paper shape: abort rate grows with clients and "
               "contention; the multi-version FTL (mftl) stays well below "
               "the single-version FTL (sftl) because tardy read-only "
               "transactions read a snapshot instead of aborting."),
    )


# ---------------------------------------------------------------------------
# Figure 7: PTP vs NTP abort rates across storage backends
# ---------------------------------------------------------------------------

def run_figure7(
    alphas: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
    clock_presets: Sequence[str] = ("ptp-sw", "ntp"),
    backends: Sequence[str] = ("dram", "vftl", "mftl"),
    num_clients: int = 20,
    num_keys: int = 1000,
    duration: float = 0.4,
    warmup: float = 0.1,
    seed: int = 13,
) -> ExperimentResult:
    """Figure 7: MILANA abort rates, PTP vs NTP x {DRAM, VFTL, MFTL}.

    1 primary + 2 backups, 20 Retwis instances retrying aborted
    transactions immediately with the same keys (§5.2).
    """
    rows = []
    series: Dict[str, Tuple[list, list]] = {}
    for clock_preset in clock_presets:
        for backend in backends:
            xs, ys = [], []
            for alpha in alphas:
                config = ClusterConfig(
                    num_shards=1, replicas_per_shard=3,
                    num_clients=num_clients, backend=backend,
                    clock_preset=clock_preset, seed=seed,
                    populate_keys=num_keys)
                result = run_retwis_on_cluster(
                    config, alpha=alpha, duration=duration, warmup=warmup)
                rows.append([clock_preset, backend, alpha,
                             result.abort_rate])
                xs.append(alpha)
                ys.append(result.abort_rate)
            series[f"{clock_preset}/{backend}"] = (xs, ys)
    return ExperimentResult(
        name="Figure 7: PTP vs NTP MILANA transaction abort rates",
        headers=["clock", "backend", "alpha", "abort rate"],
        rows=rows,
        series=series,
        notes=("Paper shape: PTP below NTP everywhere (up to 43% lower "
               "at high contention); under NTP the DRAM backend is worst "
               "(fastest writes -> most skew-exposed), VFTL slightly "
               "above MFTL."),
    )


# ---------------------------------------------------------------------------
# Figure 8: latency vs throughput with/without local validation
# ---------------------------------------------------------------------------

def run_figure8(
    client_counts: Sequence[int] = (4, 8, 16, 28, 40),
    backends: Sequence[str] = ("dram", "vftl", "mftl"),
    local_validation: Sequence[bool] = (True, False),
    alpha: float = 0.6,
    num_keys: int = 3000,
    duration: float = 0.4,
    warmup: float = 0.1,
    seed: int = 17,
) -> ExperimentResult:
    """Figure 8: Retwis latency vs throughput, 3 shards x 3 replicas,
    75 % read-only mix, local validation on/off."""
    rows = []
    series: Dict[str, Tuple[list, list]] = {}
    for backend in backends:
        for lv in local_validation:
            xs, ys = [], []
            for num_clients in client_counts:
                config = ClusterConfig(
                    num_shards=3, replicas_per_shard=3,
                    num_clients=num_clients, backend=backend,
                    clock_preset="ptp-sw", seed=seed,
                    populate_keys=num_keys, local_validation=lv)
                result = run_retwis_on_cluster(
                    config, alpha=alpha, duration=duration, warmup=warmup,
                    mix=RETWIS_MIX_75_READONLY)
                rows.append([
                    backend, "LV" if lv else "noLV", num_clients,
                    result.throughput,
                    result.mean_latency * 1e3,
                    result.metrics.network_bandwidth_used / 1e6,
                ])
                xs.append(result.throughput)
                ys.append(result.mean_latency * 1e3)
            series[f"{backend}/{'LV' if lv else 'noLV'}"] = (xs, ys)
    return ExperimentResult(
        name="Figure 8: Retwis transaction latency vs throughput",
        headers=["backend", "mode", "clients", "txn/s", "latency ms",
                 "wire MB/s"],
        rows=rows,
        series=series,
        notes=("Paper shape: local validation gives up to 55% higher "
               "throughput and 35% lower latency; MFTL beats VFTL by "
               "~15%/10%; VFTL+LV beats MFTL without LV."),
    )


# ---------------------------------------------------------------------------
# Figure 9: MILANA vs Centiman local validation
# ---------------------------------------------------------------------------

def run_figure9(
    alphas: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
    num_clients: int = 20,
    num_keys: int = 10000,
    duration: float = 0.3,
    warmup: float = 0.05,
    dissemination_every: int = 15,
    seed: int = 19,
) -> ExperimentResult:
    """Figure 9: throughput vs contention, MILANA vs Centiman-style
    watermark local validation (3 shards, no replication, MFTL)."""
    rows = []
    series: Dict[str, Tuple[list, list]] = {}
    for system in ("milana", "centiman"):
        xs, ys = [], []
        for alpha in alphas:
            board = WatermarkBoard()

            def factory(sim, network, directory, clock, client_id, lv,
                        _board=board):
                if system == "centiman":
                    return CentimanClient(
                        sim, network, directory, clock,
                        client_id=client_id,
                        watermark_board=_board,
                        dissemination_every=dissemination_every)
                from ..milana.client import MilanaClient
                return MilanaClient(sim, network, directory, clock,
                                    client_id=client_id,
                                    local_validation=lv)

            config = ClusterConfig(
                num_shards=3, replicas_per_shard=1,
                num_clients=num_clients, backend="mftl",
                clock_preset="ptp-sw", seed=seed,
                populate_keys=num_keys, client_factory=factory)
            result = run_retwis_on_cluster(
                config, alpha=alpha, duration=duration, warmup=warmup,
                mix=RETWIS_MIX_75_READONLY)
            lv_fraction = 1.0
            if system == "centiman":
                attempts = sum(
                    c.local_validation_attempts
                    for c in result.cluster.clients)
                successes = sum(
                    c.local_validation_successes
                    for c in result.cluster.clients)
                lv_fraction = successes / attempts if attempts else 0.0
            rows.append([system, alpha, result.throughput,
                         lv_fraction, result.abort_rate])
            xs.append(alpha)
            ys.append(result.throughput)
        series[system] = (xs, ys)
    return ExperimentResult(
        name="Figure 9: Comparison of Local Validation Techniques",
        headers=["system", "alpha", "txn/s", "local-val fraction",
                 "abort rate"],
        rows=rows,
        series=series,
        notes=("Paper shape: equal throughput at alpha=0.4; Centiman's "
               "locally-validated fraction collapses (89% -> 25%) as "
               "contention rises, costing ~20% throughput at alpha=0.8; "
               "MILANA locally validates all read-only transactions."),
    )
