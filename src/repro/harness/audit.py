"""Post-heal consistency audits: the nemesis loop's closing argument.

A fault injection run is only evidence if the system's guarantees are
machine-checked afterwards. After the workload finishes and every fault
is healed, the audit asserts:

* **serializability** — the committed history every client recorded
  (``MilanaClient(record_history=True)``) passes the MVSG check in
  :mod:`repro.verify`;
* **no lost committed writes** — every write a client was told committed
  is still observable at its shard primary (the version itself, or a
  newer one when watermark GC legitimately trimmed it);
* **no stuck PREPARED** — no primary's transaction table holds an
  in-doubt record after heal plus lease expiry: CTP or reliable decide
  delivery must have terminated every transaction;
* **replica convergence** — after the :func:`sync_replicas` repair pass
  (primaries push decided records to backups, standing in for the
  anti-entropy a production system would run), every live replica agrees
  on the newest version of every audited key.

All checks except the repair pass are pure reads of simulator state —
they send no messages and draw no randomness, so auditing a run does not
perturb it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..milana.transaction import ABORTED, PREPARED
from ..net.rpc import RpcError
from ..sim.process import Process
from ..verify import TxnEntry, check_serializability
from ..wire import MilanaReplicateTxn, TxnRecordWire
from .cluster import Cluster

__all__ = [
    "AuditReport",
    "collect_history",
    "sync_replicas",
    "run_audit",
]


@dataclass
class AuditReport:
    """Outcome of one post-heal consistency audit."""

    serializable: bool
    witness: Optional[tuple]
    committed_txns: int
    checked_writes: int
    #: (txn_id, key, version) writes acked to a client but unobservable
    #: at the shard primary.
    lost_writes: List[Tuple[str, str, tuple]] = field(default_factory=list)
    #: (server, txn_id) records still PREPARED on a primary.
    stuck_prepared: List[Tuple[str, str]] = field(default_factory=list)
    #: (server, txn_id) transactions a client was told COMMITTED whose
    #: record a participant primary now holds as ABORTED — the classic
    #: amnesia-crash atomicity violation (recovery mis-resolved a
    #: transaction whose commit was already acknowledged).
    acked_aborted: List[Tuple[str, str]] = field(default_factory=list)
    #: (replica, key, detail) replicas disagreeing on a key's newest
    #: version after the repair pass.
    divergent: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (self.serializable and not self.lost_writes
                and not self.stuck_prepared and not self.acked_aborted
                and not self.divergent)

    def summary(self) -> str:
        lines = [
            f"audit: {'PASS' if self.passed else 'FAIL'}",
            f"  committed txns      {self.committed_txns}",
            f"  writes checked      {self.checked_writes}",
            f"  serializable        {self.serializable}"
            + (f" (witness: {self.witness})" if self.witness else ""),
            f"  lost writes         {len(self.lost_writes)}",
            f"  stuck PREPARED      {len(self.stuck_prepared)}",
            f"  acked-but-aborted   {len(self.acked_aborted)}",
            f"  divergent replicas  {len(self.divergent)}",
        ]
        for txn_id, key, version in self.lost_writes[:5]:
            lines.append(f"    lost: {txn_id} {key!r} {version}")
        for server, txn_id in self.stuck_prepared[:5]:
            lines.append(f"    stuck: {txn_id} on {server}")
        for server, txn_id in self.acked_aborted[:5]:
            lines.append(f"    acked-aborted: {txn_id} on {server}")
        for replica, key, detail in self.divergent[:5]:
            lines.append(f"    diverged: {key!r} on {replica}: {detail}")
        return "\n".join(lines)


def collect_history(cluster: Cluster) -> List[TxnEntry]:
    """All committed transactions recorded by the cluster's clients,
    in a deterministic order."""
    history: List[TxnEntry] = []
    for client in cluster.clients:
        history.extend(client.history)
    history.sort(key=lambda entry: (entry.ts, entry.txn_id))
    return history


def sync_replicas(cluster: Cluster, timeout: float = 10e-3) -> Process:
    """Repair pass: every primary pushes its decided transaction records
    to its backups (acked), standing in for anti-entropy. Fires with the
    number of records pushed; unreachable backups are skipped."""
    return cluster.sim.process(_sync(cluster, timeout))


def _sync(cluster: Cluster, timeout: float):
    pushed = 0
    for shard_name in sorted(cluster.directory.shard_names):
        server = cluster.primary_server(shard_name)
        for txn_id in sorted(server.txn_table):
            record = server.txn_table[txn_id]
            if record.status == PREPARED:
                continue
            request = MilanaReplicateTxn(
                record=TxnRecordWire.from_record(record))
            for backup in server.backups:
                try:
                    yield server.node.call(
                        backup, "milana.replicate_txn", request,
                        timeout=timeout)
                    pushed += 1
                except RpcError:
                    continue
    return pushed


def _observable(versions, version) -> bool:
    """A committed write is observable if its version is retained or a
    newer version exists (watermark GC may trim superseded ones)."""
    return bool(versions) and versions[0] >= version


def run_audit(cluster: Cluster) -> AuditReport:
    """Run every consistency check against the cluster's current state.

    Call after healing all faults, letting in-flight work drain, and
    (for the convergence check to be meaningful) running
    :func:`sync_replicas`.
    """
    history = collect_history(cluster)
    serializable, witness = check_serializability(history)

    lost: List[Tuple[str, str, tuple]] = []
    checked = 0
    audited_keys = set()
    for entry in history:
        for key, version in sorted(entry.writes.items()):
            checked += 1
            audited_keys.add(key)
            shard = cluster.directory.shard_of(key)
            primary = cluster.servers[shard.primary]
            if not _observable(primary.backend.versions_of(key), version):
                lost.append((entry.txn_id, key, tuple(version)))

    stuck: List[Tuple[str, str]] = []
    for shard_name in sorted(cluster.directory.shard_names):
        server = cluster.primary_server(shard_name)
        for txn_id in sorted(server.txn_table):
            if server.txn_table[txn_id].status == PREPARED:
                stuck.append((server.name, txn_id))

    acked_aborted: List[Tuple[str, str]] = []
    for entry in history:
        shards = sorted({cluster.directory.shard_of(key).name
                         for key in entry.writes})
        for shard_name in shards:
            server = cluster.primary_server(shard_name)
            record = server.txn_table.get(entry.txn_id)
            if record is not None and record.status == ABORTED:
                acked_aborted.append((server.name, entry.txn_id))

    divergent: List[Tuple[str, str, str]] = []
    for key in sorted(audited_keys):
        shard = cluster.directory.shard_of(key)
        newest = {}
        for replica in shard.replicas:
            if cluster.network.is_crashed(replica):
                continue
            versions = cluster.servers[replica].backend.versions_of(key)
            newest[replica] = versions[0] if versions else None
        values = set(newest.values())
        if len(values) > 1:
            reference = max(
                (v for v in values if v is not None), default=None)
            for replica, version in sorted(newest.items()):
                if version != reference:
                    divergent.append((
                        replica, key,
                        f"newest {version} != {reference}"))

    committed = sum(1 for entry in history)
    return AuditReport(
        serializable=serializable,
        witness=witness,
        committed_txns=committed,
        checked_writes=checked,
        lost_writes=lost,
        stuck_prepared=stuck,
        acked_aborted=acked_aborted,
        divergent=divergent,
    )
