"""Named nemesis scenarios: fault plan + workload + heal + audit.

One :func:`run_nemesis` call is a complete robustness experiment:

1. stand up a cluster whose clients record committed histories
   (``MilanaClient(record_history=True)``) and whose CTP daemon is on;
2. start the scenario's :class:`~repro.harness.chaos.NemesisPlan` and a
   Retwis or YCSB workload side by side;
3. after the workload window, heal **everything** — link faults, crashed
   nodes, clock anomalies — and let the system settle past the lease
   duration and CTP timeout so termination has a fair chance to finish;
4. run the :func:`~repro.harness.audit.sync_replicas` repair pass and
   the full post-heal audit (:func:`~repro.harness.audit.run_audit`).

The result bundles the audit verdict with the run's window metrics, the
fault-event timeline, and the link-fault counters, so a report can show
*what was injected* next to *what the system guaranteed anyway*.

Scenarios are registered by name in :data:`SCENARIOS` (the CLI's
``repro nemesis --scenario`` choices). Each builder takes
``(cluster, rng, start, duration)`` and returns an unstarted plan.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..durability import DurabilityConfig
from ..milana.client import MilanaClient
from ..milana.leases import DEFAULT_LEASE_DURATION
from ..milana.server import DEFAULT_CTP_TIMEOUT
from ..net.faults import FaultStats
from ..sim.rng import SeededRng
from ..workloads.retwis import RetwisInstance
from ..workloads.ycsb import YcsbInstance
from .audit import AuditReport, run_audit, sync_replicas
from .chaos import (
    NemesisPlan,
    clock_storm,
    isolate_master,
    loss_storm,
    majority_minority_split,
    partition_primary_from_backups,
)
from .cluster import Cluster, ClusterConfig
from .metrics import WindowMetrics, snapshot, window_metrics

__all__ = [
    "SCENARIOS",
    "NemesisRunResult",
    "nemesis_config",
    "run_nemesis",
]

ScenarioBuilder = Callable[[Cluster, SeededRng, float, float], NemesisPlan]


def _partition(cluster, rng, start, duration):
    return partition_primary_from_backups(
        cluster, "shard0", start, duration)


def _asymmetric_partition(cluster, rng, start, duration):
    return partition_primary_from_backups(
        cluster, "shard0", start, duration, asymmetric=True)


def _majority_minority(cluster, rng, start, duration):
    return majority_minority_split(cluster, start, duration)


def _isolate_master(cluster, rng, start, duration):
    return isolate_master(cluster, start, duration)


def _clock_storm(cluster, rng, start, duration):
    return clock_storm(cluster, rng, start, duration)


def _loss_storm(cluster, rng, start, duration):
    return loss_storm(cluster, start, duration)


def _combo(cluster, rng, start, duration):
    """Partition + message loss + clock storm, overlapping."""
    plan = NemesisPlan(cluster, name="combo")
    partition_primary_from_backups(
        cluster, "shard0", start, duration, asymmetric=True, plan=plan)
    loss_storm(cluster, start + duration * 0.25, duration * 0.5,
               probability=0.02, plan=plan)
    clock_storm(cluster, rng, start, duration, plan=plan)
    return plan


def _crash_restart(cluster, rng, start, duration):
    """Amnesia-crash shard0's primary mid-workload (prepares will be in
    flight), restart it later in the window: WAL replay + Algorithm 2
    must reconstruct every acked transaction."""
    primary = cluster.directory.shard("shard0").primary
    plan = NemesisPlan(cluster, name="crash-restart")
    plan.crash(start, primary)
    plan.restart(start + duration * 0.5, primary)
    return plan


def _coordinator_crash(cluster, rng, start, duration):
    """Silence a coordinator client mid-run: transactions it prepared
    but never decided go in-doubt, and CTP must terminate them."""
    victim = "milana-client-1"
    plan = NemesisPlan(cluster, name="coordinator-crash")
    plan.at(start, f"crash coordinator {victim}",
            lambda: cluster.network.crash(victim))
    plan.at(start + duration, f"recover coordinator {victim}",
            lambda: cluster.network.recover(victim))
    return plan


def _rolling_restart(cluster, rng, start, duration):
    """Crash-and-restart every backup, one per shard at a time,
    interleaved across shards so no shard ever loses its majority."""
    plan = NemesisPlan(cluster, name="rolling-restart")
    per_shard = []
    for shard_name in sorted(cluster.directory.shard_names):
        shard = cluster.directory.shard(shard_name)
        per_shard.append([replica for replica in shard.replicas
                          if replica != shard.primary])
    order = [node for wave in zip(*per_shard) for node in wave]
    step = duration / max(1, len(order))
    for index, node in enumerate(order):
        at = start + index * step
        plan.crash(at, node)
        plan.restart(at + step * 0.5, node)
    return plan


def _crash_during_recovery(cluster, rng, start, duration):
    """Double fault: the restarted primary is crashed again while its
    recovery (replay / merge / lease wait) is still running, then
    restarted once more."""
    primary = cluster.directory.shard("shard0").primary
    plan = NemesisPlan(cluster, name="crash-during-recovery")
    plan.crash(start, primary)
    plan.restart(start + duration * 0.2, primary)
    # Recovery includes a full lease wait, so this lands mid-recovery.
    plan.crash(start + duration * 0.4, primary)
    plan.restart(start + duration * 0.6, primary)
    return plan


def _crash_partition(cluster, rng, start, duration):
    """An amnesia crash in shard0 overlapping a partition in shard1:
    recovery must proceed while the other shard is degraded (the CTP
    cross-shard queries see both failure modes at once)."""
    primary0 = cluster.directory.shard("shard0").primary
    plan = NemesisPlan(cluster, name="crash-partition")
    plan.crash(start, primary0)
    partition_primary_from_backups(
        cluster, "shard1", start, duration * 0.7, plan=plan)
    plan.restart(start + duration * 0.5, primary0)
    return plan


#: Scenario name -> plan builder. Keys are the CLI's choices.
SCENARIOS: Dict[str, ScenarioBuilder] = {
    "partition": _partition,
    "asymmetric-partition": _asymmetric_partition,
    "majority-minority": _majority_minority,
    "isolate-master": _isolate_master,
    "clock-storm": _clock_storm,
    "loss-storm": _loss_storm,
    "combo": _combo,
    "crash-restart": _crash_restart,
    "coordinator-crash": _coordinator_crash,
    "rolling-restart": _rolling_restart,
    "crash-during-recovery": _crash_during_recovery,
    "crash-partition": _crash_partition,
}


@dataclass
class NemesisRunResult:
    """One scenario run: what was injected, what survived, what held."""

    scenario: str
    workload: str
    metrics: WindowMetrics
    audit: AuditReport
    cluster: Cluster
    plan: NemesisPlan
    #: (time, description) of every fault event that fired.
    timeline: List[Tuple[float, str]]
    fault_stats: Optional[FaultStats]
    records_synced: int

    @property
    def passed(self) -> bool:
        return self.audit.passed

    def summary(self) -> str:
        lines = [
            f"nemesis scenario: {self.scenario} ({self.workload})",
            "fault timeline:",
        ]
        for at, label in self.timeline:
            lines.append(f"  {at * 1e3:9.3f} ms  {label}")
        if self.fault_stats is not None:
            stats = self.fault_stats
            lines.append(
                f"link faults: blocked={stats.messages_blocked} "
                f"lost={stats.messages_lost} "
                f"delayed={stats.messages_delayed}")
        metrics = self.metrics
        lines.append(
            f"workload: committed={metrics.committed} "
            f"aborted={metrics.aborted} "
            f"abort_rate={metrics.abort_rate:.3f} "
            f"throughput={metrics.throughput:.0f} txn/s")
        lines.append(f"repair: {self.records_synced} records synced "
                     "to backups")
        lines.append(self.audit.summary())
        return "\n".join(lines)


def _history_client_factory(sim, network, directory, clock, client_id,
                            local_validation):
    return MilanaClient(sim, network, directory, clock,
                        client_id=client_id,
                        local_validation=local_validation,
                        record_history=True)


def nemesis_config(**overrides) -> ClusterConfig:
    """The default nemesis deployment: 2 shards x 3 replicas, 4 clients,
    DRAM backend, CTP daemon on, history-recording clients, and durable
    per-server WALs (so amnesia-crash scenarios are survivable)."""
    defaults = dict(
        num_shards=2,
        replicas_per_shard=3,
        num_clients=4,
        backend="dram",
        clock_preset="perfect",
        seed=42,
        populate_keys=400,
        ctp_timeout=DEFAULT_CTP_TIMEOUT,
        client_factory=_history_client_factory,
        durability=DurabilityConfig(),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _heal_everything(cluster: Cluster, plan: NemesisPlan) -> List:
    """Clear every outstanding fault, whatever the plan left behind.

    Returns the restart Processes it spawned for still-crashed servers
    (plus any the plan left in flight): the caller must wait these out
    before auditing — an amnesia-crashed server is not healed until its
    WAL replay and rejoin protocol actually finish.
    """
    sim = cluster.sim
    faults = cluster.network.faults
    if faults is not None and faults.active:
        faults.heal()
        plan.timeline.append((sim.now, "post-run heal: link faults"))
    restarts = [proc for proc in plan.restarts if proc.is_alive]
    restarts.extend(cluster.pending_restarts())
    for name in sorted(cluster.servers):
        state = cluster.server_state(name)
        if state == "paused":
            cluster.unpause_server(name)
            plan.timeline.append(
                (sim.now, f"post-run heal: unpause {name}"))
        elif state == "crashed":
            restarts.append(cluster.restart_server(name))
            plan.timeline.append(
                (sim.now, f"post-run heal: restart {name}"))
        elif state == "up" and cluster.network.is_crashed(name):
            # Link-cut outside the cluster's bookkeeping (a plan acting
            # on the network directly): reconnect it.
            cluster.network.recover(name)
            plan.timeline.append(
                (sim.now, f"post-run heal: reconnect {name}"))
    for i in range(cluster.config.num_clients):
        client_node = f"milana-client-{i + 1}"
        if cluster.network.is_crashed(client_node):
            cluster.network.recover(client_node)
            plan.timeline.append(
                (sim.now, f"post-run heal: reconnect {client_node}"))
        clock = cluster.clock_ensemble.clock_for(f"client-{i}")
        if getattr(clock, "faulted", False):
            clock.clear()
            plan.timeline.append(
                (sim.now, f"post-run heal: clear clock client-{i}"))
    return restarts


def run_nemesis(
    scenario: str,
    config: Optional[ClusterConfig] = None,
    workload: str = "retwis",
    duration: float = 0.3,
    fault_start: float = 0.05,
    fault_duration: float = 0.15,
    alpha: float = 0.8,
    settle: Optional[float] = None,
    watermark_interval: Optional[float] = 0.05,
) -> NemesisRunResult:
    """Run one named scenario end to end and audit the aftermath."""
    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from "
            f"{sorted(SCENARIOS)}")
    if config is None:
        config = nemesis_config()
    else:
        if config.client_factory is None:
            config = replace(config,
                             client_factory=_history_client_factory)
        if config.ctp_timeout is None:
            config = replace(config, ctp_timeout=DEFAULT_CTP_TIMEOUT)
    if settle is None:
        # Past the lease horizon and several CTP rounds, so nothing can
        # legitimately still be in doubt when the audit runs.
        settle = DEFAULT_LEASE_DURATION + 3 * (config.ctp_timeout
                                               or DEFAULT_CTP_TIMEOUT)

    cluster = Cluster(config)
    sim = cluster.sim
    base = sim.now

    if workload == "retwis":
        instances = [
            RetwisInstance(
                sim, client, cluster.populated_keys,
                cluster.rng.substream(f"retwis-{client.client_id}"),
                alpha=alpha)
            for client in cluster.clients
        ]
    elif workload == "ycsb":
        instances = [
            YcsbInstance(
                sim, client, cluster.populated_keys,
                cluster.rng.substream(f"ycsb-{client.client_id}"),
                alpha=alpha)
            for client in cluster.clients
        ]
    else:
        raise ValueError(f"unknown workload {workload!r}")
    if watermark_interval:
        for client in cluster.clients:
            client.start_watermark_daemon(watermark_interval)

    plan = SCENARIOS[scenario](
        cluster, cluster.rng.substream("nemesis"),
        base + fault_start, fault_duration)
    plan.start()

    before = snapshot(sim.now, cluster.clients, cluster.network)
    procs = [instance.run(duration) for instance in instances]
    sim.run(until=base + max(duration, plan.end_time + 1e-6))
    restarts = _heal_everything(cluster, plan)
    for proc in procs:
        sim.run_until_event(proc)
    after = snapshot(sim.now, cluster.clients, cluster.network)

    # Every restart protocol must finish before the audit: a node that
    # never completed WAL replay + rejoin is a dead replica, not a
    # healed one. (All faults are gone, so these cannot be interrupted.)
    for proc in restarts:
        if proc.is_alive:
            sim.run_until_event(proc)

    sim.run(until=sim.now + settle)
    records_synced = sim.run_until_event(sync_replicas(cluster))
    audit = run_audit(cluster)

    faults = cluster.network.faults
    return NemesisRunResult(
        scenario=scenario,
        workload=workload,
        metrics=window_metrics(before, after),
        audit=audit,
        cluster=cluster,
        plan=plan,
        timeline=list(plan.timeline),
        fault_stats=faults.stats if faults is not None else None,
        records_synced=records_synced,
    )
