"""Generic Retwis-over-cluster experiment runner.

Most figures share a skeleton: build a cluster, hang one Retwis instance
off each client, run warmup, measure a window, aggregate. This module is
that skeleton; :mod:`repro.harness.experiments` parameterizes it per
table/figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..workloads.retwis import RetwisInstance
from .cluster import Cluster, ClusterConfig
from .metrics import WindowMetrics, snapshot, window_metrics

__all__ = ["RetwisRunResult", "run_retwis_on_cluster"]


@dataclass
class RetwisRunResult:
    """Everything a figure needs from one (configuration, α) run."""

    metrics: WindowMetrics
    cluster: Cluster
    instances: List[RetwisInstance]

    @property
    def abort_rate(self) -> float:
        return self.metrics.abort_rate

    @property
    def throughput(self) -> float:
        return self.metrics.throughput

    @property
    def mean_latency(self) -> float:
        return self.metrics.mean_latency


def run_retwis_on_cluster(
    config: ClusterConfig,
    alpha: float,
    duration: float,
    warmup: float = 0.1,
    mix: Optional[list] = None,
    max_retries: int = 10,
    watermark_interval: Optional[float] = 0.05,
) -> RetwisRunResult:
    """Stand up a cluster, run Retwis on every client, measure a window."""
    cluster = Cluster(config)
    sim = cluster.sim
    instances = [
        RetwisInstance(
            sim, client, cluster.populated_keys,
            cluster.rng.substream(f"retwis-{client.client_id}"),
            alpha=alpha, max_retries=max_retries, mix=mix)
        for client in cluster.clients
    ]
    if watermark_interval:
        for client in cluster.clients:
            client.start_watermark_daemon(watermark_interval)
    deadline = sim.now + warmup + duration
    procs = [instance.run(warmup + duration) for instance in instances]
    sim.run(until=sim.now + warmup)
    before = snapshot(sim.now, cluster.clients, cluster.network)
    sim.run(until=deadline)
    after = snapshot(sim.now, cluster.clients, cluster.network)
    # Let in-flight transactions drain so no process errors linger.
    for proc in procs:
        sim.run_until_event(proc)
    return RetwisRunResult(
        metrics=window_metrics(before, after),
        cluster=cluster,
        instances=instances,
    )
