"""Metric collection for experiment runs.

Experiments measure over a window that excludes warmup: take a
:class:`StatsSnapshot` of all clients when the measurement starts, run,
snapshot again, and diff. All rates are per second of **simulated** time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..histogram import LatencyHistogram
from ..milana.client import MilanaClient
from ..net.network import Network

__all__ = [
    "StatsSnapshot",
    "WindowMetrics",
    "snapshot",
    "window_metrics",
    "merged_latency_histogram",
]


def merged_latency_histogram(clients) -> LatencyHistogram:
    """Fold every client's transaction-latency histogram into one."""
    merged = LatencyHistogram()
    for client in clients:
        merged.merge(client.stats.latency_histogram)
    return merged


@dataclass(frozen=True)
class StatsSnapshot:
    """Point-in-time sum of client counters."""

    time: float
    started: int
    committed: int
    aborted: int
    latency_total: float
    latency_committed_total: float
    local_validations: int
    remote_validations: int
    network_bytes: int = 0
    messages_sent: int = 0


@dataclass(frozen=True)
class WindowMetrics:
    """Differences between two snapshots."""

    duration: float
    committed: int
    aborted: int
    mean_latency: float
    mean_commit_latency: float
    local_validations: int
    remote_validations: int
    network_bytes: int = 0
    messages_sent: int = 0

    @property
    def decided(self) -> int:
        return self.committed + self.aborted

    @property
    def abort_rate(self) -> float:
        return self.aborted / self.decided if self.decided else 0.0

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        return self.committed / self.duration if self.duration else 0.0

    @property
    def network_bandwidth_used(self) -> float:
        """Wire bytes per simulated second over the window."""
        return self.network_bytes / self.duration if self.duration else 0.0

    @property
    def bytes_per_commit(self) -> float:
        return self.network_bytes / self.committed if self.committed \
            else 0.0


def snapshot(sim_now: float,
             clients: Sequence[MilanaClient],
             network: Optional[Network] = None) -> StatsSnapshot:
    """Capture the aggregate client counters right now.

    Passing the cluster's :class:`Network` also records the cumulative
    wire traffic (bytes and message count) so window diffs can report
    bandwidth usage.
    """
    return StatsSnapshot(
        time=sim_now,
        started=sum(c.stats.started for c in clients),
        committed=sum(c.stats.committed for c in clients),
        aborted=sum(c.stats.aborted for c in clients),
        latency_total=sum(c.stats.latency_total for c in clients),
        latency_committed_total=sum(
            c.stats.latency_committed_total for c in clients),
        local_validations=sum(c.stats.local_validations for c in clients),
        remote_validations=sum(
            c.stats.remote_validations for c in clients),
        network_bytes=network.stats.total_bytes if network else 0,
        messages_sent=network.stats.messages_sent if network else 0,
    )


def window_metrics(before: StatsSnapshot,
                   after: StatsSnapshot) -> WindowMetrics:
    """Metrics over the window between two snapshots."""
    committed = after.committed - before.committed
    aborted = after.aborted - before.aborted
    decided = committed + aborted
    latency = after.latency_total - before.latency_total
    commit_latency = (after.latency_committed_total
                      - before.latency_committed_total)
    return WindowMetrics(
        duration=after.time - before.time,
        committed=committed,
        aborted=aborted,
        mean_latency=latency / decided if decided else 0.0,
        mean_commit_latency=commit_latency / committed if committed else 0.0,
        local_validations=(after.local_validations
                           - before.local_validations),
        remote_validations=(after.remote_validations
                            - before.remote_validations),
        network_bytes=after.network_bytes - before.network_bytes,
        messages_sent=after.messages_sent - before.messages_sent,
    )
