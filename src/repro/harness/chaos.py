"""Scripted and randomized failure injection.

Recovery code that is only exercised by hand-built scenarios rots; a
chaos schedule keeps it honest. Two tools:

* :class:`FailurePlan` — a deterministic script of (time, action, node)
  events: ``crash`` / ``recover`` at exact simulated instants, for
  reproducible failure scenarios in tests and examples.
* :class:`ChaosMonkey` — randomized rolling failures: every interval it
  crashes a random *backup* (never reducing any shard below its majority)
  and revives it after ``downtime``. Primaries are excluded by default
  because automatic primary failover is the :class:`~repro.semel.master.
  Master`'s job — enable ``include_primaries`` when one is running.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..sim.process import Process
from ..sim.rng import SeededRng
from .cluster import Cluster

__all__ = ["FailurePlan", "ChaosMonkey"]


class FailurePlan:
    """A deterministic script of crash/recover events."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._events: List[Tuple[float, str, str]] = []
        self.executed: List[Tuple[float, str, str]] = []

    def crash(self, at: float, node: str) -> "FailurePlan":
        self._events.append((at, "crash", node))
        return self

    def recover(self, at: float, node: str) -> "FailurePlan":
        self._events.append((at, "recover", node))
        return self

    def start(self) -> Process:
        """Begin executing the schedule; returns the driver process."""
        return self.cluster.sim.process(self._run())

    def _run(self):
        sim = self.cluster.sim
        for at, action, node in sorted(self._events):
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            if action == "crash":
                self.cluster.fail_server(node)
            else:
                self.cluster.recover_server(node)
            self.executed.append((sim.now, action, node))


class ChaosMonkey:
    """Randomized rolling backup failures that never break quorums."""

    def __init__(
        self,
        cluster: Cluster,
        rng: SeededRng,
        interval: float = 50e-3,
        downtime: float = 30e-3,
        include_primaries: bool = False,
    ) -> None:
        if downtime >= interval:
            raise ValueError(
                f"downtime {downtime} must be < interval {interval} so "
                "failures do not overlap unboundedly")
        self.cluster = cluster
        self.rng = rng
        self.interval = interval
        self.downtime = downtime
        self.include_primaries = include_primaries
        self.kills: List[Tuple[float, str]] = []
        self._down: set = set()
        self._daemon: Optional[Process] = None

    def start(self) -> Process:
        if self._daemon is None:
            self._daemon = self.cluster.sim.process(self._loop())
        return self._daemon

    # -- victim selection ---------------------------------------------------

    def _quorum_safe(self, node: str) -> bool:
        """Would crashing ``node`` leave every shard with a majority?"""
        directory = self.cluster.directory
        for shard_name in directory.shard_names:
            shard = directory.shard(shard_name)
            if node not in shard.replicas:
                continue
            alive = [
                replica for replica in shard.replicas
                if replica != node and replica not in self._down
                and not self.cluster.network.is_crashed(replica)
            ]
            if len(alive) < shard.fault_tolerance + 1:
                return False
        return True

    def _candidates(self) -> Sequence[str]:
        directory = self.cluster.directory
        primaries = set(directory.all_primaries())
        nodes = []
        for node in directory.all_servers():
            if node in self._down:
                continue
            if not self.include_primaries and node in primaries:
                continue
            if self._quorum_safe(node):
                nodes.append(node)
        return nodes

    # -- the loop -------------------------------------------------------------

    def _loop(self):
        sim = self.cluster.sim
        while True:
            yield sim.timeout(self.interval)
            candidates = self._candidates()
            if not candidates:
                continue
            victim = self.rng.choice(list(candidates))
            self._down.add(victim)
            self.cluster.fail_server(victim)
            self.kills.append((sim.now, victim))
            sim.process(self._revive(victim))

    def _revive(self, node: str):
        yield self.cluster.sim.timeout(self.downtime)
        self.cluster.recover_server(node)
        self._down.discard(node)
