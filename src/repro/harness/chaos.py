"""Scripted and randomized failure injection.

Recovery code that is only exercised by hand-built scenarios rots; a
chaos schedule keeps it honest. Three tools:

* :class:`FailurePlan` — a deterministic script of (time, action, node)
  events: ``crash`` / ``recover`` at exact simulated instants, for
  reproducible failure scenarios in tests and examples. Its failures
  are link-level pauses (the node's memory survives); use
  :meth:`NemesisPlan.crash` for amnesia crashes.
* :class:`NemesisPlan` — the full fault DSL: partitions (symmetric and
  asymmetric), probabilistic link loss, latency spikes, clock anomalies
  (steps, drift, spike storms) and crashes, all scheduled at exact
  instants and recorded on a fault-event timeline. Named builders
  (:func:`partition_primary_from_backups`, :func:`isolate_master`,
  :func:`majority_minority_split`, :func:`clock_storm`,
  :func:`loss_storm`) compose onto one plan via their ``plan=``
  argument; SeededRng-drawn schedules keep every run reproducible.
* :class:`ChaosMonkey` — randomized rolling failures: every interval it
  crashes a random *backup* (never reducing any shard below a connected
  majority — partitions count) and revives it after ``downtime``.
  Primaries are excluded by default because automatic primary failover
  is the :class:`~repro.semel.master.Master`'s job — enable
  ``include_primaries`` when one is running.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..net.network import Network
from ..sim.process import Process
from ..sim.rng import SeededRng
from .cluster import Cluster

__all__ = [
    "FailurePlan",
    "NemesisPlan",
    "ChaosMonkey",
    "largest_connected_majority",
    "partition_primary_from_backups",
    "isolate_master",
    "majority_minority_split",
    "clock_storm",
    "loss_storm",
]


class FailurePlan:
    """A deterministic script of pause/unpause (link-cut) events."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._events: List[Tuple[float, str, str]] = []
        self.executed: List[Tuple[float, str, str]] = []

    def crash(self, at: float, node: str) -> "FailurePlan":
        self._events.append((at, "crash", node))
        return self

    def recover(self, at: float, node: str) -> "FailurePlan":
        self._events.append((at, "recover", node))
        return self

    def start(self) -> Process:
        """Begin executing the schedule; returns the driver process."""
        return self.cluster.sim.process(self._run())

    def _run(self):
        sim = self.cluster.sim
        for at, action, node in sorted(self._events):
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            if action == "crash":
                self.cluster.pause_server(node)
            else:
                self.cluster.unpause_server(node)
            self.executed.append((sim.now, action, node))


class NemesisPlan:
    """A deterministic script of fault inject/heal events.

    Every event is scheduled at an exact simulated instant and recorded
    on :attr:`timeline` when it fires, so a run's fault history can be
    reported next to its metrics. Helpers cover the full fault surface:
    link state (:meth:`partition` / :meth:`block` / :meth:`set_loss` /
    :meth:`latency_spike`), clocks (:meth:`clock_step` /
    :meth:`clock_drift` / :meth:`clock_spike`) and fail-stop crashes.
    ``heal_all`` restores a fault-free network (crashed nodes recover
    separately, clock anomalies clear separately).
    """

    def __init__(self, cluster: Cluster, name: str = "nemesis") -> None:
        self.cluster = cluster
        self.name = name
        self._events: List[Tuple[float, int, str, Callable[[], None]]] = []
        #: (time, description) of every fault event that has fired.
        self.timeline: List[Tuple[float, str]] = []
        #: Restart Processes spawned by :meth:`restart`/:meth:`recover`,
        #: so a driver can wait for the recovery protocols to finish.
        self.restarts: List[Process] = []

    # -- generic scheduling -------------------------------------------------

    def at(self, time: float, label: str,
           action: Callable[[], None]) -> "NemesisPlan":
        """Schedule ``action()`` at simulated ``time``."""
        self._events.append((time, len(self._events), label, action))
        return self

    def _faults(self):
        return self.cluster.network.install_faults()

    # -- link state ---------------------------------------------------------

    def partition(self, at: float, side_a: Iterable[str],
                  side_b: Iterable[str],
                  symmetric: bool = True) -> "NemesisPlan":
        side_a, side_b = sorted(side_a), sorted(side_b)
        kind = "partition" if symmetric else "asymmetric partition"
        return self.at(
            at, f"{kind} {side_a} | {side_b}",
            lambda: self._faults().partition(side_a, side_b,
                                             symmetric=symmetric))

    def heal_partition(self, at: float, side_a: Iterable[str],
                       side_b: Iterable[str]) -> "NemesisPlan":
        side_a, side_b = sorted(side_a), sorted(side_b)
        return self.at(
            at, f"heal partition {side_a} | {side_b}",
            lambda: self._faults().heal_partition(side_a, side_b))

    def block(self, at: float, src: str, dst: str) -> "NemesisPlan":
        return self.at(at, f"block {src} -> {dst}",
                       lambda: self._faults().block(src, dst))

    def unblock(self, at: float, src: str, dst: str) -> "NemesisPlan":
        return self.at(at, f"unblock {src} -> {dst}",
                       lambda: self._faults().unblock(src, dst))

    def set_loss(self, at: float, probability: float,
                 src: Optional[str] = None,
                 dst: Optional[str] = None) -> "NemesisPlan":
        where = f"{src} -> {dst}" if src else "all links"
        return self.at(
            at, f"loss {probability:g} on {where}",
            lambda: self._faults().set_loss(probability, src, dst))

    def clear_loss(self, at: float) -> "NemesisPlan":
        return self.at(at, "clear loss",
                       lambda: self._faults().clear_loss())

    def latency_spike(self, at: float, extra: float,
                      src: Optional[str] = None,
                      dst: Optional[str] = None) -> "NemesisPlan":
        where = f"{src} -> {dst}" if src else "all links"
        return self.at(
            at, f"latency +{extra:g}s on {where}",
            lambda: self._faults().set_extra_latency(extra, src, dst))

    def clear_latency_spike(self, at: float) -> "NemesisPlan":
        return self.at(at, "clear latency spikes",
                       lambda: self._faults().clear_extra_latency())

    def heal_all(self, at: float) -> "NemesisPlan":
        """Clear every link fault (partitions, loss, spikes) at once."""
        return self.at(at, "heal all link faults",
                       lambda: self._faults().heal())

    # -- crashes ------------------------------------------------------------

    def pause(self, at: float, node: str) -> "NemesisPlan":
        """Cut ``node``'s links; its volatile state survives."""
        return self.at(at, f"pause {node}",
                       lambda: self.cluster.pause_server(node))

    def unpause(self, at: float, node: str) -> "NemesisPlan":
        return self.at(at, f"unpause {node}",
                       lambda: self.cluster.unpause_server(node))

    def crash(self, at: float, node: str,
              amnesia: bool = True) -> "NemesisPlan":
        """Fail-stop ``node``. Amnesia (the default) wipes its volatile
        state — it only comes back via :meth:`restart`; ``amnesia=False``
        degrades to :meth:`pause`."""
        label = f"crash {node}" if amnesia else f"pause {node}"
        return self.at(
            at, label,
            lambda: self.cluster.crash_server(node, amnesia=amnesia))

    def restart(self, at: float, node: str) -> "NemesisPlan":
        """Begin an amnesia-crashed node's restart protocol. The spawned
        restart Process is appended to :attr:`restarts` so drivers can
        wait for recovery to actually finish."""
        def action() -> None:
            self.restarts.append(self.cluster.restart_server(node))
        return self.at(at, f"restart {node}", action)

    def recover(self, at: float, node: str) -> "NemesisPlan":
        """State-routed recovery: unpause a paused node, restart a
        crashed one, leave an already-recovering or healthy node alone.
        For scripts that do not care which failure hit the node."""
        def action() -> None:
            state = self.cluster.server_state(node)
            if state == "paused":
                self.cluster.unpause_server(node)
            elif state == "crashed":
                self.restarts.append(self.cluster.restart_server(node))
            # "recovering" and "up" need nothing.
        return self.at(at, f"recover {node}", action)

    # -- clock anomalies ----------------------------------------------------

    def _clock(self, clock_name: str):
        return self.cluster.clock_ensemble.clock_for(clock_name)

    def clock_step(self, at: float, clock_name: str,
                   offset: float) -> "NemesisPlan":
        return self.at(at, f"clock step {offset:+g}s on {clock_name}",
                       lambda: self._clock(clock_name).step(offset))

    def clock_drift(self, at: float, clock_name: str,
                    rate: float) -> "NemesisPlan":
        return self.at(at, f"clock drift {rate:+g}s/s on {clock_name}",
                       lambda: self._clock(clock_name).set_drift(rate))

    def clock_spike(self, at: float, clock_name: str, amplitude: float,
                    duration: float) -> "NemesisPlan":
        return self.at(
            at, f"clock spike {amplitude:+g}s/{duration:g}s on "
                f"{clock_name}",
            lambda: self._clock(clock_name).spike(amplitude, duration))

    def clear_clock(self, at: float, clock_name: str) -> "NemesisPlan":
        return self.at(at, f"clear clock anomalies on {clock_name}",
                       lambda: self._clock(clock_name).clear())

    # -- execution ----------------------------------------------------------

    @property
    def end_time(self) -> float:
        """The instant of the last scheduled event."""
        return max((at for at, _, _, _ in self._events), default=0.0)

    def start(self) -> Process:
        """Begin executing the schedule; returns the driver process."""
        return self.cluster.sim.process(self._run())

    def _run(self):
        sim = self.cluster.sim
        for at, _, label, action in sorted(self._events,
                                           key=lambda e: (e[0], e[1])):
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            action()
            self.timeline.append((sim.now, label))


# -- named nemesis plans ----------------------------------------------------


def _plan(cluster: Cluster, plan: Optional[NemesisPlan],
          name: str) -> NemesisPlan:
    return plan if plan is not None else NemesisPlan(cluster, name=name)


def partition_primary_from_backups(
    cluster: Cluster,
    shard_name: str,
    start: float,
    duration: float,
    asymmetric: bool = False,
    plan: Optional[NemesisPlan] = None,
) -> NemesisPlan:
    """Cut a shard's primary off from its backups.

    ``asymmetric=True`` blocks only the primary->backup direction:
    clients still reach the primary and backups can still talk *to* it,
    but its replication and lease-renewal traffic never arrives — the
    scenario that distinguishes UNKNOWN prepare outcomes from ABORTs.
    """
    shard = cluster.directory.shard(shard_name)
    primary, backups = shard.primary, \
        [r for r in shard.replicas if r != shard.primary]
    plan = _plan(cluster, plan, f"partition-{shard_name}-primary")
    plan.partition(start, [primary], backups, symmetric=not asymmetric)
    plan.heal_partition(start + duration, [primary], backups)
    return plan


def isolate_master(
    cluster: Cluster,
    start: float,
    duration: float,
    plan: Optional[NemesisPlan] = None,
) -> NemesisPlan:
    """Cut the global master off from every storage server, so failure
    detection and failover run blind for a window."""
    if cluster.master is None:
        raise ValueError("cluster has no master to isolate")
    servers = sorted(cluster.servers)
    master = cluster.master.name
    plan = _plan(cluster, plan, "isolate-master")
    plan.partition(start, [master], servers)
    plan.heal_partition(start + duration, [master], servers)
    return plan


def majority_minority_split(
    cluster: Cluster,
    start: float,
    duration: float,
    plan: Optional[NemesisPlan] = None,
) -> NemesisPlan:
    """Split every shard's replicas majority/minority; clients and the
    primary-bearing majority side stay connected."""
    plan = _plan(cluster, plan, "majority-minority-split")
    majority: List[str] = []
    minority: List[str] = []
    for shard_name in cluster.directory.shard_names:
        shard = cluster.directory.shard(shard_name)
        keep = shard.fault_tolerance + 1
        ordered = [shard.primary] + [r for r in shard.replicas
                                     if r != shard.primary]
        majority.extend(ordered[:keep])
        minority.extend(ordered[keep:])
    if minority:
        plan.partition(start, majority, minority)
        plan.heal_partition(start + duration, majority, minority)
    return plan


def clock_storm(
    cluster: Cluster,
    rng: SeededRng,
    start: float,
    duration: float,
    amplitude: float = 2e-3,
    spikes: int = 8,
    spike_duration: float = 5e-3,
    plan: Optional[NemesisPlan] = None,
) -> NemesisPlan:
    """A SeededRng-scheduled storm of skew spikes across client clocks.

    Each spike hits one rng-chosen client clock at an rng-drawn instant
    in ``[start, start + duration)``, with alternating sign so clocks
    diverge in both directions.
    """
    plan = _plan(cluster, plan, "clock-storm")
    clock_names = [f"client-{i}"
                   for i in range(cluster.config.num_clients)]
    if not clock_names:
        return plan
    for index in range(spikes):
        at = start + rng.random() * duration
        name = rng.choice(clock_names)
        sign = 1.0 if index % 2 == 0 else -1.0
        plan.clock_spike(at, name, sign * amplitude, spike_duration)
    return plan


def loss_storm(
    cluster: Cluster,
    start: float,
    duration: float,
    probability: float = 0.05,
    plan: Optional[NemesisPlan] = None,
) -> NemesisPlan:
    """Uniform probabilistic message loss on every link for a window."""
    plan = _plan(cluster, plan, "loss-storm")
    plan.set_loss(start, probability)
    plan.clear_loss(start + duration)
    return plan


def largest_connected_majority(network: Network,
                               nodes: Sequence[str]) -> int:
    """Size of the largest mutually communicating component of
    ``nodes`` (bidirectional :meth:`Network.can_communicate` edges)."""
    best = 0
    seen: set = set()
    for root in nodes:
        if root in seen:
            continue
        seen.add(root)
        stack, size = [root], 0
        while stack:
            current = stack.pop()
            size += 1
            for other in nodes:
                if other in seen:
                    continue
                if network.can_communicate(current, other) \
                        and network.can_communicate(other, current):
                    seen.add(other)
                    stack.append(other)
        best = max(best, size)
    return best


class ChaosMonkey:
    """Randomized rolling backup failures that never break quorums.

    ``amnesia=False`` (default) pauses victims and unpauses them after
    ``downtime`` — the historical behaviour. ``amnesia=True`` crashes
    them for real: volatile state wiped, revival via the full restart
    protocol (WAL replay + catch-up), which the monkey waits out before
    counting the node as back.
    """

    def __init__(
        self,
        cluster: Cluster,
        rng: SeededRng,
        interval: float = 50e-3,
        downtime: float = 30e-3,
        include_primaries: bool = False,
        amnesia: bool = False,
    ) -> None:
        if downtime >= interval:
            raise ValueError(
                f"downtime {downtime} must be < interval {interval} so "
                "failures do not overlap unboundedly")
        self.cluster = cluster
        self.rng = rng
        self.interval = interval
        self.downtime = downtime
        self.include_primaries = include_primaries
        self.amnesia = amnesia
        self.kills: List[Tuple[float, str]] = []
        self._down: set = set()
        self._daemon: Optional[Process] = None

    def start(self) -> Process:
        if self._daemon is None:
            self._daemon = self.cluster.sim.process(self._loop())
        return self._daemon

    # -- victim selection ---------------------------------------------------

    def _quorum_safe(self, node: str) -> bool:
        """Would crashing ``node`` leave every shard with a *connected*
        majority?

        Counting non-crashed replicas is not enough once link faults
        exist: a replica on the wrong side of a partition cannot ack
        replication, so only the largest mutually communicating
        component counts toward the majority. Likewise a paused,
        amnesia-crashed, or still-recovering replica
        (``Cluster.is_serving``) contributes nothing.
        """
        directory = self.cluster.directory
        network = self.cluster.network
        for shard_name in directory.shard_names:
            shard = directory.shard(shard_name)
            if node not in shard.replicas:
                continue
            alive = [
                replica for replica in shard.replicas
                if replica != node and replica not in self._down
                and self.cluster.is_serving(replica)
                and not network.is_crashed(replica)
            ]
            if largest_connected_majority(network, alive) \
                    < shard.fault_tolerance + 1:
                return False
        return True

    def _candidates(self) -> Sequence[str]:
        directory = self.cluster.directory
        primaries = set(directory.all_primaries())
        nodes = []
        for node in directory.all_servers():
            if node in self._down:
                continue
            if not self.cluster.is_serving(node):
                continue
            if not self.include_primaries and node in primaries:
                continue
            if self._quorum_safe(node):
                nodes.append(node)
        return nodes

    # -- the loop -------------------------------------------------------------

    def _loop(self):
        sim = self.cluster.sim
        while True:
            yield sim.timeout(self.interval)
            candidates = self._candidates()
            if not candidates:
                continue
            victim = self.rng.choice(list(candidates))
            self._down.add(victim)
            if self.amnesia:
                self.cluster.crash_server(victim)
            else:
                self.cluster.pause_server(victim)
            self.kills.append((sim.now, victim))
            sim.process(self._revive(victim))

    def _revive(self, node: str):
        yield self.cluster.sim.timeout(self.downtime)
        if self.amnesia:
            # Down until the restart protocol actually finishes — an
            # amnesia-crashed node with an empty store is not a quorum
            # member just because its links are back.
            yield self.cluster.restart_server(node)
        else:
            self.cluster.unpause_server(node)
        self._down.discard(node)
