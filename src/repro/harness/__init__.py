"""Experiment harness: cluster construction, metric windows, Retwis
runner, per-table/figure experiment drivers, and plain-text reporting."""

from .ablations import (
    run_client_caching_ablation,
    run_gc_window_ablation,
    run_packing_delay_ablation,
    run_replication_factor_ablation,
    run_watermark_interval_ablation,
)
from .audit import AuditReport, collect_history, run_audit, sync_replicas
from .chaos import (
    ChaosMonkey,
    FailurePlan,
    NemesisPlan,
    clock_storm,
    isolate_master,
    largest_connected_majority,
    loss_storm,
    majority_minority_split,
    partition_primary_from_backups,
)
from .cluster import BACKEND_KINDS, Cluster, ClusterConfig
from .experiments import (
    ExperimentResult,
    run_figure1,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_table1,
)
from .metrics import StatsSnapshot, WindowMetrics, snapshot, window_metrics
from .nemesis import (
    SCENARIOS,
    NemesisRunResult,
    nemesis_config,
    run_nemesis,
)
from .report import format_table, format_value, series_block
from .runner import RetwisRunResult, run_retwis_on_cluster

__all__ = [
    "Cluster",
    "ClusterConfig",
    "BACKEND_KINDS",
    "ExperimentResult",
    "run_table1",
    "run_figure1",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_packing_delay_ablation",
    "run_replication_factor_ablation",
    "run_watermark_interval_ablation",
    "run_gc_window_ablation",
    "run_client_caching_ablation",
    "StatsSnapshot",
    "WindowMetrics",
    "snapshot",
    "window_metrics",
    "format_table",
    "format_value",
    "series_block",
    "RetwisRunResult",
    "run_retwis_on_cluster",
    "AuditReport",
    "collect_history",
    "run_audit",
    "sync_replicas",
    "FailurePlan",
    "NemesisPlan",
    "ChaosMonkey",
    "largest_connected_majority",
    "partition_primary_from_backups",
    "isolate_master",
    "majority_minority_split",
    "clock_storm",
    "loss_storm",
    "SCENARIOS",
    "NemesisRunResult",
    "nemesis_config",
    "run_nemesis",
]
