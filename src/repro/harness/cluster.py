"""Cluster construction: wire simulator, clocks, network, servers, clients.

A :class:`Cluster` materializes one experiment deployment from a
:class:`ClusterConfig` — the analogue of the paper's ExoGENI slice:
N shards × R replicas of MILANA/SEMEL servers over a chosen storage
backend, plus M clients with a chosen clock discipline, all on a shared
latency-modelled network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..clocks import ClockEnsemble
from ..durability import DurabilityConfig, WriteAheadLog
from ..flash.device import FlashDevice
from ..flash.geometry import FlashGeometry, FlashTiming
from ..ftl import DRAMBackend, MFTLBackend, VFTLBackend
from ..ftl.packing import DEFAULT_PACKING_DELAY
from ..milana.client import MilanaClient
from ..milana.recovery import RecoveryError, recover_steps
from ..milana.server import MilanaServer
from ..net.latency import JitteredLatency
from ..net.network import Network
from ..semel.sharding import Directory
from ..sim.core import Simulator
from ..sim.process import Process
from ..sim.rng import SeededRng
from ..versioning import Version

__all__ = ["ClusterConfig", "Cluster", "BACKEND_KINDS"]

BACKEND_KINDS = ("dram", "mftl", "vftl", "sftl")


@dataclass
class ClusterConfig:
    """Everything needed to stand up one deployment."""

    num_shards: int = 1
    replicas_per_shard: int = 3
    num_clients: int = 4
    backend: str = "mftl"
    clock_preset: str = "perfect"
    seed: int = 42
    local_validation: bool = True
    network_base_latency: float = 50e-6
    network_jitter_fraction: float = 0.2
    #: Link bandwidth in bytes per simulated second; None models an
    #: infinitely fast link (zero transmission delay), preserving the
    #: pre-bandwidth behaviour of existing experiments.
    network_bandwidth: Optional[float] = None
    packing_delay: float = DEFAULT_PACKING_DELAY
    #: Flash geometry per storage server; None picks one sized for
    #: ``populate_keys`` (about 3x the live data set).
    geometry: Optional[FlashGeometry] = None
    timing: FlashTiming = field(default_factory=FlashTiming)
    #: Keys pre-loaded into the store before the run.
    populate_keys: int = 0
    value_size_hint: int = 400
    ctp_timeout: Optional[float] = None  # None disables the CTP daemon
    #: Optional callable (sim, network, directory, clock, client_id,
    #: local_validation) -> MilanaClient, for baseline client variants
    #: (Centiman, remote-validation-only).
    client_factory: Optional[Callable] = None
    #: Optional callable () -> Simulator; the sanitizer (repro.sansim)
    #: supplies a TracedSimulator here. None keeps the production kernel.
    simulator_factory: Optional[Callable[[], Simulator]] = None
    #: Run an active master with heartbeat failure detection and
    #: automatic primary failover (§3's global master).
    with_master: bool = False
    #: Place each shard's replicas in distinct racks and use rack-aware
    #: latencies (intra-rack ~20 us, cross-rack ~80 us one way) instead
    #: of the flat latency model.
    rack_aware: bool = False
    num_racks: int = 3
    #: Attach a per-server write-ahead log. None (the default) leaves
    #: ``server.wal`` as the class-level None, so existing experiments'
    #: schedules are byte-identical. With a config, amnesia crashes
    #: (:meth:`Cluster.crash_server`) become survivable via WAL replay.
    durability: Optional[DurabilityConfig] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_KINDS:
            raise ValueError(
                f"backend must be one of {BACKEND_KINDS}, got "
                f"{self.backend!r}")
        if self.num_shards < 1 or self.replicas_per_shard < 1:
            raise ValueError("need at least one shard and one replica")


def _sized_geometry(keys_per_shard: int) -> FlashGeometry:
    """Geometry giving ~6x headroom over the live data set.

    Sizing keeps GC active (like the paper's 15-minute runs) without
    letting the device wedge: until every client has reported a
    watermark, *all* versions are retained (the GC lower bound is
    unknown), so the early-run version build-up needs generous slack —
    especially for VFTL, whose double reserve leaves it only 81 % of raw
    capacity.
    """
    records_per_page = 4096 // 512
    live_pages = max(1, math.ceil(keys_per_shard / records_per_page))
    num_blocks = max(32, math.ceil(live_pages * 6 / 32))
    return FlashGeometry(page_size=4096, pages_per_block=32,
                         num_blocks=num_blocks, num_channels=16)


class Cluster:
    """A fully wired simulated deployment."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.sim = (config.simulator_factory()
                    if config.simulator_factory is not None
                    else Simulator())
        self.rng = SeededRng(config.seed)
        self.network = Network(
            self.sim, self.rng,
            latency=JitteredLatency(
                base=config.network_base_latency,
                jitter_fraction=max(config.network_jitter_fraction, 0.0),
                bandwidth=config.network_bandwidth))
        self.clock_ensemble = ClockEnsemble(
            self.sim, self.rng, preset=config.clock_preset)
        shards = {
            f"shard{s}": [f"srv-{s}-{r}"
                          for r in range(config.replicas_per_shard)]
            for s in range(config.num_shards)
        }
        self.directory = Directory(shards)
        self.topology = None
        if config.rack_aware:
            from ..net.topology import (RackTopology,
                                        spread_replicas_across_racks)
            racks = spread_replicas_across_racks(
                self.directory, num_racks=config.num_racks)
            self.topology = RackTopology(racks)
            # Clients sit spread across the same racks.
            for i in range(config.num_clients):
                self.topology.assign(f"milana-client-{i + 1}",
                                     f"rack{i % config.num_racks}")
            self.network.topology = self.topology
        self.servers: Dict[str, MilanaServer] = {}
        self.devices: Dict[str, FlashDevice] = {}
        keys_per_shard = (config.populate_keys // config.num_shards
                          if config.num_shards else 0)
        self._keys_per_shard = keys_per_shard
        for shard_name, replica_names in shards.items():
            for server_name in replica_names:
                backend = self._make_backend(server_name, keys_per_shard)
                server = MilanaServer(
                    self.sim, self.network, self.directory, server_name,
                    shard_name, backend, ctp_timeout=config.ctp_timeout)
                if config.durability is not None:
                    server.wal = WriteAheadLog(self.sim, server_name,
                                               config.durability)
                self.servers[server_name] = server
        factory = config.client_factory or self._default_client_factory
        self.clients: List[MilanaClient] = [
            factory(self.sim, self.network, self.directory,
                    self.clock_ensemble.clock_for(f"client-{i}"),
                    i + 1, config.local_validation)
            for i in range(config.num_clients)
        ]
        self.master = None
        self.heartbeats = []
        self._heartbeat_by_server: Dict[str, Any] = {}
        if config.with_master:
            from ..semel.master import HeartbeatReporter, Master
            self.master = Master(self.sim, self.network, self.directory,
                                 self.servers)
            self.master.start()
            for server in self.servers.values():
                reporter = HeartbeatReporter(server)
                reporter.start()
                self.heartbeats.append(reporter)
                self._heartbeat_by_server[server.name] = reporter
        #: Failure-injection bookkeeping: names currently link-paused,
        #: amnesia-crashed, and mid-restart (name -> restart Process).
        self._paused: set = set()
        self._amnesia_crashed: set = set()
        self._restarting: Dict[str, Process] = {}
        self.populated_keys: List[str] = []
        if config.populate_keys:
            self.populate(config.populate_keys)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _default_client_factory(sim, network, directory, clock, client_id,
                                local_validation):
        return MilanaClient(sim, network, directory, clock,
                            client_id=client_id,
                            local_validation=local_validation)

    def _make_backend(self, server_name: str, keys_per_shard: int):
        kind = self.config.backend
        if kind == "dram":
            return DRAMBackend(self.sim)
        geometry = self.config.geometry or _sized_geometry(keys_per_shard)
        device = FlashDevice(self.sim, geometry, self.config.timing)
        self.devices[server_name] = device
        if kind == "mftl":
            return MFTLBackend(self.sim, device,
                               packing_delay=self.config.packing_delay)
        if kind == "sftl":
            return MFTLBackend(self.sim, device,
                               packing_delay=self.config.packing_delay,
                               multi_version=False)
        return VFTLBackend(self.sim, device,
                           packing_delay=self.config.packing_delay)

    # -- population -----------------------------------------------------------------

    def populate(self, num_keys: int,
                 value_fn: Optional[Callable[[str], Any]] = None) -> List[str]:
        """Pre-load ``num_keys`` keys into every replica's backend."""
        if value_fn is None:
            def value_fn(key):
                return f"value-of-{key}"
        keys = [f"key:{i}" for i in range(num_keys)]
        # Stamp initial data far in the past so any client snapshot —
        # including one from a clock with a negative offset — can read it.
        version = Version(-1e6, 0)
        per_server: Dict[str, list] = {name: [] for name in self.servers}
        for key in keys:
            shard = self.directory.shard_of(key)
            item = (key, value_fn(key), version)
            for replica in shard.replicas:
                per_server[replica].append(item)
        for server_name, items in per_server.items():
            server = self.servers[server_name]
            server.backend.bulk_load(items)
            if server.wal is not None:
                # Pre-loaded data is durable by definition (it "was
                # already on disk"), at zero simulated cost.
                for key, value, item_version in items:
                    server.wal.bootstrap_put(key, value, item_version)
        self.populated_keys = keys
        return keys

    # -- failure injection ------------------------------------------------------------

    #: Backoff between restart-protocol retries (majority not yet up, or
    #: the primary unreachable for a backup catch-up).
    RESTART_RETRY_DELAY = 20e-3

    def pause_server(self, name: str) -> None:
        """Cut a server's links. Its memory, timers, and in-flight
        handlers survive; :meth:`unpause_server` restores it verbatim.
        This is the old ``fail_server`` behaviour, now honestly named."""
        if name in self._amnesia_crashed or name in self._restarting:
            raise RuntimeError(
                f"{name} is amnesia-crashed; restart_server() it instead "
                f"of pausing")
        self._paused.add(name)
        self.network.crash(name)

    def unpause_server(self, name: str) -> None:
        """Reconnect a paused server, volatile state intact."""
        if name in self._amnesia_crashed or name in self._restarting:
            raise RuntimeError(
                f"{name} was amnesia-crashed, not paused; its memory is "
                f"gone — use restart_server() to replay the WAL")
        self._paused.discard(name)
        self.network.recover(name)

    #: Historical name: ``fail_server`` always only cut links.
    fail_server = pause_server

    def recover_server(self, name: str) -> None:
        """Removed: silently resurrecting a 'failed' server with all its
        volatile state intact made every crash test a lie."""
        raise RuntimeError(
            "Cluster.recover_server() no longer exists: it resurrected "
            "the server's memory, timers, and in-flight handlers as if "
            "the failure never happened. Use unpause_server() to undo a "
            "pause_server()/fail_server() link cut, or restart_server() "
            "to bring an amnesia-crashed server back through WAL replay "
            "and the recovery protocol.")

    def crash_server(self, name: str, amnesia: bool = True) -> None:
        """Fail-stop ``name``. With ``amnesia`` (the default) this is a
        real crash: links cut, every in-flight handler and daemon
        killed, volatile state wiped — only the WAL's durable prefix
        survives, and only :meth:`restart_server` brings it back.
        ``amnesia=False`` degrades to :meth:`pause_server`."""
        if not amnesia:
            self.pause_server(name)
            return
        # A second crash mid-restart kills the restart protocol too.
        proc = self._restarting.pop(name, None)
        if proc is not None and proc.is_alive:
            proc.interrupt("crash")
        self._paused.discard(name)
        self._amnesia_crashed.add(name)
        self.network.crash(name)
        self.servers[name].crash()
        reporter = self._heartbeat_by_server.get(name)
        if reporter is not None:
            reporter.crash()

    def restart_server(self, name: str) -> Process:
        """Bring an amnesia-crashed server back. Returns the restart
        Process: fresh backend, WAL replay, then the role-appropriate
        rejoin (Algorithm 2 merge + lease wait for a primary, catch-up
        pull for a backup), retried until the shard cooperates."""
        if name not in self._amnesia_crashed:
            if name in self._paused:
                raise RuntimeError(
                    f"{name} is paused, not crashed; unpause_server() "
                    f"reconnects it with its state intact")
            raise RuntimeError(f"{name} is not crashed")
        if name in self._restarting:
            raise RuntimeError(f"{name} is already restarting")
        proc = self.sim.process(self._restart_protocol(name))
        self._restarting[name] = proc
        return proc

    def _restart_protocol(self, name: str):
        server = self.servers[name]
        backend = self._make_backend(name, self._keys_per_shard)
        server.restart(backend)
        self.network.recover(name)
        yield from server.replay_wal()
        while True:
            if server.is_primary:
                try:
                    yield from recover_steps(server)
                    break
                except RecoveryError:
                    # Majority unreachable (e.g. the rest of the shard
                    # is also down); wait for more replicas.
                    yield self.sim.timeout(self.RESTART_RETRY_DELAY)
            else:
                caught_up = yield from server.catch_up_from_primary()
                if caught_up:
                    break
                yield self.sim.timeout(self.RESTART_RETRY_DELAY)
        reporter = self._heartbeat_by_server.get(name)
        if reporter is not None:
            reporter.restart()
        # Bookkeeping last: a crash interrupt anywhere above leaves the
        # server in _crashed, which is exactly right.
        self._amnesia_crashed.discard(name)
        self._restarting.pop(name, None)

    def server_state(self, name: str) -> str:
        """``up`` | ``paused`` | ``crashed`` | ``recovering``."""
        if name in self._restarting:
            return "recovering"
        if name in self._amnesia_crashed:
            return "crashed"
        if name in self._paused:
            return "paused"
        return "up"

    def is_serving(self, name: str) -> bool:
        """True when the replica is up and participating (a paused,
        crashed, or mid-restart node cannot contribute to quorums)."""
        return self.server_state(name) == "up"

    def pending_restarts(self) -> List[Process]:
        """Restart protocols still in flight (for drains/settling)."""
        return [proc for proc in self._restarting.values()
                if proc.is_alive]

    def primary_server(self, shard_name: str) -> MilanaServer:
        return self.servers[self.directory.shard(shard_name).primary]

    # -- aggregate stats ---------------------------------------------------------------

    def total_stats(self) -> Dict[str, float]:
        started = sum(c.stats.started for c in self.clients)
        committed = sum(c.stats.committed for c in self.clients)
        aborted = sum(c.stats.aborted for c in self.clients)
        latency = sum(c.stats.latency_total for c in self.clients)
        decided = committed + aborted
        return {
            "started": started,
            "committed": committed,
            "aborted": aborted,
            "abort_rate": aborted / decided if decided else 0.0,
            "mean_latency": latency / decided if decided else 0.0,
        }
