"""Plain-text rendering of experiment results (tables and series).

The benchmark harness prints the same rows/series the paper reports, so a
run's output can be eyeballed against the published tables and figures.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["format_table", "format_value", "series_block"]


def format_value(value: Any) -> str:
    """Human-friendly rendering with sensible precision."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 0.01:
            return f"{value:.3g}" if abs(value) < 1 else f"{value:.2f}"
        if abs(value) >= 1e-6:
            return f"{value * 1e6:.1f}u"
        return f"{value * 1e9:.1f}n"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [
        [format_value(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    for row in rendered_rows:
        parts.append(line(row))
    return "\n".join(parts)


def series_block(name: str, xs: Sequence[Any], ys: Sequence[Any],
                 x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as labelled (x, y) pairs."""
    pairs = "  ".join(
        f"({format_value(x)}, {format_value(y)})" for x, y in zip(xs, ys))
    return f"{name} [{x_label} -> {y_label}]: {pairs}"
