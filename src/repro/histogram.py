"""Log-linear latency histograms (HdrHistogram-style, simplified).

Means hide tails; a storage paper reproduction should expose them. The
histogram buckets values on a log-linear grid: values within each
power-of-two range are split into ``sub_buckets`` linear slots, giving a
bounded relative error (about 1/sub_buckets) at every magnitude from
nanoseconds to seconds with O(1) recording and tiny memory.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed-precision histogram for positive values (seconds)."""

    def __init__(self, min_value: float = 1e-9, max_value: float = 100.0,
                 sub_buckets: int = 32) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError(
                f"need 0 < min_value < max_value, got "
                f"{min_value}, {max_value}")
        if sub_buckets < 2:
            raise ValueError(f"sub_buckets must be >= 2: {sub_buckets}")
        self.min_value = min_value
        self.max_value = max_value
        self.sub_buckets = sub_buckets
        self._decades = int(math.ceil(
            math.log2(max_value / min_value))) + 1
        self._counts = [0] * (self._decades * sub_buckets)
        self.count = 0
        self.total = 0.0
        self.min_seen = float("inf")
        self.max_seen = 0.0

    # -- recording ----------------------------------------------------------

    def _index_of(self, value: float) -> int:
        clamped = min(max(value, self.min_value), self.max_value)
        exponent = int(math.floor(math.log2(clamped / self.min_value)))
        exponent = min(exponent, self._decades - 1)
        low = self.min_value * (2 ** exponent)
        fraction = (clamped - low) / low  # in [0, 1)
        sub = min(int(fraction * self.sub_buckets), self.sub_buckets - 1)
        return exponent * self.sub_buckets + sub

    def record(self, value: float) -> None:
        """Record one observation (negative values are clamped up)."""
        self._counts[self._index_of(value)] += 1
        self.count += 1
        self.total += value
        self.min_seen = min(self.min_seen, value)
        self.max_seen = max(self.max_seen, value)

    # -- queries --------------------------------------------------------------

    def _bucket_value(self, index: int) -> float:
        exponent, sub = divmod(index, self.sub_buckets)
        low = self.min_value * (2 ** exponent)
        return low * (1 + (sub + 0.5) / self.sub_buckets)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * p / 100.0))
        running = 0
        for index, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= target:
                return self._bucket_value(index)
        return self.max_seen

    def percentiles(self, ps: Iterable[float]) -> Dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    def summary(self) -> Dict[str, float]:
        """The standard reporting tuple: count/mean/p50/p95/p99/max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max_seen if self.count else 0.0,
        }

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same configuration) into this one."""
        if (other.min_value != self.min_value
                or other.sub_buckets != self.sub_buckets
                or other.max_value != self.max_value):
            raise ValueError("cannot merge differently configured "
                             "histograms")
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)
