"""Services layered on MILANA — the paper's §7 future-work directions
("developing other services such as: file systems, distributed lock
services, ..."). Each is an ordinary transactional client application,
demonstrating the public API carrying real coordination workloads."""

from .locks import DistributedLockService, LockHandle
from .queue import TransactionalQueue

__all__ = ["DistributedLockService", "LockHandle",
           "TransactionalQueue"]
