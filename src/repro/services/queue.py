"""A transactional FIFO queue over MILANA (§7 future-work direction).

The queue is ordinary keyed state: a descriptor key holding ``{head,
tail}`` plus one key per slot. Enqueue reads the descriptor, writes the
element at ``tail`` and bumps the descriptor; dequeue reads ``head``,
consumes the element and bumps ``head`` — each a read-modify-write
transaction, so concurrent producers/consumers serialize through OCC:
conflicting operations abort and retry, and every element is delivered
exactly once even with many racing consumers.

This is deliberately the "naive" design (a single descriptor key is a
contention point) — it demonstrates that correctness comes for free from
the transaction layer; throughput-oriented designs (sharded sub-queues)
compose from the same primitives.
"""

from __future__ import annotations

from typing import Any

from ..milana.client import MilanaClient, TransactionAborted
from ..milana.transaction import COMMITTED
from ..sim.process import Process

__all__ = ["TransactionalQueue"]


class TransactionalQueue:
    """Client-side handle to a named queue stored in MILANA."""

    def __init__(self, client: MilanaClient, name: str,
                 max_retries: int = 20,
                 retry_backoff: float = 0.5e-3) -> None:
        self.client = client
        self.name = name
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.enqueued = 0
        self.dequeued = 0
        self.retries = 0

    def _descriptor_key(self) -> str:
        return f"__queue__:{self.name}"

    def _slot_key(self, index: int) -> str:
        return f"__queue__:{self.name}:{index}"

    # -- operations -----------------------------------------------------------

    def enqueue(self, item: Any) -> Process:
        """Append ``item``; fires with its slot index (or None if every
        retry conflicted)."""
        return self.client.sim.process(self._enqueue(item))

    def dequeue(self) -> Process:
        """Pop the oldest item; fires with it, or None if the queue is
        empty (after retries on conflict)."""
        return self.client.sim.process(self._dequeue())

    def size(self) -> Process:
        """Fires with the current number of queued elements."""
        return self.client.sim.process(self._size())

    # -- transaction bodies ------------------------------------------------------

    def _read_descriptor(self, txn):
        descriptor = yield self.client.txn_get(
            txn, self._descriptor_key())
        if descriptor is None:
            descriptor = {"head": 0, "tail": 0}
        return descriptor

    def _enqueue(self, item: Any):
        client = self.client
        for _attempt in range(1 + self.max_retries):
            txn = client.begin()
            try:
                descriptor = yield from self._read_descriptor(txn)
            except TransactionAborted:
                client.abort(txn, "queue-read")
                yield client.sim.timeout(self.retry_backoff)
                continue
            index = descriptor["tail"]
            client.put(txn, self._slot_key(index), item)
            client.put(txn, self._descriptor_key(),
                       {"head": descriptor["head"], "tail": index + 1})
            outcome = yield client.commit(txn)
            if outcome == COMMITTED:
                self.enqueued += 1
                return index
            self.retries += 1
            yield client.sim.timeout(self.retry_backoff)
        return None

    def _dequeue(self):
        client = self.client
        for _attempt in range(1 + self.max_retries):
            txn = client.begin()
            try:
                descriptor = yield from self._read_descriptor(txn)
                if descriptor["head"] >= descriptor["tail"]:
                    yield client.commit(txn)
                    return None  # empty
                item = yield client.txn_get(
                    txn, self._slot_key(descriptor["head"]))
            except TransactionAborted:
                client.abort(txn, "queue-read")
                yield client.sim.timeout(self.retry_backoff)
                continue
            client.put(txn, self._descriptor_key(), {
                "head": descriptor["head"] + 1,
                "tail": descriptor["tail"],
            })
            outcome = yield client.commit(txn)
            if outcome == COMMITTED:
                self.dequeued += 1
                return item
            self.retries += 1
            yield client.sim.timeout(self.retry_backoff)
        return None

    def _size(self):
        # A read-only observation: retry until local validation passes,
        # or the snapshot may predate a commit still being applied.
        for _attempt in range(1 + self.max_retries):
            txn = self.client.begin()
            try:
                descriptor = yield from self._read_descriptor(txn)
            except TransactionAborted:
                self.client.abort(txn, "queue-read")
                yield self.client.sim.timeout(self.retry_backoff)
                continue
            outcome = yield self.client.commit(txn)
            if outcome == COMMITTED:
                return descriptor["tail"] - descriptor["head"]
            yield self.client.sim.timeout(self.retry_backoff)
        return descriptor["tail"] - descriptor["head"]
