"""A distributed lock service over MILANA transactions (§7 future work).

Each lock is one key holding ``{owner, expires}``. Acquisition is a
read-modify-write transaction: read the lock state, and if it is free —
or its lease has expired — write yourself in. OCC provides the mutual
exclusion: two racing acquirers conflict on the write set and exactly one
commits (Algorithm 1's write-write check), with no server-side lock
manager at all.

Leases make the service crash-safe: a holder that dies simply stops
renewing, and after ``ttl`` the lock is claimable again. Because lease
expiry compares the *acquirer's* clock against the *previous holder's*
timestamp, the ``ttl`` must comfortably exceed the cluster's clock skew
(trivially true for PTP's microseconds; even NTP's milliseconds are small
against typical sub-second TTLs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..milana.client import MilanaClient, TransactionAborted
from ..milana.transaction import COMMITTED
from ..sim.process import Process

__all__ = ["DistributedLockService", "LockHandle"]

_FREE = {"owner": None, "expires": float("-inf")}


@dataclass(frozen=True)
class LockHandle:
    """Proof of acquisition, needed to release or renew."""

    name: str
    owner: str
    expires: float


class DistributedLockService:
    """Client-side lock operations; state lives in the MILANA store."""

    def __init__(self, client: MilanaClient, ttl: float = 0.5,
                 key_prefix: str = "__lock__:") -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.client = client
        self.ttl = ttl
        self.key_prefix = key_prefix
        self.acquisitions = 0
        self.contentions = 0

    def _key(self, name: str) -> str:
        return f"{self.key_prefix}{name}"

    # -- operations ----------------------------------------------------------

    def acquire(self, name: str, owner: Optional[str] = None) -> Process:
        """Try to take the lock; fires with a LockHandle or None."""
        owner = owner or self.client.name
        return self.client.sim.process(self._acquire(name, owner))

    def release(self, handle: LockHandle) -> Process:
        """Release a held lock; fires with True if the release committed
        while the handle was still the current holder."""
        return self.client.sim.process(self._release(handle))

    def renew(self, handle: LockHandle) -> Process:
        """Extend a held lease; fires with a fresh handle or None if the
        lock was lost (lease expired and taken over)."""
        return self.client.sim.process(self._renew(handle))

    def holder(self, name: str) -> Process:
        """Fires with the current owner name, or None if free/expired."""
        return self.client.sim.process(self._holder(name))

    # -- transaction bodies -----------------------------------------------------

    # Sanitizer note (repro.sansim): the lease is *cross-process* state —
    # the acquire generator finishes long before the holder releases — so
    # it cannot be modelled as a process-held lock (on_acquire/on_release
    # track within-process critical sections). Instead the lock *state*
    # key is a tracked location: reads join the previous holder's commit
    # into the reader's clock, so the OCC read-modify-write cycle itself
    # carries the happens-before edges and handoffs are never flagged.

    def _read_state(self, txn, name):
        value = yield self.client.txn_get(txn, self._key(name))
        tracer = self.client.sim.tracer
        if tracer is not None:
            tracer.on_read(("dlock", name))
        return value if value is not None else dict(_FREE)

    def _acquire(self, name: str, owner: str):
        client = self.client
        tracer = client.sim.tracer
        if tracer is not None:
            tracer.begin_section("lock-acquire", name)
        txn = client.begin()
        try:
            state = yield from self._read_state(txn, name)
        except TransactionAborted:
            client.abort(txn, "lock-read")
            return None
        now = client.clock.now()
        if state["owner"] is not None and state["expires"] > now:
            # Held and current; complete as a (read-only) observation.
            yield client.commit(txn)
            self.contentions += 1
            return None
        expires = now + self.ttl
        client.put(txn, self._key(name),
                   {"owner": owner, "expires": expires})
        outcome = yield client.commit(txn)
        if outcome != COMMITTED:
            self.contentions += 1
            return None
        if tracer is not None:
            tracer.on_write(("dlock", name))
        self.acquisitions += 1
        return LockHandle(name=name, owner=owner, expires=expires)

    def _release(self, handle: LockHandle):
        client = self.client
        tracer = client.sim.tracer
        if tracer is not None:
            tracer.begin_section("lock-release", handle.name)
        txn = client.begin()
        try:
            state = yield from self._read_state(txn, handle.name)
        except TransactionAborted:
            client.abort(txn, "lock-read")
            return False
        if state["owner"] != handle.owner:
            yield client.commit(txn)
            return False
        client.put(txn, self._key(handle.name), dict(_FREE))
        outcome = yield client.commit(txn)
        if outcome == COMMITTED and tracer is not None:
            tracer.on_write(("dlock", handle.name))
        return outcome == COMMITTED

    def _renew(self, handle: LockHandle):
        client = self.client
        tracer = client.sim.tracer
        if tracer is not None:
            tracer.begin_section("lock-renew", handle.name)
        txn = client.begin()
        try:
            state = yield from self._read_state(txn, handle.name)
        except TransactionAborted:
            client.abort(txn, "lock-read")
            return None
        if state["owner"] != handle.owner:
            yield client.commit(txn)
            return None
        expires = client.clock.now() + self.ttl
        client.put(txn, self._key(handle.name),
                   {"owner": handle.owner, "expires": expires})
        outcome = yield client.commit(txn)
        if outcome != COMMITTED:
            return None
        if tracer is not None:
            tracer.on_write(("dlock", handle.name))
        return LockHandle(name=handle.name, owner=handle.owner,
                          expires=expires)

    def _holder(self, name: str):
        client = self.client
        # Read-only observation: retry until the snapshot validates
        # (a racing commit may still be applying).
        for _attempt in range(10):
            txn = client.begin()
            try:
                state = yield from self._read_state(txn, name)
            except TransactionAborted:
                client.abort(txn, "lock-read")
                yield client.sim.timeout(0.5e-3)
                continue
            outcome = yield client.commit(txn)
            if outcome == COMMITTED:
                break
            yield client.sim.timeout(0.5e-3)
        if state["owner"] is None:
            return None
        if state["expires"] <= client.clock.now():
            return None
        return state["owner"]
