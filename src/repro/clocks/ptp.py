"""IEEE 1588 Precision Time Protocol clock models.

PTP synchronizes slave clocks to a master over the LAN every ~2 s using
timestamped sync messages. Accuracy depends on where timestamps are taken:

* **software timestamping** — the paper's configuration; it measures an
  average pairwise skew of 53.2 µs among its clients.
* **hardware timestamping** — the IEEE 1588 design point, < 1 µs skew.
* **DTP-class** — datacenter-network-assisted synchronization (the paper
  cites ~150 ns across a data center, < 30 ns for direct links).

For independent zero-mean Gaussian offsets with standard deviation σ, the
expected pairwise skew E|o_i − o_j| is 2σ/√π ≈ 1.1284 σ; the factory
functions below invert that so the configured *average pairwise skew*
matches the paper's reported numbers.
"""

from __future__ import annotations

import math

from ..sim.rng import SeededRng
from .synced import SyncedClock

__all__ = [
    "PAIRWISE_TO_STD",
    "PTP_SOFTWARE_MEAN_SKEW",
    "PTP_HARDWARE_MEAN_SKEW",
    "PTP_DTP_MEAN_SKEW",
    "PTPClock",
    "ptp_software_clock",
    "ptp_hardware_clock",
    "dtp_clock",
]

#: Divide a target mean pairwise skew by this to get the Gaussian std dev.
PAIRWISE_TO_STD = 2.0 / math.sqrt(math.pi)

#: Paper §5.2: "software timestamped PTP has average skew of 53.2 µs".
PTP_SOFTWARE_MEAN_SKEW = 53.2e-6
#: IEEE 1588 with hardware timestamping: < 1 µs; we model 0.5 µs mean.
PTP_HARDWARE_MEAN_SKEW = 0.5e-6
#: DTP-class datacenter synchronization (~150 ns across the DC).
PTP_DTP_MEAN_SKEW = 150e-9


class PTPClock(SyncedClock):
    """A PTP-synchronized clock with a configurable mean pairwise skew."""

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        rng: SeededRng,
        mean_pairwise_skew: float = PTP_SOFTWARE_MEAN_SKEW,
        sync_interval: float = 2.0,
        drift_ppm: float = 1.0,
        name: str = "ptp-clock",
    ) -> None:
        if mean_pairwise_skew < 0:
            raise ValueError(
                f"mean_pairwise_skew must be >= 0, got {mean_pairwise_skew}")
        self.mean_pairwise_skew = mean_pairwise_skew
        super().__init__(
            sim,
            rng,
            residual_std=mean_pairwise_skew / PAIRWISE_TO_STD,
            drift_ppm=drift_ppm,
            sync_interval=sync_interval,
            name=name,
        )


def ptp_software_clock(sim, rng: SeededRng, name: str = "ptp-sw") -> PTPClock:
    """PTP with software timestamping — the paper's client configuration."""
    return PTPClock(sim, rng, PTP_SOFTWARE_MEAN_SKEW, name=name)


def ptp_hardware_clock(sim, rng: SeededRng, name: str = "ptp-hw") -> PTPClock:
    """PTP with hardware timestamping (< 1 µs skew)."""
    return PTPClock(sim, rng, PTP_HARDWARE_MEAN_SKEW, name=name)


def dtp_clock(sim, rng: SeededRng, name: str = "dtp") -> PTPClock:
    """DTP-class network-assisted synchronization (~150 ns skew)."""
    return PTPClock(sim, rng, PTP_DTP_MEAN_SKEW, name=name)
