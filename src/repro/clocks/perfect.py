"""A perfectly synchronized clock (zero skew).

Used for single-node experiments (the paper eliminates clock skew in the
Figure 6 setup by running everything on one VM) and as the ground-truth
reference when measuring other clocks' skew.
"""

from __future__ import annotations

from .base import Clock

__all__ = ["PerfectClock"]


class PerfectClock(Clock):
    """Returns true simulated time exactly."""

    def __init__(self, sim: "Simulator", name: str = "perfect-clock") -> None:  # noqa: F821
        super().__init__(sim, name=name)

    def _raw_now(self) -> float:
        return self.sim.now
