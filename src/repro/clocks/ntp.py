"""Network Time Protocol clock model.

NTP is the incumbent the paper compares against: it synchronizes over
longer, jittery network paths and disciplines the clock slowly, leaving
residual offsets on the order of **milliseconds** inside a data center. The
paper measures an average pairwise skew of 1.51 ms among its NTP clients.

We reuse the generic :class:`~repro.clocks.synced.SyncedClock` with a
millisecond-scale residual and a longer polling interval (NTP's minimum
poll is 16 s by default; the exact interval is irrelevant to the abort-rate
experiments because the residual dominates drift at these magnitudes).
"""

from __future__ import annotations

from ..sim.rng import SeededRng
from .ptp import PAIRWISE_TO_STD
from .synced import SyncedClock

__all__ = ["NTP_MEAN_SKEW", "NTPClock", "ntp_clock"]

#: Paper §5.2: "NTP shows an average skew of 1.51 ms among clients".
NTP_MEAN_SKEW = 1.51e-3


class NTPClock(SyncedClock):
    """An NTP-disciplined clock with millisecond-scale residual offsets."""

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        rng: SeededRng,
        mean_pairwise_skew: float = NTP_MEAN_SKEW,
        sync_interval: float = 16.0,
        drift_ppm: float = 50.0,
        name: str = "ntp-clock",
    ) -> None:
        if mean_pairwise_skew < 0:
            raise ValueError(
                f"mean_pairwise_skew must be >= 0, got {mean_pairwise_skew}")
        self.mean_pairwise_skew = mean_pairwise_skew
        super().__init__(
            sim,
            rng,
            residual_std=mean_pairwise_skew / PAIRWISE_TO_STD,
            drift_ppm=drift_ppm,
            sync_interval=sync_interval,
            name=name,
        )


def ntp_clock(sim, rng: SeededRng, name: str = "ntp") -> NTPClock:
    """An NTP clock calibrated to the paper's measured 1.51 ms mean skew."""
    return NTPClock(sim, rng, name=name)
