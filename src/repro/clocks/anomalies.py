"""Clock fault injection: step/drift excursions and skew-spike storms.

:class:`FaultyClock` wraps any :class:`~repro.clocks.base.Clock` and adds
an *injected offset* on top of the inner clock's raw reading:

* :meth:`step` — an NTP-style step: the local time jumps by a fixed
  amount and stays there (until cleared);
* :meth:`set_drift` — a rate excursion: the clock gains ``rate`` extra
  seconds per true second, modelling a thermal/oscillator event or a bad
  sync source;
* :meth:`spike` — a bounded skew spike: a constant extra offset during a
  window, the building block of nemesis "clock storms".

The wrapper is installed unconditionally by
:class:`~repro.clocks.skew.ClockEnsemble`, so injection needs no
re-wiring — but while no anomaly is configured, ``_raw_now`` returns the
inner clock's reading *unmodified* (not ``+ 0.0``), keeping fault-free
runs float-identical to a world without the wrapper. The inner clock's
``now()`` is never called; its monotonic guard is superseded by the
wrapper's own, which also absorbs the backward jump when a positive
anomaly is cleared.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Clock

__all__ = ["FaultyClock"]


class FaultyClock(Clock):
    """A clock with an injectable anomaly offset on top of its inner
    clock's raw reading."""

    def __init__(self, inner: Clock) -> None:
        super().__init__(inner.sim, name=f"faulty:{inner.name}")
        self.inner = inner
        self._step = 0.0
        self._drift_rate = 0.0
        self._drift_since = 0.0
        #: (start, end, amplitude) windows, pruned lazily.
        self._spikes: List[Tuple[float, float, float]] = []
        #: Count of anomalies ever injected (for reports).
        self.anomalies_injected = 0

    # -- injection ---------------------------------------------------------

    def step(self, offset: float) -> None:
        """Jump local time by ``offset`` seconds, permanently (until
        :meth:`clear`). Negative steps are absorbed by the monotonic
        guard: readings plateau instead of going backwards."""
        self._step += offset
        self.anomalies_injected += 1

    def set_drift(self, rate: float) -> None:
        """Gain ``rate`` extra seconds per true second from now on.

        ``set_drift(0.0)`` stops the excursion, folding the drift
        accumulated so far into the standing step offset.
        """
        now = self.sim.now
        if self._drift_rate:
            self._step += self._drift_rate * (now - self._drift_since)
        self._drift_rate = rate
        self._drift_since = now
        if rate:
            self.anomalies_injected += 1

    def spike(self, amplitude: float, duration: float) -> None:
        """Add ``amplitude`` seconds of offset for the next ``duration``
        true seconds, then fall back automatically."""
        if duration <= 0:
            raise ValueError(f"spike duration must be > 0, got {duration}")
        now = self.sim.now
        self._spikes.append((now, now + duration, amplitude))
        self.anomalies_injected += 1

    def clear(self) -> None:
        """Remove every standing anomaly (the monotonic guard absorbs
        any resulting backward jump)."""
        self._step = 0.0
        self._drift_rate = 0.0
        self._spikes.clear()

    # -- reading -----------------------------------------------------------

    @property
    def faulted(self) -> bool:
        """True while any anomaly is configured."""
        if self._spikes:
            now = self.sim.now
            self._spikes = [s for s in self._spikes if s[1] > now]
        return bool(self._step or self._drift_rate or self._spikes)

    def injected_offset(self) -> float:
        """The anomaly contribution at the current instant."""
        now = self.sim.now
        offset = self._step
        if self._drift_rate:
            offset += self._drift_rate * (now - self._drift_since)
        if self._spikes:
            self._spikes = [s for s in self._spikes if s[1] > now]
            offset += sum(amp for start, end, amp in self._spikes
                          if start <= now)
        return offset

    def _raw_now(self) -> float:
        raw = self.inner._raw_now()
        if not self.faulted:
            # Bit-for-bit passthrough on the fault-free path.
            return raw
        return raw + self.injected_offset()
