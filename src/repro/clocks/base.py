"""Clock model interface.

A clock maps *true* simulated time (``Simulator.now``) to the node's local
view of wall-clock time. The gap between two nodes' readings at the same
instant is their mutual *skew*; the paper's central observation is that OCC
abort rates track skew relative to device write latency, so the clock model
is the knob the PTP/NTP experiments turn.

All clocks in this package are **monotonic**: consecutive ``now()`` calls on
the same clock never go backwards, matching the paper's assumption
("Since NTP/PTP clocks are monotonic, no client issues a new operation with
a timestamp below the watermark").
"""

from __future__ import annotations

import abc

__all__ = ["Clock", "MONOTONIC_STEP"]

#: Minimum increment applied when a raw reading would move backwards.
#: 1 ns, well below every latency constant in the system.
MONOTONIC_STEP = 1e-9


class Clock(abc.ABC):
    """Maps true simulated time to a node's local timestamp."""

    def __init__(self, sim: "Simulator", name: str = "clock") -> None:  # noqa: F821
        self.sim = sim
        self.name = name
        self._last_reading = float("-inf")

    @abc.abstractmethod
    def _raw_now(self) -> float:
        """The uncorrected local time for the current instant."""

    def now(self) -> float:
        """Monotonic local timestamp for the current instant."""
        raw = self._raw_now()
        if raw <= self._last_reading:
            raw = self._last_reading + MONOTONIC_STEP
        self._last_reading = raw
        return raw

    def offset(self) -> float:
        """Signed error versus true time (positive = clock runs ahead).

        Diagnostic only: real nodes cannot observe this, but experiments use
        it to report measured skew the way the paper reports PTP/NTP skew.
        """
        return self._raw_now() - self.sim.now

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
