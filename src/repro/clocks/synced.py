"""Generic periodically-synchronized clock model.

Both PTP and NTP follow the same structure: a slave clock accumulates
frequency drift between synchronization rounds and, at each round, corrects
itself to within some *residual offset* of the master. The protocols differ
only in the magnitude of the residual (sub-µs for hardware PTP, tens of µs
for software-timestamped PTP, milliseconds for NTP) and the round interval
(2 s for PTP per the IEEE 1588 default; NTP polls far less often but we keep
the interval as a parameter).

The model evaluates lazily — no simulation process is required — which keeps
clock reads O(1) and allows millions of timestamp calls per run:

    local(t) = t + residual(k) + drift_rate * (t - t_k)

where ``t_k`` is the most recent sync instant at or before ``t`` and
``residual(k)`` is an i.i.d. draw for round ``k`` from a Gaussian with the
configured standard deviation.
"""

from __future__ import annotations

from typing import Optional

from ..sim.rng import SeededRng
from .base import Clock

__all__ = ["SyncedClock"]


class SyncedClock(Clock):
    """A clock corrected to a master every ``sync_interval`` seconds.

    Parameters
    ----------
    sim:
        The simulator providing true time.
    rng:
        Random stream for residual-offset and drift draws. Each clock should
        get its own substream so skews across nodes are independent.
    residual_std:
        Standard deviation (seconds) of the post-sync offset from true time.
    drift_ppm:
        Magnitude of the frequency error in parts-per-million; each sync
        round draws a drift rate uniformly in ``[-drift_ppm, +drift_ppm]``.
    sync_interval:
        Seconds between synchronization rounds.
    phase:
        Offset (seconds) of this node's sync schedule, so that all nodes do
        not correct at the same instant. Defaults to a random fraction of
        the interval.
    """

    def __init__(
        self,
        sim: "Simulator",  # noqa: F821
        rng: SeededRng,
        residual_std: float,
        drift_ppm: float = 10.0,
        sync_interval: float = 2.0,
        name: str = "synced-clock",
        phase: Optional[float] = None,
    ) -> None:
        super().__init__(sim, name=name)
        if residual_std < 0:
            raise ValueError(f"residual_std must be >= 0, got {residual_std}")
        if sync_interval <= 0:
            raise ValueError(
                f"sync_interval must be positive, got {sync_interval}")
        self.rng = rng
        self.residual_std = residual_std
        self.drift_rate_bound = drift_ppm * 1e-6
        self.sync_interval = sync_interval
        if phase is None:
            phase = rng.uniform(0.0, sync_interval)
        self.phase = phase % sync_interval
        # The clock is modelled as having been disciplined long before the
        # simulation starts: the sync schedule extends backwards in time,
        # so even time zero falls inside some round with a drawn residual.
        self._round: Optional[int] = None
        self._residual = 0.0
        self._drift_rate = 0.0
        self._load_round(self._round_index(sim.now))

    def _round_index(self, true_time: float) -> int:
        """Index of the sync round covering ``true_time`` (may be < 0)."""
        return int((true_time - self.phase) // self.sync_interval)

    def _load_round(self, index: int) -> None:
        """Set residual/drift for round ``index``.

        Each round's draws come from a substream derived from the round
        index, so they are deterministic, independent of read patterns,
        and defined for rounds before the simulation epoch.
        """
        stream = self.rng.substream(f"round{index}")
        self._round = index
        self._residual = stream.gauss(0.0, self.residual_std)
        if self.drift_rate_bound > 0:
            self._drift_rate = stream.uniform(
                -self.drift_rate_bound, self.drift_rate_bound)
        else:
            self._drift_rate = 0.0

    def _raw_now(self) -> float:
        true_time = self.sim.now
        index = self._round_index(true_time)
        if index != self._round:
            self._load_round(index)
        last_sync = self.phase + self._round * self.sync_interval
        elapsed = max(0.0, true_time - last_sync)
        return true_time + self._residual + self._drift_rate * elapsed
