"""Skew measurement utilities and clock-ensemble construction.

Experiments need two things beyond individual clocks: a way to build one
clock per node from a single configuration ("all clients run NTP"), and a
way to report the realized skew the way the paper does (mean pairwise
offset among clients).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence

from ..sim.rng import SeededRng
from .anomalies import FaultyClock
from .base import Clock
from .ntp import NTPClock
from .perfect import PerfectClock
from .ptp import (
    PTP_DTP_MEAN_SKEW,
    PTP_HARDWARE_MEAN_SKEW,
    PTP_SOFTWARE_MEAN_SKEW,
    PTPClock,
)

__all__ = [
    "CLOCK_PRESETS",
    "make_clock",
    "ClockEnsemble",
    "mean_pairwise_skew",
    "max_pairwise_skew",
]

#: Named presets accepted everywhere a clock source is configured.
CLOCK_PRESETS: Dict[str, dict] = {
    "perfect": {},
    "ptp-sw": {"mean_pairwise_skew": PTP_SOFTWARE_MEAN_SKEW},
    "ptp-hw": {"mean_pairwise_skew": PTP_HARDWARE_MEAN_SKEW},
    "dtp": {"mean_pairwise_skew": PTP_DTP_MEAN_SKEW},
    "ntp": {},
}


def make_clock(preset: str, sim, rng: SeededRng, name: str) -> Clock:
    """Build one clock from a preset name.

    Presets: ``perfect``, ``ptp-sw``, ``ptp-hw``, ``dtp``, ``ntp``.
    """
    if preset == "perfect":
        return PerfectClock(sim, name=name)
    if preset in ("ptp-sw", "ptp-hw", "dtp"):
        skew = CLOCK_PRESETS[preset]["mean_pairwise_skew"]
        return PTPClock(sim, rng, mean_pairwise_skew=skew, name=name)
    if preset == "ntp":
        return NTPClock(sim, rng, name=name)
    raise ValueError(
        f"unknown clock preset {preset!r}; expected one of "
        f"{sorted(CLOCK_PRESETS)}")


class ClockEnsemble:
    """One clock per named node, all built from the same preset.

    Each node's clock draws from its own RNG substream, so the set of skews
    is stable under adding/removing other nodes.
    """

    def __init__(self, sim, rng: SeededRng, preset: str = "perfect") -> None:
        self.sim = sim
        self.rng = rng
        self.preset = preset
        self._clocks: Dict[str, Clock] = {}

    def clock_for(self, node_name: str) -> FaultyClock:
        """The (memoized) clock for ``node_name``.

        Every clock comes wrapped in a :class:`FaultyClock`, so nemesis
        plans can inject step/drift/spike anomalies without re-wiring;
        the wrapper is a bit-for-bit passthrough until one is injected.
        """
        if node_name not in self._clocks:
            self._clocks[node_name] = FaultyClock(make_clock(
                self.preset,
                self.sim,
                self.rng.substream(f"clock/{node_name}"),
                name=f"{self.preset}:{node_name}",
            ))
        return self._clocks[node_name]

    @property
    def clocks(self) -> List[Clock]:
        return list(self._clocks.values())


def mean_pairwise_skew(clocks: Sequence[Clock]) -> float:
    """Average |offset_i − offset_j| over all clock pairs, right now."""
    offsets = [clock.offset() for clock in clocks]
    pairs = list(combinations(offsets, 2))
    if not pairs:
        return 0.0
    return sum(abs(a - b) for a, b in pairs) / len(pairs)


def max_pairwise_skew(clocks: Sequence[Clock]) -> float:
    """Worst-case |offset_i − offset_j| over all clock pairs, right now."""
    offsets = [clock.offset() for clock in clocks]
    if len(offsets) < 2:
        return 0.0
    return max(offsets) - min(offsets)
