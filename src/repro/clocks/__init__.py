"""Clock synchronization models (PTP, NTP, perfect, DTP-class).

The paper's headline comparisons hinge on how tightly client clocks agree;
this package models each protocol as a per-node monotonic clock whose
offset from true time is re-drawn at every synchronization round, with
magnitudes calibrated to the paper's measured skews (PTP-software 53.2 µs,
NTP 1.51 ms).
"""

from .anomalies import FaultyClock
from .base import Clock, MONOTONIC_STEP
from .ntp import NTP_MEAN_SKEW, NTPClock, ntp_clock
from .perfect import PerfectClock
from .ptp import (
    PTP_DTP_MEAN_SKEW,
    PTP_HARDWARE_MEAN_SKEW,
    PTP_SOFTWARE_MEAN_SKEW,
    PTPClock,
    dtp_clock,
    ptp_hardware_clock,
    ptp_software_clock,
)
from .skew import (
    CLOCK_PRESETS,
    ClockEnsemble,
    make_clock,
    max_pairwise_skew,
    mean_pairwise_skew,
)
from .synced import SyncedClock

__all__ = [
    "Clock",
    "MONOTONIC_STEP",
    "FaultyClock",
    "PerfectClock",
    "SyncedClock",
    "PTPClock",
    "NTPClock",
    "ptp_software_clock",
    "ptp_hardware_clock",
    "dtp_clock",
    "ntp_clock",
    "PTP_SOFTWARE_MEAN_SKEW",
    "PTP_HARDWARE_MEAN_SKEW",
    "PTP_DTP_MEAN_SKEW",
    "NTP_MEAN_SKEW",
    "CLOCK_PRESETS",
    "ClockEnsemble",
    "make_clock",
    "mean_pairwise_skew",
    "max_pairwise_skew",
]
