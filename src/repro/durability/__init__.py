"""Simulated per-server durability: write-ahead logs with fsync points.

The durability layer is what makes an *amnesia* crash (volatile state
wiped, process killed) survivable: every record a server acknowledges as
durable is appended to its :class:`WriteAheadLog` and fsynced *before*
the acknowledgement goes out, so a restart can rebuild the store and
transaction table from the durable prefix.

Durability is opt-in (``ClusterConfig.durability``); with it disabled a
server's ``wal`` stays ``None`` and every hook is a single attribute
check, so default-config schedules are byte-identical (the same
zero-cost-seam pattern as the sansim tracer).
"""

from .wal import (
    SEMEL_DELETE,
    SEMEL_PUT,
    TXN_RECORD,
    DurabilityConfig,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "DurabilityConfig",
    "WalRecord",
    "WriteAheadLog",
    "SEMEL_PUT",
    "SEMEL_DELETE",
    "TXN_RECORD",
]
