"""A simulated write-ahead log with explicit fsync points.

Model: appends land in a volatile buffer instantly; an *fsync* charges
``fsync_latency`` of simulated time and then marks the entry durable.
An amnesia crash (:meth:`WriteAheadLog.crash`) drops the non-durable
tail — exactly the bytes a real machine loses when it dies between a
``write()`` and the ``fsync()`` that would have persisted it.

Two append disciplines:

* ``sync=True`` — the caller's process waits out the fsync before
  proceeding, so anything it acknowledges afterwards is genuinely
  durable (ack-after-fsync);
* ``sync=False`` — the entry is appended and a background fsync is
  scheduled, but the caller continues immediately (ack-before-fsync).
  This is the deliberately unsafe mode the durability tests use as a
  control: a whole-shard crash inside the fsync window loses records
  the clients were already told about, and the post-heal audit must be
  able to see that.

Record kinds are deliberately few: SEMEL put/delete records and MILANA
transaction records (stored as immutable
:class:`~repro.wire.messages.TxnRecordWire` snapshots, so a WAL entry
can never alias a mutable server-side record).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Iterable, List, Optional

if TYPE_CHECKING:
    from ..sim.core import Simulator
    from ..sim.events import Event

#: Append generators yield fsync waits (or nothing, for ``sync=False``)
#: and return the appended record via ``StopIteration.value``.
_AppendGen = Generator["Event", Any, "WalRecord"]

__all__ = [
    "DurabilityConfig",
    "WalRecord",
    "WriteAheadLog",
    "SEMEL_PUT",
    "SEMEL_DELETE",
    "TXN_RECORD",
]

SEMEL_PUT = "semel.put"
SEMEL_DELETE = "semel.delete"
TXN_RECORD = "txn"


@dataclass
class DurabilityConfig:
    """Knobs for the per-server write-ahead logs.

    The ``sync_*`` flags choose ack-after-fsync (True, the honest
    default) vs ack-before-fsync (False, the lossy control) per record
    class. Note that weakening *only* ``sync_decides`` cannot lose an
    acked commit by itself: the durable prepare records carry the write
    values, and both Algorithm 2's single-participant rule and CTP rule
    4 (all participants prepared) re-derive the commit from them. The
    demonstrably unsafe control weakens prepares and decides together.
    """

    #: Simulated time one fsync takes (NVMe-flush territory).
    fsync_latency: float = 20e-6
    #: Per-record cost of scanning the log on restart.
    replay_latency: float = 2e-6
    #: Wait for the fsync before a prepare vote is returned.
    sync_prepares: bool = True
    #: Wait for the fsync before a decide/commit is acknowledged.
    sync_decides: bool = True
    #: Wait for the fsync before a SEMEL put/delete/replicate ack.
    sync_semel: bool = True


@dataclass
class WalRecord:
    """One log entry: volatile until its fsync completes."""

    lsn: int
    kind: str
    payload: Any
    durable: bool = False
    #: Set when an amnesia crash dropped this entry before its fsync.
    lost: bool = False


class WriteAheadLog:
    """Per-server append-only log with crash-droppable volatile tail."""

    def __init__(self, sim: "Simulator", owner: str,
                 config: DurabilityConfig) -> None:
        self.sim = sim
        self.owner = owner
        self.config = config
        self._entries: List[WalRecord] = []
        self._next_lsn = 0
        self.appends = 0
        self.fsyncs = 0
        self.crashes = 0
        self.records_lost = 0
        self.replays = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- appending -----------------------------------------------------------

    def _append(self, kind: str, payload: Any) -> WalRecord:
        entry = WalRecord(self._next_lsn, kind, payload)
        self._next_lsn += 1
        self._entries.append(entry)
        self.appends += 1
        return entry

    def append(self, kind: str, payload: Any, sync: bool = True) -> _AppendGen:
        """Generator: append one entry; with ``sync`` wait out its fsync.

        With ``sync=False`` the generator yields nothing — the entry is
        fsynced by a background process and the caller may acknowledge
        state the next crash can still erase.
        """
        entry = self._append(kind, payload)
        if sync:
            yield self.sim.timeout(self.config.fsync_latency)
            if not entry.lost:
                entry.durable = True
                self.fsyncs += 1
        else:
            self.sim.process(self._background_fsync(entry))
        return entry

    def _background_fsync(
            self, entry: WalRecord) -> Generator["Event", Any, None]:
        yield self.sim.timeout(self.config.fsync_latency)
        if not entry.lost:
            entry.durable = True
            self.fsyncs += 1

    def bootstrap(self, kind: str, payload: Any) -> WalRecord:
        """Zero-time durable append, for pre-run population only."""
        entry = self._append(kind, payload)
        entry.durable = True
        return entry

    # -- typed helpers -------------------------------------------------------

    def append_put(self, key: str, value: Any, version: Iterable[Any],
                   sync: bool = True) -> _AppendGen:
        return self.append(SEMEL_PUT, (key, value, tuple(version)),
                           sync=sync)

    def append_delete(self, key: str, sync: bool = True) -> _AppendGen:
        return self.append(SEMEL_DELETE, (key,), sync=sync)

    def append_txn(self, record: Any, sync: bool = True) -> _AppendGen:
        """Append a transaction-record snapshot (status included, so a
        decided record is a *new* entry; replay keeps the most-decided
        status per transaction)."""
        from ..wire import TxnRecordWire
        return self.append(TXN_RECORD, TxnRecordWire.from_record(record),
                           sync=sync)

    def bootstrap_put(self, key: str, value: Any,
                      version: Iterable[Any]) -> WalRecord:
        return self.bootstrap(SEMEL_PUT, (key, value, tuple(version)))

    # -- crash / replay ------------------------------------------------------

    def crash(self) -> None:
        """Amnesia: the volatile tail (appended, never fsynced) is gone."""
        kept: List[WalRecord] = []
        for entry in self._entries:
            if entry.durable:
                kept.append(entry)
            else:
                entry.lost = True
                self.records_lost += 1
        self._entries = kept
        self.crashes += 1

    def durable_records(self) -> List[WalRecord]:
        """The replayable prefix (everything that survived)."""
        return [entry for entry in self._entries if entry.durable]

    def replay_delay(self, count: Optional[int] = None) -> float:
        """Simulated time to scan ``count`` records on restart."""
        if count is None:
            count = len(self.durable_records())
        return count * self.config.replay_latency
