"""Operation counters for the simulated flash device."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["DeviceStats"]


@dataclass
class DeviceStats:
    """Cumulative device activity, used to verify GC/wear behaviour."""

    page_reads: int = 0
    page_writes: int = 0
    block_erases: int = 0
    busy_time: float = 0.0
    #: Busy seconds per channel index; imbalance indicates poor striping.
    channel_busy: Dict[int, float] = field(default_factory=dict)

    def record(self, kind: str, channel: int, service_time: float) -> None:
        if kind == "read":
            self.page_reads += 1
        elif kind == "write":
            self.page_writes += 1
        elif kind == "erase":
            self.block_erases += 1
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        self.busy_time += service_time
        self.channel_busy[channel] = (
            self.channel_busy.get(channel, 0.0) + service_time)

    @property
    def total_ops(self) -> int:
        return self.page_reads + self.page_writes + self.block_erases
