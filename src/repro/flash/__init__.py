"""Simulated NAND flash substrate.

Functional + timing emulation of the paper's Open-Channel SSD: pages and
blocks with erase-before-write semantics, channel-level parallelism, and
the paper's latency constants (50 µs read, 100 µs write, 1 ms erase,
queue depth 128).
"""

from .chip import BlockState, FlashChip
from .device import FlashDevice
from .errors import (
    AddressError,
    EraseError,
    FlashError,
    ProgramError,
    ReadError,
    WearOutError,
)
from .geometry import FlashGeometry, FlashTiming, PAPER_GEOMETRY, PAPER_TIMING
from .stats import DeviceStats

__all__ = [
    "FlashChip",
    "BlockState",
    "FlashDevice",
    "FlashGeometry",
    "FlashTiming",
    "PAPER_GEOMETRY",
    "PAPER_TIMING",
    "DeviceStats",
    "FlashError",
    "AddressError",
    "ProgramError",
    "EraseError",
    "ReadError",
    "WearOutError",
]
