"""Timed SSD device: queue slots, channel parallelism, service times.

The device composes the functional :class:`~repro.flash.chip.FlashChip`
with a timing model:

* a **hardware queue** of ``queue_depth`` slots (128 in the paper) bounds
  the number of in-flight commands;
* each block belongs to a **channel**; commands to the same channel
  serialize, commands to different channels proceed in parallel;
* a command occupies its channel for the geometry's service time
  (50 µs read / 100 µs write / 1 ms erase by default).

All operations return a :class:`~repro.sim.process.Process`; callers yield
it from their own process and receive the functional result (page payload
for reads, ``None`` otherwise).
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.core import Simulator
from ..sim.process import Process
from ..sim.resources import Resource
from .chip import FlashChip
from .geometry import FlashGeometry, FlashTiming, PAPER_GEOMETRY, PAPER_TIMING
from .stats import DeviceStats

__all__ = ["FlashDevice"]


class FlashDevice:
    """An SSD with NAND semantics and per-channel timing."""

    def __init__(
        self,
        sim: Simulator,
        geometry: FlashGeometry = PAPER_GEOMETRY,
        timing: FlashTiming = PAPER_TIMING,
        queue_depth: int = 128,
        endurance: Optional[int] = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self.queue_depth = queue_depth
        self.chip = FlashChip(geometry, endurance=endurance)
        self.stats = DeviceStats()
        self._queue = Resource(sim, queue_depth)
        self._channels = [
            Resource(sim, 1) for _ in range(geometry.num_channels)
        ]

    # -- public operations ----------------------------------------------------

    def read_page(self, block: int, page: int) -> Process:
        """Asynchronously read a page; the process value is its payload."""
        return self.sim.process(self._execute("read", block, page=page))

    def write_page(self, block: int, page: int, data: Any) -> Process:
        """Asynchronously program a page with ``data``."""
        return self.sim.process(
            self._execute("write", block, page=page, data=data))

    def erase_block(self, block: int) -> Process:
        """Asynchronously erase a block."""
        return self.sim.process(self._execute("erase", block))

    # -- internals --------------------------------------------------------------

    def _service_time(self, kind: str) -> float:
        if kind == "read":
            return self.timing.read_page
        if kind == "write":
            return self.timing.write_page
        return self.timing.erase_block

    def _execute(self, kind: str, block: int,
                 page: Optional[int] = None, data: Any = None):
        channel_index = self.geometry.channel_of(block, page or 0)
        channel = self._channels[channel_index]
        service_time = self._service_time(kind)
        yield self._queue.acquire()
        try:
            yield channel.acquire()
            try:
                yield self.sim.timeout(service_time)
                # The functional effect lands at command completion so that
                # a concurrent reader never observes a half-finished write.
                if kind == "read":
                    result = self.chip.read(block, page)
                elif kind == "write":
                    self.chip.program(block, page, data)
                    result = None
                else:
                    self.chip.erase(block)
                    result = None
                self.stats.record(kind, channel_index, service_time)
            finally:
                channel.release()
        finally:
            self._queue.release()
        return result
