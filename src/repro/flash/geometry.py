"""Flash geometry and timing parameters.

Defaults mirror the paper's emulated SSD (§5): 4 KB pages, 32 pages per
block, 50 µs page read, 100 µs page write, 1 ms block erase, and a hardware
queue depth of 128. Channel count is our knob for internal parallelism
(real SSDs stripe blocks over many channels/dies; the paper's emulator
services requests from a queue of depth 128).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlashGeometry", "FlashTiming", "PAPER_GEOMETRY", "PAPER_TIMING"]


@dataclass(frozen=True)
class FlashGeometry:
    """Physical layout of the flash array."""

    page_size: int = 4096
    pages_per_block: int = 32
    num_blocks: int = 1024
    num_channels: int = 16

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive: {self.page_size}")
        if self.pages_per_block <= 0:
            raise ValueError(
                f"pages_per_block must be positive: {self.pages_per_block}")
        if self.num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive: {self.num_blocks}")
        if self.num_channels <= 0:
            raise ValueError(
                f"num_channels must be positive: {self.num_channels}")
        if self.num_blocks < self.num_channels:
            raise ValueError(
                "need at least one block per channel: "
                f"{self.num_blocks} blocks < {self.num_channels} channels")

    @property
    def total_pages(self) -> int:
        """Number of pages in the whole array."""
        return self.num_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity of the array in bytes."""
        return self.total_pages * self.page_size

    def channel_of(self, block: int, page: int = 0) -> int:
        """The channel serving (block, page).

        Pages are striped across channels (SSDs spread a superblock's
        pages over dies for parallelism), so sequential data — and the
        log-structured FTL write stream — exploits every channel even
        when it occupies few blocks. Erases use the block's base channel.
        """
        return (block * self.pages_per_block + page) % self.num_channels


@dataclass(frozen=True)
class FlashTiming:
    """Service times (seconds) for the three flash operations."""

    read_page: float = 50e-6
    write_page: float = 100e-6
    erase_block: float = 1e-3

    def __post_init__(self) -> None:
        for field in ("read_page", "write_page", "erase_block"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")


#: The paper's emulator configuration (§5 Experimental Setup).
PAPER_GEOMETRY = FlashGeometry()
PAPER_TIMING = FlashTiming()
