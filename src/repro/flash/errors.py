"""Exception types for flash semantics violations.

These are raised when a client of the flash layer (an FTL) breaks NAND
rules — programming a page twice without an erase, programming pages out of
order within a block, or reading an unwritten page. They indicate FTL bugs,
not simulated device faults.
"""

from __future__ import annotations

__all__ = [
    "FlashError",
    "ProgramError",
    "EraseError",
    "ReadError",
    "AddressError",
    "WearOutError",
]


class FlashError(Exception):
    """Base class for flash rule violations."""


class AddressError(FlashError):
    """Block or page index outside the device geometry."""


class ProgramError(FlashError):
    """Erase-before-write or sequential-program violation."""


class EraseError(FlashError):
    """Invalid erase request."""


class ReadError(FlashError):
    """Read of an unprogrammed page."""


class WearOutError(EraseError):
    """The block has reached its erase-endurance limit (§2.2: "each
    block can be erased only a certain number of times before the cells
    wear out"). FTLs respond with bad-block retirement."""
