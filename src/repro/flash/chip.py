"""Functional flash array: erase-before-write enforcement and data storage.

The chip layer stores page payloads (arbitrary Python objects — typically a
tuple of packed records) and enforces the NAND rules the paper builds on:

* a page may be programmed only once between erases (*erase-before-write*);
* erases happen at block granularity and bump the block's wear counter.

A "block" here is a *superblock*: its pages stripe across channels/dies
(see :meth:`~repro.flash.geometry.FlashGeometry.channel_of`), so programs
to different pages of one block may complete out of order — each die
preserves its own program order, which the striping guarantees by
construction for a log-structured writer.

Timing is *not* modelled here; see :mod:`repro.flash.device`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .errors import (AddressError, EraseError, ProgramError,
                     ReadError, WearOutError)
from .geometry import FlashGeometry

__all__ = ["BlockState", "FlashChip"]


class _Unprogrammed:
    """Sentinel distinguishing an erased page from one storing None."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<UNPROGRAMMED>"


_UNPROGRAMMED = _Unprogrammed()


class BlockState:
    """Per-block bookkeeping: page payloads, programmed count, wear."""

    __slots__ = ("pages", "programmed", "erase_count")

    def __init__(self, pages_per_block: int) -> None:
        self.pages: List[Any] = [_UNPROGRAMMED] * pages_per_block
        self.programmed = 0
        self.erase_count = 0

    @property
    def is_full(self) -> bool:
        return self.programmed >= len(self.pages)


class FlashChip:
    """The functional (data-holding) half of the simulated SSD."""

    def __init__(self, geometry: FlashGeometry,
                 endurance: Optional[int] = None) -> None:
        if endurance is not None and endurance < 1:
            raise ValueError(f"endurance must be >= 1, got {endurance}")
        self.geometry = geometry
        #: Maximum erases per block; None models unlimited endurance.
        self.endurance = endurance
        self._blocks = [
            BlockState(geometry.pages_per_block)
            for _ in range(geometry.num_blocks)
        ]

    # -- validation ---------------------------------------------------------

    def _check_block(self, block: int) -> BlockState:
        if not 0 <= block < self.geometry.num_blocks:
            raise AddressError(
                f"block {block} out of range [0, {self.geometry.num_blocks})")
        return self._blocks[block]

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.geometry.pages_per_block:
            raise AddressError(
                f"page {page} out of range "
                f"[0, {self.geometry.pages_per_block})")

    # -- operations ----------------------------------------------------------

    def program(self, block: int, page: int, data: Any) -> None:
        """Write ``data`` into (block, page); erase-before-write enforced."""
        state = self._check_block(block)
        self._check_page(page)
        if state.pages[page] is not _UNPROGRAMMED:
            raise ProgramError(
                f"page ({block}, {page}) already programmed since last "
                "erase (erase-before-write violation)")
        state.pages[page] = data
        state.programmed += 1

    def read(self, block: int, page: int) -> Any:
        """Return the payload of a programmed page."""
        state = self._check_block(block)
        self._check_page(page)
        payload = state.pages[page]
        if payload is _UNPROGRAMMED:
            raise ReadError(f"read of unprogrammed page ({block}, {page})")
        return payload

    def is_worn(self, block: int) -> bool:
        """Whether ``block`` has exhausted its erase endurance."""
        if self.endurance is None:
            return False
        return self._check_block(block).erase_count >= self.endurance

    def erase(self, block: int) -> None:
        """Erase a whole block, making every page programmable again.

        Raises :class:`WearOutError` once the block's erase count has
        reached the endurance limit; the block's current contents stay
        readable but it can never be erased or reprogrammed.
        """
        state = self._check_block(block)
        if self.is_worn(block):
            raise WearOutError(
                f"block {block} exhausted its endurance of "
                f"{self.endurance} erases")
        if state.programmed == 0 and state.erase_count > 0:
            raise EraseError(f"erase of already-erased block {block}")
        state.pages = [_UNPROGRAMMED] * self.geometry.pages_per_block
        state.programmed = 0
        state.erase_count += 1

    # -- introspection --------------------------------------------------------

    def is_programmed(self, block: int, page: int) -> bool:
        """Whether (block, page) holds data."""
        state = self._check_block(block)
        self._check_page(page)
        return state.pages[page] is not _UNPROGRAMMED

    def programmed_pages(self, block: int) -> int:
        """Number of programmed pages in ``block``."""
        return self._check_block(block).programmed

    def erase_count(self, block: int) -> int:
        """How many times ``block`` has been erased."""
        return self._check_block(block).erase_count

    def wear_counters(self) -> List[int]:
        """Erase counts for all blocks (wear-leveling diagnostics)."""
        return [state.erase_count for state in self._blocks]
