"""Discrete-event simulation kernel.

This package provides the deterministic simulation substrate the whole
reproduction runs on: an event heap with float seconds of virtual time,
generator-based processes, condition events, FIFO stores, counted
resources, and named seedable random streams.
"""

from .core import Simulator, StopSimulation
from .events import AllOf, AnyOf, Event, Interrupt, Timeout
from .process import Process
from .resources import Resource, Store
from .rng import SeededRng
from .trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "StopSimulation",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Process",
    "Store",
    "Resource",
    "SeededRng",
    "Tracer",
    "TraceRecord",
]
