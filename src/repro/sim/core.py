"""The discrete-event simulator loop.

A :class:`Simulator` owns the event queue and the notion of *now*. Time is a
float measured in **seconds** of simulated time; all latency constants in
this package (flash timings, network delays, clock skews) are expressed in
seconds so that microsecond-scale device behaviour and millisecond-scale
clock skews compose naturally.

Example
-------
>>> sim = Simulator()
>>> def hello():
...     yield sim.timeout(1.5)
...     return "done"
>>> proc = sim.process(hello())
>>> sim.run()
>>> proc.value
'done'

Hot-path note: :meth:`Simulator.run` is the single hottest loop in the
whole reproduction — every experiment spends most of its host wall-clock
inside it — so the loop inlines :meth:`step` and :meth:`Event._fire`
with local bindings instead of making three method calls per event. The
inlined bodies must stay in behavioural lockstep with the originals
(``tests/test_fingerprints.py`` pins the resulting schedules
byte-for-byte). ``events_processed`` counts popped events so
``repro bench`` can report kernel throughput as events per host second.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` at an event."""


class Simulator:
    """Owns simulated time and the pending-event heap.

    Events are totally ordered by ``(time, sequence_number)`` so that ties
    resolve in scheduling order, which makes runs fully deterministic for a
    fixed seed.
    """

    __slots__ = ("_now", "_heap", "_seq", "events_processed")

    #: Sanitizer seam (see :mod:`repro.sansim`): the traced subclass
    #: carries a ``SanitizerRuntime`` here; on the base class this is a
    #: plain class attribute, so instrumentation sites in the protocol
    #: layers pay exactly one attribute load to observe ``None`` and the
    #: hot loops below stay byte-identical to the PR 5 fast path.
    #: Typed ``Any`` rather than the concrete runtime: the sim layer
    #: must not import upward into ``repro.sansim``.
    tracer: Optional[Any] = None

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        #: Cumulative count of events popped and fired; purely
        #: observational (the bench harness divides it by host seconds).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` to fire ``delay`` seconds from now."""
        seq = self._seq
        heappush(self._heap, (self._now + delay, seq, event))
        self._seq = seq + 1

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a pending event to be succeeded/failed manually."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``; returns its Process."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event that fires when any child fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event that fires when every child has fired."""
        return AllOf(self, list(events))

    # -- execution --------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Pop and process the single next event.

        :meth:`run` and :meth:`run_until_event` inline this body (plus
        ``Event._fire``) in their loops; keep them in sync.
        """
        time, _, event = heappop(self._heap)
        self._now = time
        self.events_processed += 1
        event._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or simulated time reaches ``until``.

        When ``until`` is given, time is advanced exactly to ``until`` even
        if the queue drains earlier, so that back-to-back ``run`` calls see
        consistent clocks.
        """
        heap = self._heap
        pop = heappop
        # Pops are counted arithmetically rather than per iteration:
        # every push site bumps ``_seq`` exactly once, so
        # pops = pushes-during-run + how much the heap shrank.
        seq0 = self._seq
        len0 = len(heap)
        if until is None:
            try:
                while True:
                    try:
                        time, _, event = pop(heap)
                    except IndexError:
                        break
                    self._now = time
                    # Same-timestamp batch drain: zero-latency cascades
                    # (event chains, inbox handoffs) put long runs of
                    # entries at one timestamp on the heap; the inner
                    # loop pops them without re-storing ``_now`` per
                    # event. Pops still come off the heap one at a time
                    # in (time, seq) order, so the schedule is the one
                    # the un-batched loop produces.
                    while True:
                        # Inlined Event._fire (see events.py). The
                        # one-callback case dominates, so it skips the
                        # defensive list swap: clearing before the call
                        # keeps late appends dropped, exactly like the
                        # swap does.
                        event._processed = True
                        callbacks = event.callbacks
                        if callbacks:
                            if len(callbacks) == 1:
                                callback = callbacks[0]
                                callbacks.clear()
                                callback(event)
                            else:
                                event.callbacks = []
                                for callback in callbacks:
                                    callback(event)
                        if event._ok is False:
                            if not event.defused:
                                raise event._value
                        if heap and heap[0][0] == time:
                            _, _, event = pop(heap)
                        else:
                            break
            finally:
                self.events_processed += (self._seq - seq0
                                          + len0 - len(heap))
            return
        if until < self._now:
            raise ValueError(
                f"cannot run backwards: until={until} < now={self._now}")
        try:
            while heap and heap[0][0] <= until:
                time, _, event = pop(heap)
                self._now = time
                # Same-timestamp batch drain plus the one-callback fast
                # dispatch, exactly as in the ``until is None`` loop
                # above (the equal-time guard implies ``<= until``).
                while True:
                    event._processed = True
                    callbacks = event.callbacks
                    if callbacks:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            callbacks.clear()
                            callback(event)
                        else:
                            event.callbacks = []
                            for callback in callbacks:
                                callback(event)
                    if event._ok is False:
                        if not event.defused:
                            raise event._value
                    if heap and heap[0][0] == time:
                        _, _, event = pop(heap)
                    else:
                        break
        finally:
            self.events_processed += self._seq - seq0 + len0 - len(heap)
        if self._now < until:
            self._now = until

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` has been processed; return its value.

        Raises ``RuntimeError`` if the queue drains (or ``limit`` simulated
        seconds pass) before the event fires, and re-raises the failure
        exception if the event failed.
        """
        heap = self._heap
        pop = heappop
        seq0 = self._seq
        len0 = len(heap)
        try:
            # The limit check is hoisted out of the hot loop by splitting
            # it: the limit-free variant (the common case — every
            # workload drain goes through it) pays no per-event
            # ``is not None`` test, and both get the one-callback fast
            # dispatch from the ``run`` loops.
            if limit is None:
                while not event._processed:
                    if not heap:
                        raise RuntimeError(
                            f"simulation queue drained before {event!r} "
                            f"fired")
                    time, _, popped = pop(heap)
                    self._now = time
                    popped._processed = True
                    callbacks = popped.callbacks
                    if callbacks:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            callbacks.clear()
                            callback(popped)
                        else:
                            popped.callbacks = []
                            for callback in callbacks:
                                callback(popped)
                    if popped._ok is False and not popped.defused:
                        raise popped._value
            else:
                while not event._processed:
                    if not heap:
                        raise RuntimeError(
                            f"simulation queue drained before {event!r} "
                            f"fired")
                    if heap[0][0] > limit:
                        raise RuntimeError(
                            f"simulated time limit {limit} reached before "
                            f"{event!r} fired")
                    time, _, popped = pop(heap)
                    self._now = time
                    popped._processed = True
                    callbacks = popped.callbacks
                    if callbacks:
                        if len(callbacks) == 1:
                            callback = callbacks[0]
                            callbacks.clear()
                            callback(popped)
                        else:
                            popped.callbacks = []
                            for callback in callbacks:
                                callback(popped)
                    if popped._ok is False and not popped.defused:
                        raise popped._value
        finally:
            self.events_processed += self._seq - seq0 + len0 - len(heap)
        if event._ok is False:
            raise event._value
        return event._value
