"""The discrete-event simulator loop.

A :class:`Simulator` owns the event queue and the notion of *now*. Time is a
float measured in **seconds** of simulated time; all latency constants in
this package (flash timings, network delays, clock skews) are expressed in
seconds so that microsecond-scale device behaviour and millisecond-scale
clock skews compose naturally.

Example
-------
>>> sim = Simulator()
>>> def hello():
...     yield sim.timeout(1.5)
...     return "done"
>>> proc = sim.process(hello())
>>> sim.run()
>>> proc.value
'done'
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` at an event."""


class Simulator:
    """Owns simulated time and the pending-event heap.

    Events are totally ordered by ``(time, sequence_number)`` so that ties
    resolve in scheduling order, which makes runs fully deterministic for a
    fixed seed.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` to fire ``delay`` seconds from now."""
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a pending event to be succeeded/failed manually."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``; returns its Process."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event that fires when any child fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event that fires when every child has fired."""
        return AllOf(self, list(events))

    # -- execution --------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Pop and process the single next event."""
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        event._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or simulated time reaches ``until``.

        When ``until`` is given, time is advanced exactly to ``until`` even
        if the queue drains earlier, so that back-to-back ``run`` calls see
        consistent clocks.
        """
        if until is None:
            while self._heap:
                self.step()
            return
        if until < self._now:
            raise ValueError(
                f"cannot run backwards: until={until} < now={self._now}")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = max(self._now, until)

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` has been processed; return its value.

        Raises ``RuntimeError`` if the queue drains (or ``limit`` simulated
        seconds pass) before the event fires, and re-raises the failure
        exception if the event failed.
        """
        while not event.processed:
            if not self._heap:
                raise RuntimeError(
                    f"simulation queue drained before {event!r} fired")
            if limit is not None and self._heap[0][0] > limit:
                raise RuntimeError(
                    f"simulated time limit {limit} reached before "
                    f"{event!r} fired")
            self.step()
        if event.ok is False:
            raise event.value
        return event.value
