"""Deterministic random-number support.

Every stochastic component in the reproduction (clock skew, network jitter,
workload key choice) draws from a :class:`SeededRng`, and substreams are
derived by name so that adding a new consumer never perturbs the draws seen
by existing ones. This keeps experiments reproducible run-to-run and makes
A/B comparisons (e.g. PTP vs NTP) use identical workload randomness.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeededRng"]


class SeededRng:
    """A named, seedable random stream with derivable substreams.

    Draw methods are re-bound as instance attributes at construction,
    so ``rng.random()`` resolves straight to the underlying
    ``random.Random`` method with no wrapper frame — draws happen per
    network message and per workload operation, making this one of the
    hottest call sites in the tree. The ``def`` bodies below remain the
    API documentation (and the fallback if a subclass overrides one).
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        rnd = random.Random(self._derive(seed, name))
        self._random = rnd
        # Fast path: shadow the wrapper methods with the underlying
        # bound methods (draw-for-draw identical, one frame cheaper).
        # Skipped for any method a subclass overrides.
        cls = type(self)
        for method in ("random", "uniform", "randint", "choice",
                       "shuffle", "expovariate", "gauss",
                       "lognormvariate", "sample"):
            if getattr(cls, method) is getattr(SeededRng, method):
                setattr(self, method, getattr(rnd, method))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def substream(self, name: str) -> "SeededRng":
        """A statistically independent stream derived from this one's seed."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # -- draws -------------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, sequence):
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(sequence)

    def shuffle(self, sequence) -> None:
        """Shuffle a mutable sequence in place."""
        self._random.shuffle(sequence)

    def expovariate(self, rate: float) -> float:
        """Exponential with the given rate (mean ``1 / rate``)."""
        return self._random.expovariate(rate)

    def gauss(self, mean: float, stddev: float) -> float:
        """Normal draw with the given mean and standard deviation."""
        return self._random.gauss(mean, stddev)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Log-normal draw with underlying normal parameters mu, sigma."""
        return self._random.lognormvariate(mu, sigma)

    def sample(self, population, k: int):
        """k distinct elements sampled without replacement."""
        return self._random.sample(population, k)
