"""Shared resources for simulation processes.

* :class:`Store` — a FIFO buffer of items; the basic building block for
  message inboxes and request queues.
* :class:`Resource` — a counted semaphore with FIFO waiters; models things
  like a device's hardware queue slots or a flash channel.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Deque

from .events import Event

__all__ = ["Store", "Resource"]


class Store:
    """An unbounded-or-bounded FIFO buffer of items.

    ``put`` returns an event that fires once the item is accepted (which is
    immediate unless the store is at capacity); ``get`` returns an event
    that fires with the next item once one is available.
    """

    __slots__ = ("sim", "capacity", "_items", "_getters", "_putters")

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:  # noqa: F821
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """A read-only snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Offer ``item``; the returned event fires once it is buffered.

        Hot-path note: the immediate-accept branches inline
        ``Event.succeed`` (state stores + direct heap push) — the events
        here are freshly constructed, so the already-triggered guard the
        public method carries cannot fire. Schedule order is identical:
        the getter's event is pushed before the putter's, exactly as the
        two ``succeed`` calls did.
        """
        sim = self.sim
        event = Event(sim)
        if self._getters:
            getter = self._getters.popleft()
            getter._ok = True
            getter._value = item
            event._ok = True
            event._value = None
            seq = sim._seq
            heappush(sim._heap, (sim._now, seq, getter))
            heappush(sim._heap, (sim._now, seq + 1, event))
            sim._seq = seq + 2
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event._ok = True
            event._value = None
            seq = sim._seq
            heappush(sim._heap, (sim._now, seq, event))
            sim._seq = seq + 1
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Request the next item; the returned event fires with it."""
        sim = self.sim
        event = Event(sim)
        if self._items:
            event._ok = True
            event._value = self._items.popleft()
            seq = sim._seq
            heappush(sim._heap, (sim._now, seq, event))
            sim._seq = seq + 1
            if self._putters:
                self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def reset(self) -> None:
        """Crash semantics: drop buffered items and abandon all waiters.

        Pending get/put events are simply forgotten — the processes that
        held them are expected to have been interrupted by the caller
        (a revived consumer must issue a fresh ``get``, or a stale
        pre-crash getter would swallow the first post-restart item).
        """
        self._items.clear()
        self._getters.clear()
        self._putters.clear()

    def _admit_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed()


class Resource:
    """A counted semaphore with FIFO waiters.

    Usage from a process::

        yield resource.acquire()
        try:
            ...  # critical section
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:  # noqa: F821
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot; the returned event fires once granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1
