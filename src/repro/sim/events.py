"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes (see :mod:`repro.sim.process`) suspend by yielding events and are
resumed when the event *fires*. Events carry either a success value or a
failure exception.

The lifecycle of an event is:

1. *pending* — created, not yet triggered.
2. *triggered* — a value (or failure) has been attached and the event has
   been placed on the simulator's queue.
3. *processed* — the simulator has popped the event and run its callbacks.

Hot-path note: events are the most-allocated objects in the whole
reproduction (every message, timeout and store handoff creates at least
one), so this module trades a little uniformity for speed — ``__slots__``
everywhere, trigger paths that push onto the simulator's heap directly
instead of going through :meth:`Simulator.schedule`, and kernel-internal
readers using the underscored attributes rather than the public
properties. The schedule produced is byte-identical to the straightforward
implementation; ``tests/test_fingerprints.py`` holds that line.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
]


class _Pending:
    """Sentinel marking an event that has not yet been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence in simulated time.

    Events are created against a :class:`~repro.sim.core.Simulator` and may
    be *succeeded* (with an optional value) or *failed* (with an exception).
    Both operations enqueue the event so that its callbacks run at the
    current simulation time, after the caller returns control to the
    simulator loop.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed",
                 "_defused")

    def __init__(self, sim: "Simulator") -> None:  # noqa: F821
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    # -- state ------------------------------------------------------------

    @property
    def defused(self) -> bool:
        """True once a failure has been deliberately handled, suppressing
        the simulator's unhandled-failure check.

        Backed lazily: the flag is only ever consulted on the failure
        path, so ``__init__`` skips the store and the getter defaults an
        untouched slot to False.
        """
        try:
            return self._defused
        except AttributeError:
            return False

    @defused.setter
    def defused(self, flag: bool) -> None:
        self._defused = flag

    @property
    def triggered(self) -> bool:
        """True once the event has a value or failure attached."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception attached to the event."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Attach a success value and enqueue the event at the current time."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        seq = sim._seq
        heappush(sim._heap, (sim._now, seq, self))
        sim._seq = seq + 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Attach a failure exception and enqueue the event."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        sim = self.sim
        seq = sim._seq
        heappush(sim._heap, (sim._now, seq, self))
        sim._seq = seq + 1
        return self

    def _fire(self) -> None:
        """Run callbacks; invoked by the simulator when the event is popped.

        :meth:`Simulator.run` inlines this body in its inner loop; keep
        the two in sync when changing it.
        """
        self._processed = True
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        if self._ok is False and not self.defused:
            # A failed event that nobody is waiting on is a programming
            # error; surface it rather than letting it pass silently.
            raise self._value

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._value is not PENDING else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Pure delays are the single hottest event kind, so construction is
    fully inlined: the already-succeeded state and the heap push happen
    here without touching ``Event.__init__`` or ``Event.succeed``.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self.delay = delay
        seq = sim._seq
        heappush(sim._heap, (sim._now + delay, seq, self))
        sim._seq = seq + 1


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    The ``cause`` attribute carries whatever object the interrupter supplied
    (commonly a string reason or the failing peer's identity).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Condition(Event):
    """Common machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:  # noqa: F821
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        # Sanitizer seam: choose the child callback once, at construction.
        # Plain simulators keep registering the bound ``_check`` exactly as
        # before (one class-attribute load here, zero per-fire cost); a
        # traced simulator routes through ``_traced_check`` so the
        # happens-before engine can join every child's clock into the
        # condition — AllOf would otherwise only inherit the last child's.
        check = self._check if sim.tracer is None else self._traced_check
        for event in self.events:
            if event._processed:
                check(event)
            else:
                event.callbacks.append(check)

    def _collect(self) -> dict:
        """Map each already-fired child event to its value, in order."""
        return {
            event: event._value
            for event in self.events
            if event._processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _traced_check(self, event: Event) -> None:
        """Child callback used under a traced simulator (repro.sansim)."""
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.on_condition_child(self, event)
        self._check(event)


class AnyOf(_Condition):
    """Fires when the first of its child events fires.

    The value is a dict mapping every already-triggered child to its value.
    A failing child fails the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if event._ok is False:
            event.defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all of its child events have fired.

    The value is a dict mapping every child to its value. A failing child
    fails the condition immediately.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if event._ok is False:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())
