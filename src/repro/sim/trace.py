"""Structured event tracing for simulation debugging.

A :class:`Tracer` collects timestamped, categorized records into a
bounded ring buffer. Components trace opportunistically (tracing is a
no-op unless a tracer is attached and the category enabled), so the hot
path stays fast; when something goes wrong, the recent protocol history
is right there:

    tracer = Tracer(categories={"rpc"})
    network.tracer = tracer
    ...
    print(tracer.render(last=50))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Set

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extra = " ".join(f"{key}={value!r}"
                         for key, value in self.fields.items())
        timestamp = f"{self.time * 1e3:10.4f}ms"
        return f"{timestamp} [{self.category}] {self.message}" + \
            (f" {extra}" if extra else "")


class Tracer:
    """Bounded, category-filtered trace collector."""

    def __init__(self, sim, categories: Optional[Iterable[str]] = None,
                 capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        #: None means trace everything.
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None)
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def record(self, category: str, message: str, **fields: Any) -> None:
        """Add a record if the category is enabled."""
        if not self.wants(category):
            return
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(
            TraceRecord(self.sim.now, category, message, fields))

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self, category: Optional[str] = None,
                last: Optional[int] = None) -> List[TraceRecord]:
        """Collected records, optionally filtered and truncated."""
        selected = [
            record for record in self._records
            if category is None or record.category == category
        ]
        if last is not None:
            selected = selected[-last:]
        return selected

    def render(self, category: Optional[str] = None,
               last: Optional[int] = None) -> str:
        return "\n".join(record.render()
                         for record in self.records(category, last))

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0
