"""Generator-based simulation processes.

A process wraps a Python generator. Each ``yield`` must produce an
:class:`~repro.sim.events.Event`; the process suspends until the event fires
and resumes with the event's value (or, for a failed event, the exception is
thrown into the generator). A process is itself an event that fires with the
generator's return value, so processes can wait on each other.

Hot-path note: :meth:`Process._resume` runs once per yield of every
process in the system, so it reads event state through the underscored
attributes and pushes onto the simulator heap directly, like the rest of
the kernel (see events.py). The constructor caches three bound methods
in slots — ``generator.send``/``generator.throw`` (``_send``/``_throw``)
and the resume callback itself (``_resume_cb``) — so the per-yield path
neither re-binds generator methods nor allocates a fresh bound-method
object for every ``callbacks.append``. ``repro.sansim`` carries a traced
twin (``TracedProcess``) that duplicates this body with happens-before
bookkeeping around it; keep the two in behavioural lockstep when
changing the resume protocol. (``_resume_cb`` binds the *overridden*
``_resume`` for subclasses, and callback removal compares bound methods
by ``==``, so the traced twin may keep appending ``self._resume``.)
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator

from .events import Event, Interrupt

__all__ = ["Process"]


class Process(Event):
    """Drives a generator, suspending at each yielded event."""

    __slots__ = ("_generator", "_waiting_on", "_resume_cb", "_send",
                 "_throw")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {generator!r}; did you "
                "forget to call the generator function?")
        super().__init__(sim)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        resume = self._resume_cb = self._resume
        self._waiting_on: Event = None  # type: ignore[assignment]
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(resume)
        heappush(sim._heap, (sim._now, sim._seq, bootstrap))
        sim._seq += 1
        self._waiting_on = bootstrap

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current event (which may still fire
        later and is ignored). Interrupting a finished process is an error.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        carrier = Event(self.sim)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier.defused = True

        waiting_on = self._waiting_on
        if waiting_on is not None and not waiting_on._processed:
            try:
                waiting_on.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
            if not waiting_on.callbacks:
                # Abandoned with no other waiters: if the event later
                # fails (a replication quorum collapsing under a
                # crash-killed handler, a timeout racing the interrupt)
                # nobody is left to observe it — defuse so the failure
                # cannot raise into the run loop.
                waiting_on.defused = True
        self._waiting_on = carrier
        carrier.callbacks.append(self._resume_cb)
        self.sim.schedule(carrier)

    # -- internals ----------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        if trigger is not self._waiting_on:
            # A stale event (e.g. one abandoned by an interrupt) fired.
            return
        self._waiting_on = None  # type: ignore[assignment]
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                trigger.defused = True
                target = self._throw(trigger._value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process quietly with the
            # interrupt as a failure value for anyone joined on it.
            self._ok = False
            self._value = exc
            self.defused = True
            sim = self.sim
            heappush(sim._heap, (sim._now, sim._seq, self))
            sim._seq += 1
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return

        if not isinstance(target, Event):
            error = TypeError(
                f"process yielded {target!r}; processes must yield Events")
            self._crash(error)
            return

        if target._processed:
            # The yielded event fired during an earlier simulator step; relay
            # its outcome through a fresh immediate event.
            relay = Event(self.sim)
            relay._ok = target._ok
            relay._value = target._value
            if relay._ok is False:
                target.defused = True
                relay.defused = True
            self._waiting_on = relay
            relay.callbacks.append(self._resume_cb)
            self.sim.schedule(relay)
        else:
            if target._ok is False:
                target.defused = True
            self._waiting_on = target
            target.callbacks.append(self._resume_cb)

    def _crash(self, error: BaseException) -> None:
        """Terminate the generator with ``error`` and fail the process."""
        try:
            self._generator.throw(error)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001
            self.fail(exc)
            return
        self.fail(error)
