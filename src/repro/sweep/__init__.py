"""Deterministic parallel experiment sweeps (ROADMAP item 4, phase 2).

The figures, ablations, nemesis scenarios and sansim trials are
embarrassingly parallel across (experiment, config, seed) *cells*: every
grid point builds a fresh :class:`~repro.sim.core.Simulator` and a fresh
seeded RNG, so cells share no state and can run in any order — or in
different processes — without changing a single bit of any result.

This package exploits that:

* :mod:`repro.sweep.cells` enumerates the cells of a named sweep in a
  canonical order;
* :mod:`repro.sweep.worker` runs one cell and returns a typed, picklable
  :class:`CellResult` (an ExperimentResult-shaped payload plus a SHA-256
  fingerprint of it);
* :mod:`repro.sweep.cache` is a content-addressed on-disk cell cache
  keyed by (cell config, code fingerprint), so re-running a sweep only
  recomputes cells whose inputs actually changed;
* :mod:`repro.sweep.runner` fans cells across cores with a
  spawn-context ``ProcessPoolExecutor`` and merges results in canonical
  cell order, making the merged report byte-identical to a serial run.

Surfaced on the CLI as ``repro sweep`` (see docs/PERFORMANCE.md).
"""

from .cache import CellCache, code_fingerprint
from .cells import SweepCell, sweep_cells, sweep_names
from .runner import (
    SweepResult,
    SweepWorkerError,
    default_jobs,
    run_sweep,
    sweep_experiment,
)
from .worker import CellResult, run_cell

__all__ = [
    "CellCache",
    "CellResult",
    "SweepCell",
    "SweepResult",
    "SweepWorkerError",
    "code_fingerprint",
    "default_jobs",
    "run_cell",
    "run_sweep",
    "sweep_cells",
    "sweep_experiment",
    "sweep_names",
]
