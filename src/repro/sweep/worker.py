"""Run one sweep cell; return a typed, picklable result.

Every cell runner returns the same payload shape — a JSON-safe dict
with ``name``/``headers``/``rows``/``series``/``notes``, i.e. an
:class:`~repro.harness.experiments.ExperimentResult` flattened to plain
lists — so merging is uniform across figures, ablations, nemesis
scenarios and sansim trials, and the merged report serializes
identically whether a cell was computed in-process, in a spawn worker,
or loaded from the on-disk cache.

Determinism: the payload is normalized by :func:`_jsonify` (tuples to
lists, nothing else touched — floats keep their exact values, and
``repr``/JSON of a float is the shortest round-trip form, identical in
every CPython process on a platform). The fingerprint is a SHA-256 over
the canonical JSON serialization, so equal payloads always hash equal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict

from ..bench.runner import host_clock
from .cells import SweepCell

__all__ = ["CellResult", "run_cell", "canonical_json", "payload_fingerprint"]


@dataclass(frozen=True)
class CellResult:
    """The outcome of one cell: payload + provenance.

    ``payload`` is deterministic (identical for identical cell params
    and code); ``host_seconds`` and ``cache_hit`` are provenance only
    and are excluded from merged reports and fingerprints.
    """

    sweep: str
    index: int
    label: str
    payload: Dict[str, Any]
    fingerprint: str
    host_seconds: float
    cache_hit: bool = False

    def as_cached(self) -> "CellResult":
        return replace(self, cache_hit=True, host_seconds=0.0)


def canonical_json(value: Any) -> str:
    """The one serialization fingerprints and cache keys are built on."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def payload_fingerprint(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _jsonify(value: Any) -> Any:
    """Normalize to exactly what ``json.load`` would return.

    Tuples become lists and dict keys become strings; scalars pass
    through untouched. Cached results round-trip through JSON, so fresh
    results must already be in that normal form for byte-equality.
    """
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise TypeError(
        f"cell payloads must be JSON-safe; got {type(value).__name__}: "
        f"{value!r}")


def _experiment_payload(result: Any) -> Dict[str, Any]:
    """Flatten an ExperimentResult to the uniform payload shape."""
    return _jsonify({
        "name": result.name,
        "headers": result.headers,
        "rows": result.rows,
        "series": {key: [xs, ys]
                   for key, (xs, ys) in result.series.items()},
        "notes": result.notes,
    })


# ---------------------------------------------------------------------------
# Cell runners. Imports are deferred so a spawn worker only pays for the
# subsystems its cells actually touch.
# ---------------------------------------------------------------------------

def _figure1_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.experiments import run_figure1

    return _experiment_payload(run_figure1(
        write_latencies=(params["write_latency"],),
        skews=(params["skew"],),
        rounds=params["rounds"], seed=params["seed"]))


def _figure6_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.experiments import run_figure6

    return _experiment_payload(run_figure6(
        client_counts=(params["num_clients"],),
        alphas=(params["alpha"],),
        num_keys=params["num_keys"], duration=params["duration"],
        warmup=params["warmup"], seed=params["seed"]))


def _figure7_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.experiments import run_figure7

    return _experiment_payload(run_figure7(
        alphas=(params["alpha"],),
        clock_presets=(params["clock_preset"],),
        backends=(params["backend"],),
        num_clients=params["num_clients"], num_keys=params["num_keys"],
        duration=params["duration"], warmup=params["warmup"],
        seed=params["seed"]))


def _figure8_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.experiments import run_figure8

    return _experiment_payload(run_figure8(
        client_counts=(params["num_clients"],),
        backends=(params["backend"],),
        local_validation=(params["local_validation"],),
        alpha=params["alpha"], num_keys=params["num_keys"],
        duration=params["duration"], warmup=params["warmup"],
        seed=params["seed"]))


def _ablation_packing_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.ablations import run_packing_delay_ablation

    return _experiment_payload(run_packing_delay_ablation(
        delays=(params["delay"],), num_keys=params["num_keys"],
        get_percent=params["get_percent"], duration=params["duration"],
        warmup=params["warmup"], num_workers=params["num_workers"],
        seed=params["seed"]))


def _ablation_replication_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.ablations import run_replication_factor_ablation

    return _experiment_payload(run_replication_factor_ablation(
        replica_counts=(params["replicas"],),
        num_clients=params["num_clients"], num_keys=params["num_keys"],
        alpha=params["alpha"], duration=params["duration"],
        warmup=params["warmup"], seed=params["seed"]))


def _ablation_watermark_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.ablations import run_watermark_interval_ablation

    return _experiment_payload(run_watermark_interval_ablation(
        intervals=(params["interval"],),
        num_clients=params["num_clients"], num_keys=params["num_keys"],
        alpha=params["alpha"], duration=params["duration"],
        warmup=params["warmup"], seed=params["seed"]))


def _ablation_gc_window_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.ablations import run_gc_window_ablation

    return _experiment_payload(run_gc_window_ablation(
        windows=(params["window"],), num_keys=params["num_keys"],
        get_percent=params["get_percent"], duration=params["duration"],
        warmup=params["warmup"], num_workers=params["num_workers"],
        seed=params["seed"]))


def _ablation_caching_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.ablations import run_client_caching_ablation

    return _experiment_payload(run_client_caching_ablation(
        alphas=(params["alpha"],), num_clients=params["num_clients"],
        num_keys=params["num_keys"],
        txns_per_client=params["txns_per_client"],
        seed=params["seed"]))


def _nemesis_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..harness.nemesis import nemesis_config, run_nemesis

    scenario = params["scenario"]
    config = nemesis_config(
        with_master=(scenario == "isolate-master"))
    result = run_nemesis(
        scenario, config=config, workload=params["workload"],
        duration=params["duration"], fault_start=params["fault_start"],
        fault_duration=params["fault_duration"], alpha=params["alpha"])
    metrics = result.metrics
    return _jsonify({
        "name": "Nemesis scenario sweep",
        "headers": ["scenario", "committed", "aborted", "abort rate",
                    "txn/s", "audit passed", "records synced"],
        "rows": [[scenario, metrics.committed, metrics.aborted,
                  metrics.abort_rate, metrics.throughput,
                  result.passed, result.records_synced]],
        "series": {},
        "notes": "Every scenario must pass its post-heal audit.",
    })


def _sansim_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    from ..sansim.explorer import TrialSpec, run_trial

    spec = TrialSpec(workload=params["workload"], trial=params["trial"],
                     policy=params["policy"], seed=params["seed"])
    result = run_trial(spec)
    fingerprints = sorted({w.fingerprint for w in result.witnesses})
    return _jsonify({
        "name": "Sansim trial sweep",
        "headers": ["workload", "trial", "policy", "witnesses",
                    "distinct fingerprints"],
        "rows": [[spec.workload, spec.trial, spec.policy,
                  len(result.witnesses), len(fingerprints)]],
        "series": {},
        "notes": "Feedback-free policies only (fifo/random); targeted "
                 "trials need cross-trial state and stay serial.",
    })


def _selftest_cell(params: Dict[str, Any]) -> Dict[str, Any]:
    if params["fail"]:
        raise ValueError("selftest cell failure injected via fail_at")
    value = params["value"]
    seed = params["seed"]
    return _jsonify({
        "name": "Sweep selftest",
        "headers": ["value", "square", "scaled"],
        "rows": [[value, value * value, value * 0.1 + seed]],
        "series": {"square": [[value], [value * value]]},
        "notes": "",
    })


def _runner_for(name: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    # Rebuilt per call rather than held as module state (PAR001).
    runners: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
        "figure1_cell": _figure1_cell,
        "figure6_cell": _figure6_cell,
        "figure7_cell": _figure7_cell,
        "figure8_cell": _figure8_cell,
        "ablation_packing_cell": _ablation_packing_cell,
        "ablation_replication_cell": _ablation_replication_cell,
        "ablation_watermark_cell": _ablation_watermark_cell,
        "ablation_gc_window_cell": _ablation_gc_window_cell,
        "ablation_caching_cell": _ablation_caching_cell,
        "nemesis_cell": _nemesis_cell,
        "sansim_cell": _sansim_cell,
        "selftest_cell": _selftest_cell,
    }
    if name not in runners:
        raise ValueError(f"unknown cell runner {name!r}")
    return runners[name]


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one cell in the current process and package the result."""
    runner = _runner_for(cell.runner)
    start = host_clock()
    payload = runner(cell.params_dict())
    seconds = host_clock() - start
    return CellResult(
        sweep=cell.sweep, index=cell.index, label=cell.label,
        payload=payload, fingerprint=payload_fingerprint(payload),
        host_seconds=seconds, cache_hit=False)
