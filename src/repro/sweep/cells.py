"""Cell enumeration: decompose a sweep into independent grid points.

A *cell* is one independently runnable grid point of an experiment
sweep. The decomposition leans on a property every harness driver
already has: each grid point builds a fresh ``Simulator`` and derives
its RNG from a fixed seed (or a per-point substream that draws nothing
from the parent), so running one point alone produces bit-identical
results to running it inside the full driver loop.

Cells are enumerated in **canonical order** — exactly the driver's loop
nesting — so that results merged in cell order reproduce the serial
driver's row order. Grid parameters may be overridden per sweep
invocation (``repro sweep figure8 --scale quick`` and the benchmark
drivers in ``benchmarks/`` both go through here).

Parallelism hygiene (simlint rule PAR001): this module keeps **no**
module-level mutable state — sweep definitions are plain functions and
the registry is rebuilt per call — because every module imported by a
sweep worker is re-imported in a fresh spawn-context interpreter and
module state would silently diverge between parent and workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["SweepCell", "sweep_cells", "sweep_names"]


@dataclass(frozen=True)
class SweepCell:
    """One independently runnable grid point of a sweep.

    ``params`` is a tuple of ``(name, value)`` pairs (scalars only) so
    the cell is hashable, picklable and JSON-stable — the cache key is
    derived from it. ``index`` is the cell's position in canonical
    order; merging results sorted by ``index`` reproduces the serial
    driver's output.
    """

    sweep: str
    index: int
    label: str
    runner: str
    params: Tuple[Tuple[str, Any], ...]

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


def _cell(sweep: str, index: int, label: str, runner: str,
          params: Dict[str, Any]) -> SweepCell:
    return SweepCell(sweep=sweep, index=index, label=label, runner=runner,
                     params=tuple(sorted(params.items())))


def _merged(defaults: Dict[str, Any],
            overrides: Dict[str, Any]) -> Dict[str, Any]:
    unknown = set(overrides) - set(defaults)
    if unknown:
        raise ValueError(
            f"unknown sweep override(s) {sorted(unknown)}; expected a "
            f"subset of {sorted(defaults)}")
    merged = dict(defaults)
    merged.update(overrides)
    return merged


# ---------------------------------------------------------------------------
# Sweep definitions. Each returns cells in canonical (driver loop) order.
# ---------------------------------------------------------------------------

def _figure1_cells(scale: str, overrides: Dict[str, Any]) -> List[SweepCell]:
    defaults: Dict[str, Any] = {
        "write_latencies": (0.2e-6, 100e-6),
        "skews": (0.0, 1e-6, 10e-6, 100e-6, 1e-3),
        "rounds": 150 if scale == "full" else 60,
        "seed": 3,
    }
    grid = _merged(defaults, overrides)
    cells = []
    for t_w in grid["write_latencies"]:
        for epsilon in grid["skews"]:
            cells.append(_cell(
                "figure1", len(cells),
                f"tw={t_w * 1e6:g}us/eps={epsilon * 1e6:g}us",
                "figure1_cell",
                {"write_latency": t_w, "skew": epsilon,
                 "rounds": grid["rounds"], "seed": grid["seed"]}))
    return cells


def _figure6_cells(scale: str, overrides: Dict[str, Any]) -> List[SweepCell]:
    # run_figure6 iterates both backends internally (they are not a
    # parameter), so the cell granularity is (alpha, clients); each cell
    # carries both backends' rows and the merge orders rows
    # alpha-major rather than the serial driver's backend-major order.
    if scale == "full":
        defaults: Dict[str, Any] = {
            "client_counts": (2, 4, 8, 12, 16),
            "alphas": (0.5, 0.75, 0.95),
            "num_keys": 400, "duration": 0.4, "warmup": 0.1, "seed": 11,
        }
    else:
        defaults = {
            "client_counts": (2, 8), "alphas": (0.5, 0.95),
            "num_keys": 200, "duration": 0.15, "warmup": 0.04, "seed": 11,
        }
    grid = _merged(defaults, overrides)
    cells = []
    for alpha in grid["alphas"]:
        for num_clients in grid["client_counts"]:
            cells.append(_cell(
                "figure6", len(cells), f"a={alpha:g}/c={num_clients}",
                "figure6_cell",
                {"alpha": alpha, "num_clients": num_clients,
                 "num_keys": grid["num_keys"],
                 "duration": grid["duration"], "warmup": grid["warmup"],
                 "seed": grid["seed"]}))
    return cells


def _figure7_cells(scale: str, overrides: Dict[str, Any]) -> List[SweepCell]:
    if scale == "full":
        defaults: Dict[str, Any] = {
            "alphas": (0.4, 0.5, 0.6, 0.7, 0.8),
            "clock_presets": ("ptp-sw", "ntp"),
            "backends": ("dram", "vftl", "mftl"),
            "num_clients": 20, "num_keys": 1000,
            "duration": 0.4, "warmup": 0.1, "seed": 13,
        }
    else:
        defaults = {
            "alphas": (0.5, 0.8), "clock_presets": ("ptp-sw", "ntp"),
            "backends": ("dram", "mftl"), "num_clients": 10,
            "num_keys": 1000, "duration": 0.2, "warmup": 0.05, "seed": 13,
        }
    grid = _merged(defaults, overrides)
    cells = []
    for clock_preset in grid["clock_presets"]:
        for backend in grid["backends"]:
            for alpha in grid["alphas"]:
                cells.append(_cell(
                    "figure7", len(cells),
                    f"{clock_preset}/{backend}/a={alpha:g}",
                    "figure7_cell",
                    {"clock_preset": clock_preset, "backend": backend,
                     "alpha": alpha, "num_clients": grid["num_clients"],
                     "num_keys": grid["num_keys"],
                     "duration": grid["duration"],
                     "warmup": grid["warmup"], "seed": grid["seed"]}))
    return cells


def _figure8_cells(scale: str, overrides: Dict[str, Any]) -> List[SweepCell]:
    if scale == "full":
        defaults: Dict[str, Any] = {
            "client_counts": (4, 8, 16, 28, 40),
            "backends": ("dram", "vftl", "mftl"),
            "local_validation": (True, False),
            "alpha": 0.6, "num_keys": 3000,
            "duration": 0.4, "warmup": 0.1, "seed": 17,
        }
    else:
        defaults = {
            "client_counts": (8, 24), "backends": ("dram", "mftl"),
            "local_validation": (True, False),
            "alpha": 0.6, "num_keys": 3000,
            "duration": 0.15, "warmup": 0.04, "seed": 17,
        }
    grid = _merged(defaults, overrides)
    cells = []
    for backend in grid["backends"]:
        for lv in grid["local_validation"]:
            for num_clients in grid["client_counts"]:
                cells.append(_cell(
                    "figure8", len(cells),
                    f"{backend}/{'LV' if lv else 'noLV'}/c={num_clients}",
                    "figure8_cell",
                    {"backend": backend, "local_validation": lv,
                     "num_clients": num_clients, "alpha": grid["alpha"],
                     "num_keys": grid["num_keys"],
                     "duration": grid["duration"],
                     "warmup": grid["warmup"], "seed": grid["seed"]}))
    return cells


def _ablation_cells(sweep: str, runner: str, value_key: str,
                    cell_key: str, scale: str, defaults: Dict[str, Any],
                    overrides: Dict[str, Any]) -> List[SweepCell]:
    grid = _merged(defaults, overrides)
    values = grid.pop(value_key)
    cells = []
    for value in values:
        params = dict(grid)
        params[cell_key] = value
        cells.append(_cell(
            sweep, len(cells), f"{cell_key}={value:g}", runner, params))
    return cells


def _ablation_packing_cells(scale, overrides):
    if scale == "full":
        defaults: Dict[str, Any] = {
            "delays": (0.0, 0.25e-3, 0.5e-3, 1e-3, 2e-3),
            "num_keys": 2000, "get_percent": 50.0, "duration": 0.06,
            "warmup": 0.02, "num_workers": 64, "seed": 41,
        }
    else:
        defaults = {
            "delays": (0.0, 1e-3), "num_keys": 2000, "get_percent": 50.0,
            "duration": 0.04, "warmup": 0.01, "num_workers": 32,
            "seed": 41,
        }
    return _ablation_cells("ablation-packing", "ablation_packing_cell",
                           "delays", "delay", scale, defaults, overrides)


def _ablation_replication_cells(scale, overrides):
    if scale == "full":
        defaults: Dict[str, Any] = {
            "replica_counts": (1, 3, 5), "num_clients": 8,
            "num_keys": 1000, "alpha": 0.6, "duration": 0.25,
            "warmup": 0.05, "seed": 43,
        }
    else:
        defaults = {
            "replica_counts": (1, 3), "num_clients": 4, "num_keys": 1000,
            "alpha": 0.6, "duration": 0.12, "warmup": 0.03, "seed": 43,
        }
    return _ablation_cells(
        "ablation-replication", "ablation_replication_cell",
        "replica_counts", "replicas", scale, defaults, overrides)


def _ablation_watermark_cells(scale, overrides):
    if scale == "full":
        defaults: Dict[str, Any] = {
            "intervals": (0.01, 0.05, 0.2), "num_clients": 8,
            "num_keys": 800, "alpha": 0.7, "duration": 0.3,
            "warmup": 0.05, "seed": 47,
        }
    else:
        defaults = {
            "intervals": (0.01, 0.2), "num_clients": 4, "num_keys": 800,
            "alpha": 0.7, "duration": 0.15, "warmup": 0.04, "seed": 47,
        }
    return _ablation_cells(
        "ablation-watermark", "ablation_watermark_cell",
        "intervals", "interval", scale, defaults, overrides)


def _ablation_gc_window_cells(scale, overrides):
    if scale == "full":
        defaults: Dict[str, Any] = {
            "windows": (0.002, 0.01, 0.05), "num_keys": 2000,
            "get_percent": 50.0, "duration": 0.08, "warmup": 0.02,
            "num_workers": 64, "seed": 53,
        }
    else:
        defaults = {
            "windows": (0.002, 0.02), "num_keys": 2000,
            "get_percent": 50.0, "duration": 0.04, "warmup": 0.01,
            "num_workers": 32, "seed": 53,
        }
    return _ablation_cells(
        "ablation-gc-window", "ablation_gc_window_cell",
        "windows", "window", scale, defaults, overrides)


def _ablation_caching_cells(scale, overrides):
    if scale == "full":
        defaults: Dict[str, Any] = {
            "alphas": (0.4, 0.8), "num_clients": 8, "num_keys": 1000,
            "txns_per_client": 150, "seed": 59,
        }
    else:
        defaults = {
            "alphas": (0.4, 0.8), "num_clients": 4, "num_keys": 1000,
            "txns_per_client": 60, "seed": 59,
        }
    return _ablation_cells(
        "ablation-caching", "ablation_caching_cell",
        "alphas", "alpha", scale, defaults, overrides)


def _nemesis_cells(scale: str, overrides: Dict[str, Any]) -> List[SweepCell]:
    # Import deferred: cells.py is imported by spawn workers.
    from ..harness.nemesis import SCENARIOS

    quick_scenarios = ("partition", "crash-restart", "clock-storm")
    defaults: Dict[str, Any] = {
        "scenarios": (tuple(sorted(SCENARIOS)) if scale == "full"
                      else quick_scenarios),
        "workload": "retwis",
        "duration": 0.3 if scale == "full" else 0.2,
        "fault_start": 0.05,
        "fault_duration": 0.15 if scale == "full" else 0.1,
        "alpha": 0.8,
    }
    grid = _merged(defaults, overrides)
    cells = []
    for scenario in grid["scenarios"]:
        cells.append(_cell(
            "nemesis", len(cells), scenario, "nemesis_cell",
            {"scenario": scenario, "workload": grid["workload"],
             "duration": grid["duration"],
             "fault_start": grid["fault_start"],
             "fault_duration": grid["fault_duration"],
             "alpha": grid["alpha"]}))
    return cells


def _sansim_cells(scale: str, overrides: Dict[str, Any]) -> List[SweepCell]:
    # Targeted-policy trials feed hot locations discovered by earlier
    # trials back into the scheduler, which is inherently sequential;
    # the sweep therefore runs only the feedback-free fifo/random
    # policies, which are independent per (workload, trial).
    defaults: Dict[str, Any] = {
        "workloads": ("retwis", "ycsb", "ctp-race"),
        "trials": 8 if scale == "full" else 3,
        "seed": 0,
    }
    grid = _merged(defaults, overrides)
    cells = []
    for workload in grid["workloads"]:
        for trial in range(grid["trials"]):
            policy = "fifo" if trial == 0 else "random"
            cells.append(_cell(
                "sansim", len(cells), f"{workload}:{trial}:{policy}",
                "sansim_cell",
                {"workload": workload, "trial": trial, "policy": policy,
                 "seed": grid["seed"]}))
    return cells


def _selftest_cells(scale: str, overrides: Dict[str, Any]) -> List[SweepCell]:
    # Hidden sweep used by the test suite: cheap deterministic cells
    # with an optional injected failure at one index.
    defaults: Dict[str, Any] = {
        "values": tuple(range(6 if scale == "full" else 4)),
        "fail_at": -1,
        "seed": 1,
    }
    grid = _merged(defaults, overrides)
    cells = []
    for value in grid["values"]:
        index = len(cells)
        cells.append(_cell(
            "selftest", index, f"v={value}", "selftest_cell",
            {"value": value, "fail": index == grid["fail_at"],
             "seed": grid["seed"]}))
    return cells


def _definitions() -> Dict[str, Any]:
    return {
        "figure1": _figure1_cells,
        "figure6": _figure6_cells,
        "figure7": _figure7_cells,
        "figure8": _figure8_cells,
        "ablation-packing": _ablation_packing_cells,
        "ablation-replication": _ablation_replication_cells,
        "ablation-watermark": _ablation_watermark_cells,
        "ablation-gc-window": _ablation_gc_window_cells,
        "ablation-caching": _ablation_caching_cells,
        "nemesis": _nemesis_cells,
        "sansim": _sansim_cells,
        "selftest": _selftest_cells,
    }


def sweep_names(include_hidden: bool = False) -> Tuple[str, ...]:
    """Names accepted by :func:`sweep_cells`, in display order."""
    names = [name for name in _definitions()
             if include_hidden or name != "selftest"]
    return tuple(names)


def sweep_cells(name: str, scale: str = "quick",
                **overrides: Any) -> Sequence[SweepCell]:
    """Enumerate the cells of sweep ``name`` in canonical order.

    ``scale`` selects the full grids (driver defaults) or the quick CI
    grids; keyword overrides replace individual grid/shared parameters
    (unknown keys raise, so typos cannot silently shrink a sweep).
    """
    definitions = _definitions()
    if name not in definitions:
        raise ValueError(
            f"unknown sweep {name!r}; choose from "
            f"{sorted(definitions)}")
    if scale not in ("quick", "full"):
        raise ValueError(f"unknown scale {scale!r}; use 'quick' or 'full'")
    return definitions[name](scale, dict(overrides))
