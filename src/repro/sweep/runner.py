"""Fan sweep cells across cores; merge results deterministically.

The parallel scheme is intentionally boring: enumerate cells in
canonical order, run each in a **spawn-context** worker process (fork
would duplicate parent state — RNGs, open files, module caches — into
workers; spawn re-imports from source, so a worker computes exactly
what a fresh serial interpreter would), then merge results **by cell
index**. Workers race only for completion order, which the merge
discards, so the merged report is byte-identical for every ``-j`` —
``tests/test_sweep.py`` pins that across ``-j 1/2/4``.

Failures surface, never hang: a cell that raises is re-raised as
:class:`SweepWorkerError` naming the cell (``sweep#index (label)``),
and a worker process dying outright (BrokenProcessPool) is wrapped the
same way.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..bench.runner import host_clock
from ..harness.experiments import ExperimentResult
from .cache import CellCache
from .cells import SweepCell, sweep_cells
from .worker import CellResult, run_cell

__all__ = [
    "SweepResult",
    "SweepWorkerError",
    "default_jobs",
    "run_sweep",
    "sweep_experiment",
]

#: Merged-report layout version.
REPORT_SCHEMA = 1


class SweepWorkerError(RuntimeError):
    """A cell failed (or its worker process died); names the cell."""


def default_jobs() -> int:
    """Default worker count: all cores but one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def _cell_id(cell: SweepCell) -> str:
    return f"{cell.sweep}#{cell.index} ({cell.label})"


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn children via PYTHONPATH.

    Spawn workers inherit the environment but not ``sys.path``
    mutations, so a parent that found ``repro`` through a manipulated
    path (pytest, PYTHONPATH=src) must pass the package root along.
    """
    package_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    # Host-side orchestration, not simulated code: this env var only
    # controls how worker interpreters find the package, never what the
    # simulation computes.
    existing = os.environ.get("PYTHONPATH", "")  # simlint: disable=DET004
    parts = existing.split(os.pathsep) if existing else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = (  # simlint: disable=DET004
            os.pathsep.join([package_root] + parts) if parts
            else package_root)


@dataclass
class SweepResult:
    """Merged outcome of one sweep run.

    ``results`` is in canonical cell order. The *deterministic* surface
    — :meth:`report_document`, :meth:`report_json`, :meth:`render` —
    excludes all provenance (timing, worker count, cache hits), so it
    is byte-identical across ``-j`` values and cache states;
    :meth:`summary` carries the provenance.
    """

    sweep: str
    scale: str
    results: List[CellResult]
    jobs: int = 1
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    overrides: Dict[str, Any] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = len(self.results)
        return self.cache_hits / total if total else 0.0

    def report_document(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "sweep": self.sweep,
            "scale": self.scale,
            "cells": [
                {
                    "index": result.index,
                    "label": result.label,
                    "fingerprint": result.fingerprint,
                    "payload": result.payload,
                }
                for result in self.results
            ],
        }

    def report_json(self) -> str:
        return json.dumps(self.report_document(), sort_keys=True,
                          indent=1) + "\n"

    def to_experiment_result(self) -> ExperimentResult:
        """Merge cell payloads into one ExperimentResult.

        Rows concatenate in cell order; series points append per key in
        cell order — for sweeps whose cell order matches the serial
        driver's loop nesting (figures 1/7/8, the ablations) the merged
        result equals the driver's output exactly.
        """
        if not self.results:
            return ExperimentResult(
                name=f"{self.sweep} (empty sweep)", headers=[], rows=[])
        first = self.results[0].payload
        rows: List[list] = []
        series: Dict[str, tuple] = {}
        for result in self.results:
            payload = result.payload
            rows.extend(payload["rows"])
            for key, (xs, ys) in payload["series"].items():
                if key in series:
                    old_xs, old_ys = series[key]
                    series[key] = (old_xs + list(xs), old_ys + list(ys))
                else:
                    series[key] = (list(xs), list(ys))
        return ExperimentResult(
            name=first["name"], headers=list(first["headers"]),
            rows=rows, series=series, notes=first["notes"])

    def render(self) -> str:
        """Deterministic text report (merged tables + fingerprints)."""
        lines = [
            f"sweep: {self.sweep} (scale={self.scale}, "
            f"cells={len(self.results)})",
            "",
            self.to_experiment_result().render(),
            "",
            "cell fingerprints:",
        ]
        for result in self.results:
            lines.append(f"  {result.index:3d}  {result.label:<28} "
                         f"{result.fingerprint}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Provenance line: timing, workers, cache accounting."""
        computed = len(self.results) - self.cache_hits
        return (f"{self.sweep}: {len(self.results)} cells in "
                f"{self.elapsed_seconds:.2f}s host "
                f"(jobs={self.jobs}, computed={computed}, "
                f"cache hits={self.cache_hits} "
                f"misses={self.cache_misses}, "
                f"hit rate={self.hit_rate:.0%})")


def _run_cells_parallel(
    todo: Sequence[SweepCell],
    jobs: int,
    progress: Optional[Callable[[str], None]],
) -> Dict[int, CellResult]:
    _ensure_child_import_path()
    fresh: Dict[int, CellResult] = {}
    executor = ProcessPoolExecutor(
        max_workers=min(jobs, len(todo)),
        mp_context=get_context("spawn"))
    try:
        futures = [(cell, executor.submit(run_cell, cell))
                   for cell in todo]
        for cell, future in futures:
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                raise SweepWorkerError(
                    f"worker process died while running "
                    f"{_cell_id(cell)}: {exc}") from exc
            except SweepWorkerError:
                raise
            except Exception as exc:
                raise SweepWorkerError(
                    f"cell {_cell_id(cell)} failed: "
                    f"{type(exc).__name__}: {exc}") from exc
            fresh[cell.index] = result
            if progress is not None:
                progress(f"[{cell.index + 1}] {_cell_id(cell)} done "
                         f"({result.host_seconds:.2f}s)")
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return fresh


def run_sweep(
    name: str,
    scale: str = "quick",
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    refresh: bool = False,
    overrides: Optional[Dict[str, Any]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run every cell of sweep ``name``; merge in canonical order.

    ``jobs > 1`` fans uncached cells across spawn-context worker
    processes. ``cache`` (optional) short-circuits cells whose
    (config, code) key has a stored result; ``refresh`` recomputes and
    overwrites them instead. The merged report is byte-identical for
    every ``jobs`` value and cache state.
    """
    overrides = dict(overrides or {})
    start = host_clock()
    cells = list(sweep_cells(name, scale=scale, **overrides))

    merged: Dict[int, CellResult] = {}
    todo: List[SweepCell] = []
    if cache is not None and not refresh:
        for cell in cells:
            hit = cache.get(cell)
            if hit is not None:
                merged[cell.index] = hit
            else:
                todo.append(cell)
    else:
        todo = list(cells)

    cache_hits = len(merged)
    if todo:
        if jobs > 1 and len(todo) > 1:
            fresh = _run_cells_parallel(todo, jobs, progress)
        else:
            fresh = {}
            for cell in todo:
                try:
                    result = run_cell(cell)
                except Exception as exc:
                    raise SweepWorkerError(
                        f"cell {_cell_id(cell)} failed: "
                        f"{type(exc).__name__}: {exc}") from exc
                fresh[cell.index] = result
                if progress is not None:
                    progress(f"[{cell.index + 1}] {_cell_id(cell)} done "
                             f"({result.host_seconds:.2f}s)")
        if cache is not None:
            for cell in todo:
                cache.put(cell, fresh[cell.index])
        merged.update(fresh)

    results = [merged[cell.index] for cell in cells]
    return SweepResult(
        sweep=name, scale=scale, results=results, jobs=jobs,
        elapsed_seconds=host_clock() - start,
        cache_hits=cache_hits, cache_misses=len(todo),
        overrides=overrides)


def sweep_experiment(
    name: str,
    jobs: int = 1,
    scale: str = "quick",
    cache: Optional[CellCache] = None,
    refresh: bool = False,
    **overrides: Any,
) -> ExperimentResult:
    """Drop-in ExperimentResult via the sweep runner.

    The benchmark drivers in ``benchmarks/`` call this instead of the
    serial ``run_figureX`` drivers; keyword overrides are the same grid
    parameters those drivers take.
    """
    return run_sweep(name, scale=scale, jobs=jobs, cache=cache,
                     refresh=refresh,
                     overrides=overrides).to_experiment_result()
