"""Content-addressed on-disk cache of sweep cell results.

A cell's cache key is the SHA-256 of the canonical JSON of::

    {schema, code fingerprint, runner, params}

* ``params`` already pins the seed (it is an ordinary cell parameter),
  so two cells differing only in seed never collide;
* the **code fingerprint** is a SHA-256 over every ``.py`` file of the
  installed ``repro`` package (path + content), so any source change —
  kernel, harness, workloads — invalidates the whole cache rather than
  risking stale results after a refactor;
* the sweep name and cell index are deliberately **excluded**: a quick
  grid is a subset of the full grid, and shared cells hit the same
  entries regardless of which sweep or position enumerated them.

Entries are single JSON files under ``<root>/<key[:2]>/<key>.json``,
written atomically (tmp + rename) so a crashed or parallel writer can
never leave a torn entry; rereads verify the stored payload fingerprint
and treat mismatches as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from .cells import SweepCell
from .worker import CellResult, canonical_json, payload_fingerprint

__all__ = ["CellCache", "code_fingerprint", "DEFAULT_CACHE_DIR"]

#: Cache-entry layout version; bump on incompatible entry changes.
CACHE_SCHEMA = 1

#: Default location, relative to a repository checkout.
DEFAULT_CACHE_DIR = "benchmarks/results/cache"


def code_fingerprint() -> str:
    """SHA-256 over the repro package sources (relative path + bytes)."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class CellCache:
    """Content-addressed cell store with hit/miss/store accounting."""

    def __init__(self, root: str,
                 code_fp: Optional[str] = None) -> None:
        self.root = Path(root)
        self.code_fp = code_fp if code_fp is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, cell: SweepCell) -> str:
        material = canonical_json({
            "schema": CACHE_SCHEMA,
            "code": self.code_fp,
            "runner": cell.runner,
            "params": dict(cell.params),
        })
        return hashlib.sha256(material.encode()).hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, cell: SweepCell) -> Optional[CellResult]:
        """Return the cached result for ``cell``, or None on a miss."""
        path = self._path_for(self.key_for(cell))
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        payload = entry.get("payload")
        if (entry.get("schema") != CACHE_SCHEMA or payload is None
                or entry.get("fingerprint")
                != payload_fingerprint(payload)):
            # Torn/stale/corrupt entry: treat as a miss; the fresh
            # result will overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        return CellResult(
            sweep=cell.sweep, index=cell.index, label=cell.label,
            payload=payload,
            fingerprint=entry["fingerprint"],
            host_seconds=0.0, cache_hit=True)

    def put(self, cell: SweepCell, result: CellResult) -> None:
        """Store ``result`` atomically (tmp file + rename)."""
        path = self._path_for(self.key_for(cell))
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "runner": cell.runner,
            "params": dict(cell.params),
            "payload": result.payload,
            "fingerprint": result.fingerprint,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
