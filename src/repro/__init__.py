"""Reproduction of "Enabling Lightweight Transactions with Precision Time"
(Misra, Chase, Gehrke, Lebeck — ASPLOS 2017).

Two systems over simulated substrates:

* **SEMEL** (:mod:`repro.semel`) — a sharded, replicated, multi-version
  key-value store whose versions are precision-time timestamps, with
  lightweight *inconsistent* (unordered) primary/backup replication and an
  SDF-integrated multi-version FTL (:mod:`repro.ftl`);
* **MILANA** (:mod:`repro.milana`) — serializable ACID transactions via
  client-coordinated OCC + 2PC, with client-local validation of read-only
  transactions.

Substrates built from scratch: a discrete-event simulator
(:mod:`repro.sim`), PTP/NTP clock models (:mod:`repro.clocks`), a
functional+timing NAND flash device (:mod:`repro.flash`), four storage
engines (:mod:`repro.ftl`), and an intra-DC network/RPC layer
(:mod:`repro.net`). The evaluation harness (:mod:`repro.harness`)
regenerates every table and figure of the paper's §5.

Quickstart::

    from repro import Cluster, ClusterConfig, COMMITTED

    cluster = Cluster(ClusterConfig(num_shards=2, num_clients=2,
                                    backend="mftl", clock_preset="ptp-sw",
                                    populate_keys=100))
    client = cluster.clients[0]

    def transfer():
        txn = client.begin()
        a = yield client.txn_get(txn, "key:1")
        client.put(txn, "key:2", a)
        outcome = yield client.commit(txn)
        return outcome

    print(cluster.sim.run_until_event(cluster.sim.process(transfer())))
"""

from .harness.cluster import Cluster, ClusterConfig
from .milana.client import MilanaClient, TransactionAborted
from .milana.server import MilanaServer
from .milana.transaction import ABORTED, COMMITTED
from .semel.client import SemelClient
from .semel.server import StorageServer
from .semel.sharding import Directory
from .sim.core import Simulator
from .versioning import Version

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "MilanaClient",
    "MilanaServer",
    "SemelClient",
    "StorageServer",
    "Directory",
    "Simulator",
    "Version",
    "COMMITTED",
    "ABORTED",
    "TransactionAborted",
    "__version__",
]
