"""Host-performance benchmarks for the simulation kernel.

Every figure in the reproduction is bottlenecked on host wall-clock of
the pure-Python discrete-event kernel, so this package measures — and
the CI smoke job protects — how fast the simulator itself runs:

* :mod:`repro.bench.kernel` — microbenchmarks of the kernel hot paths
  (event dispatch and allocation, timeout trampolines, RPC
  round-trips, store handoffs), reported as operations per **host**
  second;
* :mod:`repro.bench.macro` — wall-clock timings of real experiment
  configurations (Retwis, YCSB, one figure-8 point) at reduced scale;
* :mod:`repro.bench.fingerprint` — schedule fingerprints that gate
  every optimisation: a kernel change may only land if the
  default-config Retwis/YCSB/figure-6 fingerprints are byte-identical
  before and after (see docs/PERFORMANCE.md);
* :mod:`repro.bench.runner` — the ``repro bench`` CLI engine: suite
  assembly, optional ``cProfile`` capture, ``BENCH_kernel.json``
  emission and baseline regression checks.

Wall-clock reads live here *only*: simulated components must never
consult the host clock (simlint DET001); the benchmark harness is the
one sanctioned exception because host seconds are exactly what it
measures.
"""

from .fingerprint import all_fingerprints, schedule_fingerprint
from .kernel import (
    bench_event_alloc,
    bench_event_dispatch,
    bench_rpc_roundtrips,
    bench_store_handoff,
    bench_timeout_chain,
)
from .macro import bench_figure8_point, bench_retwis, bench_ycsb
from .runner import (
    BenchResult,
    check_against_baseline,
    host_metadata,
    load_report,
    run_suite,
    write_report,
)

__all__ = [
    "BenchResult",
    "all_fingerprints",
    "bench_event_alloc",
    "bench_event_dispatch",
    "bench_figure8_point",
    "bench_retwis",
    "bench_rpc_roundtrips",
    "bench_store_handoff",
    "bench_timeout_chain",
    "bench_ycsb",
    "check_against_baseline",
    "host_metadata",
    "load_report",
    "run_suite",
    "schedule_fingerprint",
    "write_report",
]
