"""Wall-clock benchmarks of real experiment configurations.

The microbenchmarks in :mod:`repro.bench.kernel` isolate kernel layers;
these run the genuine article — a full cluster with MILANA clients,
replicated SEMEL servers, flash backends and the latency-modelled
network — at reduced scale, and report how much simulated work the
host gets through per wall-clock second. They are the numbers that
predict how long a figure sweep will take.

The headline metric is decided transactions (or YCSB operations) per
host second; ``extra`` carries the simulated-time window and, when the
kernel exposes it, ``events_processed`` so events-per-host-second can
be derived for the trajectory.
"""

from __future__ import annotations

from typing import Any, Dict

from ..harness.cluster import Cluster, ClusterConfig
from ..harness.runner import run_retwis_on_cluster
from ..workloads import YcsbInstance
from .runner import BenchResult, host_clock

__all__ = ["bench_figure8_point", "bench_retwis", "bench_ycsb"]


def _kernel_counters(sim) -> Dict[str, Any]:
    events = getattr(sim, "events_processed", None)
    return {} if events is None else {"events_processed": events}


def bench_retwis(scale: float = 1.0) -> BenchResult:
    """Retwis (Table-2 mix) on the default replicated mftl cluster."""
    quick = scale < 1.0
    duration = 0.04 if quick else 0.15
    config = ClusterConfig(
        num_shards=1, replicas_per_shard=3,
        num_clients=4 if quick else 8,
        backend="mftl", clock_preset="ptp-sw", seed=42,
        populate_keys=200 if quick else 1000)
    start = host_clock()
    result = run_retwis_on_cluster(
        config, alpha=0.6, duration=duration, warmup=duration / 4)
    seconds = host_clock() - start
    sim = result.cluster.sim
    decided = sum(c.stats.committed + c.stats.aborted
                  for c in result.cluster.clients)
    extra = {
        "sim_seconds": round(sim.now, 9),
        "committed": result.metrics.committed,
        "messages_sent": result.cluster.network.stats.messages_sent,
    }
    extra.update(_kernel_counters(sim))
    return BenchResult(
        name="macro/retwis", metric="txns_per_host_s",
        value=decided / seconds if seconds else 0.0,
        n=decided, seconds=seconds, extra=extra)


def bench_ycsb(scale: float = 1.0) -> BenchResult:
    """YCSB-B (95/5 read/update, zipfian) on the default cluster."""
    quick = scale < 1.0
    duration = 0.04 if quick else 0.15
    config = ClusterConfig(
        num_shards=1, replicas_per_shard=3,
        num_clients=4 if quick else 8,
        backend="mftl", clock_preset="ptp-sw", seed=42,
        populate_keys=200 if quick else 1000)
    cluster = Cluster(config)
    instances = [
        YcsbInstance(cluster.sim, client, cluster.populated_keys,
                     cluster.rng.substream(f"ycsb{client.client_id}"),
                     workload="B", alpha=0.99)
        for client in cluster.clients
    ]
    procs = [instance.run(duration) for instance in instances]
    start = host_clock()
    for proc in procs:
        cluster.sim.run_until_event(proc)
    seconds = host_clock() - start
    operations = sum(i.stats.operations for i in instances)
    extra = {
        "sim_seconds": round(cluster.sim.now, 9),
        "messages_sent": cluster.network.stats.messages_sent,
    }
    extra.update(_kernel_counters(cluster.sim))
    return BenchResult(
        name="macro/ycsb", metric="ops_per_host_s",
        value=operations / seconds if seconds else 0.0,
        n=operations, seconds=seconds, extra=extra)


def bench_figure8_point(scale: float = 1.0) -> BenchResult:
    """One figure-8 cell: mftl, 8 clients, local validation on."""
    quick = scale < 1.0
    duration = 0.04 if quick else 0.12
    config = ClusterConfig(
        num_shards=1, replicas_per_shard=3,
        num_clients=8, backend="mftl", clock_preset="perfect", seed=17,
        populate_keys=300 if quick else 3000,
        local_validation=True)
    start = host_clock()
    result = run_retwis_on_cluster(
        config, alpha=0.6, duration=duration, warmup=duration / 4)
    seconds = host_clock() - start
    sim = result.cluster.sim
    decided = sum(c.stats.committed + c.stats.aborted
                  for c in result.cluster.clients)
    extra = {
        "sim_seconds": round(sim.now, 9),
        "mean_latency": repr(result.metrics.mean_latency),
    }
    extra.update(_kernel_counters(sim))
    return BenchResult(
        name="macro/figure8-point", metric="txns_per_host_s",
        value=decided / seconds if seconds else 0.0,
        n=decided, seconds=seconds, extra=extra)
