"""Microbenchmarks of the simulation-kernel hot paths.

Each benchmark stresses one layer of the stack the experiments hammer
millions of times per run:

* event dispatch — the pure pop/callback/succeed cycle of the run loop
  over a prebuilt event chain, the floor every other number sits on;
* event alloc — the same cycle with ``Event`` allocation and callback
  wiring inside the loop, i.e. the inbox pattern's cost per message;
* timeout chain — processes doing ``yield sim.timeout(...)`` in a loop,
  i.e. the generator trampoline plus the pure-delay fast path;
* store handoff — producer/consumer pairs through a
  :class:`~repro.sim.resources.Store`, the inbox pattern;
* RPC round-trips — full request/response cycles over the simulated
  network, the unit of work every protocol message pays.

All results are rates per **host** second; simulated time is reported
in ``extra`` where it is interesting. Scales are chosen so the full
suite runs in a few seconds on a developer machine; ``scale`` shrinks
them further for CI smoke runs.
"""

from __future__ import annotations

from ..net.latency import FixedLatency
from ..net.network import Network
from ..net.rpc import RpcNode
from ..sim.core import Simulator
from ..sim.events import Event
from ..sim.resources import Store
from ..sim.rng import SeededRng
from .runner import BenchResult, host_clock

__all__ = [
    "bench_event_alloc",
    "bench_event_dispatch",
    "bench_rpc_roundtrips",
    "bench_store_handoff",
    "bench_timeout_chain",
]


def _scaled(n: int, scale: float) -> int:
    return max(1, int(n * scale))


def bench_event_dispatch(scale: float = 1.0) -> BenchResult:
    """Pure event-dispatch throughput of the run loop.

    A chain of events is prebuilt outside the timed region — each
    event's sole callback is the next event's bound ``succeed`` — so
    the measured cycle is exactly what the kernel does per event: heap
    pop, fire, callback dispatch, trigger, heap push. No benchmark
    Python runs inside the loop.
    """
    n = _scaled(200_000, scale)
    sim = Simulator()
    events = [Event(sim) for _ in range(n)]
    for index in range(n - 1):
        events[index].callbacks.append(events[index + 1].succeed)
    events[0].succeed()
    start = host_clock()
    sim.run()
    seconds = host_clock() - start
    return BenchResult(
        name="kernel/events", metric="events_per_s",
        value=n / seconds if seconds else 0.0,
        n=n, seconds=seconds)


def bench_event_alloc(scale: float = 1.0) -> BenchResult:
    """Allocate/wire/trigger cycle: one fresh event per kernel step.

    A self-perpetuating relay callback allocates the successor event
    inside the measured loop, so this adds ``Event`` construction and
    callback wiring — the per-message cost of the inbox pattern — on
    top of the dispatch floor measured by ``kernel/events``.
    """
    n = _scaled(200_000, scale)
    sim = Simulator()
    remaining = n

    def relay(event: Event) -> None:
        nonlocal remaining
        if remaining:
            remaining -= 1
            successor = Event(sim)
            successor.callbacks.append(relay)
            successor.succeed()

    first = Event(sim)
    first.callbacks.append(relay)
    first.succeed()
    start = host_clock()
    sim.run()
    seconds = host_clock() - start
    events = n + 1
    return BenchResult(
        name="kernel/alloc", metric="allocs_per_s",
        value=events / seconds if seconds else 0.0,
        n=events, seconds=seconds)


def bench_timeout_chain(scale: float = 1.0) -> BenchResult:
    """Closed population of processes sleeping in a tight loop."""
    num_procs = 50
    per_proc = _scaled(4_000, scale)
    sim = Simulator()

    def sleeper(period: float):
        for _ in range(per_proc):
            yield sim.timeout(period)

    for index in range(num_procs):
        # Distinct periods keep the heap honestly interleaved rather
        # than degenerating into same-time batches.
        sim.process(sleeper(1e-6 * (1 + index / num_procs)))
    start = host_clock()
    sim.run()
    seconds = host_clock() - start
    timeouts = num_procs * per_proc
    return BenchResult(
        name="kernel/timeouts", metric="timeouts_per_s",
        value=timeouts / seconds if seconds else 0.0,
        n=timeouts, seconds=seconds,
        extra={"processes": num_procs, "sim_seconds": round(sim.now, 9)})


def bench_store_handoff(scale: float = 1.0) -> BenchResult:
    """Producer/consumer pairs ping-ponging items through Stores."""
    pairs = 8
    per_pair = _scaled(15_000, scale)
    sim = Simulator()

    def producer(store: Store):
        for index in range(per_pair):
            yield store.put(index)
            yield sim.timeout(1e-6)

    def consumer(store: Store):
        for _ in range(per_pair):
            yield store.get()

    for _ in range(pairs):
        store = Store(sim)
        sim.process(producer(store))
        sim.process(consumer(store))
    start = host_clock()
    sim.run()
    seconds = host_clock() - start
    handoffs = pairs * per_pair
    return BenchResult(
        name="kernel/store", metric="handoffs_per_s",
        value=handoffs / seconds if seconds else 0.0,
        n=handoffs, seconds=seconds, extra={"pairs": pairs})


def bench_rpc_roundtrips(scale: float = 1.0) -> BenchResult:
    """Sequential request/response cycles between two RPC nodes."""
    n = _scaled(20_000, scale)
    sim = Simulator()
    network = Network(sim, SeededRng(7), latency=FixedLatency(10e-6))
    client = RpcNode(sim, network, "bench-client")
    server = RpcNode(sim, network, "bench-server")

    def echo(payload):
        yield sim.timeout(1e-6)
        return payload

    server.register("bench-echo", echo)

    def caller():
        for index in range(n):
            yield client.call("bench-server", "bench-echo", index,
                              timeout=10e-3)

    proc = sim.process(caller())
    start = host_clock()
    sim.run_until_event(proc)
    seconds = host_clock() - start
    return BenchResult(
        name="kernel/rpc", metric="roundtrips_per_s",
        value=n / seconds if seconds else 0.0,
        n=n, seconds=seconds,
        extra={"messages_sent": network.stats.messages_sent})
