"""Benchmark suite assembly, timing, reporting, and regression checks.

A benchmark is a callable taking a scale factor (``1.0`` = full scale)
and returning a :class:`BenchResult`. The runner times nothing itself —
each benchmark brackets exactly its measured region with
:func:`host_clock` — but it owns everything around the measurement:
suite selection, optional profiling, JSON reports, and the
``--check`` regression gate CI runs against the checked-in
``BENCH_kernel.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BenchResult",
    "REPORT_SCHEMA",
    "check_against_baseline",
    "host_clock",
    "host_metadata",
    "load_report",
    "run_suite",
    "write_report",
]

#: Bumped when the BENCH_kernel.json layout changes incompatibly.
#: Schema 2 added the ``host`` metadata block; schema-1 reports are
#: still loadable (they simply carry no host information).
REPORT_SCHEMA = 2

#: Schemas :func:`load_report` accepts.
_SUPPORTED_SCHEMAS = (1, 2)


def host_clock() -> float:
    """Current host time in seconds; the one sanctioned wall-clock read.

    Benchmarks measure *host* performance, so they are the single place
    in the tree allowed to look at the machine's clock. Everything
    simulated keeps taking time from ``Simulator.now``.
    """
    return time.perf_counter()  # simlint: disable=DET001


@dataclass
class BenchResult:
    """One benchmark's measurement.

    ``value`` is the headline rate in ``metric`` units (always
    higher-is-better, e.g. ``events_per_s``); ``n`` is how many units
    were executed and ``seconds`` the host wall-clock they took.
    ``extra`` carries informational secondary numbers that are *not*
    regression-checked (simulated seconds covered, txn counts, ...).
    """

    name: str
    metric: str
    value: float
    n: int
    seconds: float
    extra: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        detail = ", ".join(f"{key}={value}" for key, value in
                           sorted(self.extra.items()))
        return (f"{self.name:<28} {self.value:>14,.0f} {self.metric}"
                f"  ({self.n:,} in {self.seconds:.3f}s"
                + (f"; {detail}" if detail else "") + ")")


def _suite() -> List[Tuple[str, Callable[[float], BenchResult], int]]:
    # Imported lazily so ``repro bench --help`` stays instant. The third
    # element is the repeat count: kernel microbenchmarks run in well under
    # a second, so scheduler noise can swing a single sample by 2x; running
    # each a few times and keeping the best (fresh Simulator per repeat)
    # measures the code rather than the neighbours. The macro benchmarks
    # run long enough to amortise the noise on their own.
    from .kernel import (
        bench_event_alloc,
        bench_event_dispatch,
        bench_rpc_roundtrips,
        bench_store_handoff,
        bench_timeout_chain,
    )
    from .macro import bench_figure8_point, bench_retwis, bench_ycsb

    return [
        ("kernel/events", bench_event_dispatch, 3),
        ("kernel/alloc", bench_event_alloc, 3),
        ("kernel/timeouts", bench_timeout_chain, 3),
        ("kernel/store", bench_store_handoff, 3),
        ("kernel/rpc", bench_rpc_roundtrips, 3),
        ("macro/retwis", bench_retwis, 1),
        ("macro/ycsb", bench_ycsb, 1),
        ("macro/figure8-point", bench_figure8_point, 1),
    ]


def run_suite(
    quick: bool = False,
    only: Optional[str] = None,
    profile: bool = False,
    report: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run the benchmark suite and return its results.

    ``quick`` scales every benchmark down for CI smoke runs; ``only``
    keeps benchmarks whose name starts with the given prefix;
    ``profile`` wraps each benchmark in :mod:`cProfile` and emits the
    hottest functions through ``report`` (a line sink, default print).
    """
    emit = report if report is not None else print
    scale = 0.1 if quick else 1.0
    results: List[BenchResult] = []
    for name, benchmark, repeats in _suite():
        if only and not name.startswith(only):
            continue
        if profile:
            import cProfile
            import io
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            result = benchmark(scale)
            profiler.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(profiler, stream=buffer)
            stats.sort_stats("cumulative").print_stats(12)
            emit(f"--- profile: {name} ---")
            for line in buffer.getvalue().splitlines():
                emit(line)
        else:
            result = benchmark(scale)
            for _ in range(repeats - 1):
                repeat = benchmark(scale)
                if repeat.value > result.value:
                    result = repeat
            if repeats > 1:
                result.extra["best_of"] = repeats
        results.append(result)
        emit(result.render())
    return results


# -- reports ---------------------------------------------------------------


def host_metadata() -> Dict[str, Any]:
    """Where a report was measured, so cross-machine diffs are
    explainable before anyone chases a phantom regression.

    Host-side introspection only (like :func:`host_clock`): nothing
    simulated may read these.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def write_report(results: Sequence[BenchResult], path: str,
                 quick: bool = False) -> None:
    """Write ``BENCH_kernel.json``-style report to ``path``."""
    document = {
        "schema": REPORT_SCHEMA,
        "quick": quick,
        "host": host_metadata(),
        "results": [
            {
                "name": result.name,
                "metric": result.metric,
                "value": result.value,
                "n": result.n,
                "seconds": result.seconds,
                "extra": result.extra,
            }
            for result in results
        ],
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a report written by :func:`write_report`."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") not in _SUPPORTED_SCHEMAS:
        raise ValueError(
            f"unsupported bench report schema {document.get('schema')!r} "
            f"in {path} (expected one of {_SUPPORTED_SCHEMAS})")
    return document


def _tolerance_for(name: str, tolerance: float,
                   tolerances: Optional[Dict[str, float]]) -> float:
    """Per-benchmark tolerance: longest matching name prefix wins.

    ``tolerances`` maps name prefixes (``"kernel/"``, ``"macro/"``, or
    a full benchmark name for a single outlier) to fractional allowed
    slowdowns; ``tolerance`` is the fallback for names no prefix
    matches.
    """
    if not tolerances:
        return tolerance
    best: Optional[str] = None
    for prefix in tolerances:
        if name.startswith(prefix):
            if best is None or len(prefix) > len(best):
                best = prefix
    return tolerances[best] if best is not None else tolerance


def check_against_baseline(
    results: Sequence[BenchResult],
    baseline_path: str,
    tolerance: float = 0.30,
    tolerances: Optional[Dict[str, float]] = None,
) -> List[str]:
    """Compare ``results`` to a checked-in baseline report.

    Returns a list of human-readable problems; empty means the run is
    within tolerance (fractional allowed slowdown) of the baseline on
    every benchmark both sides know about. Benchmarks only present on
    one side are reported too, so the baseline cannot silently rot.

    ``tolerance`` applies globally; ``tolerances`` overrides it per
    name prefix (longest match wins), so the tight kernel
    microbenchmarks and the noisier macro workloads can be gated at
    different thresholds in one pass.
    """
    for label, value in [("tolerance", tolerance)] + sorted(
            (tolerances or {}).items()):
        if not 0.0 <= value < 1.0:
            raise ValueError(
                f"{label} must be in [0, 1), got {value}")
    baseline = load_report(baseline_path)
    baseline_by_name = {entry["name"]: entry
                        for entry in baseline["results"]}
    problems: List[str] = []
    seen = set()
    for result in results:
        seen.add(result.name)
        entry = baseline_by_name.get(result.name)
        if entry is None:
            problems.append(
                f"{result.name}: not in baseline {baseline_path}; "
                f"re-run `repro bench --quick --out {baseline_path}` "
                f"to record it")
            continue
        allowed = _tolerance_for(result.name, tolerance, tolerances)
        floor = entry["value"] * (1.0 - allowed)
        if result.value < floor:
            slowdown = 1.0 - result.value / entry["value"]
            problems.append(
                f"{result.name}: {result.value:,.0f} {result.metric} is "
                f"{slowdown:.0%} below baseline {entry['value']:,.0f} "
                f"(tolerance {allowed:.0%})")
    for name in baseline_by_name:
        if name not in seen:
            problems.append(
                f"{name}: in baseline but not produced by this run")
    return problems
