"""Schedule fingerprints: the determinism gate for kernel optimisations.

A fingerprint is a SHA-256 over everything a workload *observes* from a
run — per-transaction commit timestamps and read/write versions, client
counters with full float precision, network traffic counters, and the
final simulated clock. Two kernels that produce the same fingerprint
produced the same event schedule as far as any experiment can tell.

The rule (DESIGN.md "Determinism-gated optimisation"): a change to the
simulation kernel or network hot path may only land if the fingerprints
of the default-config Retwis, YCSB and figure-6 runs are byte-identical
before and after. ``tests/test_fingerprints.py`` pins them against
golden values captured from the pre-optimisation kernel, so any
schedule drift — a reordered tie, a perturbed rng stream, a skipped
event — fails tier-1 instead of silently bending the figures.

Fingerprints deliberately exclude kernel-internal observables (event
counts, heap sizes, ``events_processed``): those are *allowed* to
change when the kernel gets faster; the schedule is not.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from ..harness.cluster import Cluster, ClusterConfig
from ..harness.runner import run_retwis_on_cluster
from ..milana.client import MilanaClient
from ..workloads import YcsbInstance

__all__ = [
    "FINGERPRINT_KINDS",
    "all_fingerprints",
    "fingerprint_material",
    "schedule_fingerprint",
]

FINGERPRINT_KINDS = ("retwis", "ycsb", "figure6")


def _recording_client_factory(sim, network, directory, clock, client_id,
                              local_validation):
    """Default client plus per-transaction history recording.

    Recording only appends to a list after each decided transaction, so
    it cannot perturb the schedule it observes.
    """
    return MilanaClient(sim, network, directory, clock,
                        client_id=client_id,
                        local_validation=local_validation,
                        record_history=True)


def _version_key(version) -> Any:
    if version is None:
        return None
    return [repr(version.timestamp), version.client_id]


def _client_material(client: MilanaClient) -> Dict[str, Any]:
    stats = client.stats
    history: List[Any] = [
        [
            entry.txn_id,
            sorted((key, _version_key(version))
                   for key, version in entry.reads.items()),
            sorted((key, _version_key(version))
                   for key, version in entry.writes.items()),
            repr(entry.ts),
        ]
        for entry in client.history
    ]
    return {
        "client_id": client.client_id,
        "started": stats.started,
        "committed": stats.committed,
        "aborted": stats.aborted,
        "abort_reasons": sorted(stats.abort_reasons.items()),
        "latency_total": repr(stats.latency_total),
        "latency_committed_total": repr(stats.latency_committed_total),
        "last_decided_timestamp": repr(client.last_decided_timestamp),
        "history": history,
    }


def _network_material(network) -> Dict[str, Any]:
    stats = network.stats
    return {
        "messages_sent": stats.messages_sent,
        "messages_delivered": stats.messages_delivered,
        "messages_dropped": stats.messages_dropped,
        "messages_duplicated": stats.messages_duplicated,
        "total_bytes": stats.total_bytes,
    }


def _default_config(simulator_factory=None) -> ClusterConfig:
    """The compact default-config cluster both workloads fingerprint.

    Mirrors the ``repro retwis`` / ``repro ycsb`` CLI defaults (mftl
    backend, 3 replicas, ptp-sw clocks, seed 42) at a scale small
    enough for tier-1. ``simulator_factory`` lets the sanitizer's
    equivalence tests run the same workload on a traced kernel.
    """
    return ClusterConfig(
        num_shards=1, replicas_per_shard=3, num_clients=4,
        backend="mftl", clock_preset="ptp-sw", seed=42,
        populate_keys=300,
        client_factory=_recording_client_factory,
        simulator_factory=simulator_factory)


def _retwis_material(simulator_factory=None) -> Dict[str, Any]:
    result = run_retwis_on_cluster(
        _default_config(simulator_factory), alpha=0.6, duration=0.06,
        warmup=0.015)
    cluster = result.cluster
    return {
        "kind": "retwis",
        "now": repr(cluster.sim.now),
        "clients": [_client_material(c) for c in cluster.clients],
        "network": _network_material(cluster.network),
    }


def _ycsb_material(simulator_factory=None) -> Dict[str, Any]:
    cluster = Cluster(_default_config(simulator_factory))
    instances = [
        YcsbInstance(cluster.sim, client, cluster.populated_keys,
                     cluster.rng.substream(f"ycsb{client.client_id}"),
                     workload="B", alpha=0.99)
        for client in cluster.clients
    ]
    procs = [instance.run(0.05) for instance in instances]
    for proc in procs:
        cluster.sim.run_until_event(proc)
    return {
        "kind": "ycsb",
        "now": repr(cluster.sim.now),
        "clients": [_client_material(c) for c in cluster.clients],
        "instances": [
            {
                "operations": instance.stats.operations,
                "committed": instance.stats.committed,
                "aborted": instance.stats.aborted,
                "inserts": instance.stats.inserts,
                "by_operation": sorted(
                    instance.stats.by_operation.items()),
            }
            for instance in instances
        ],
        "network": _network_material(cluster.network),
    }


def _figure6_material(simulator_factory=None) -> Dict[str, Any]:
    from ..harness.experiments import run_figure6

    if simulator_factory is not None:
        raise ValueError(
            "figure6 builds its own clusters per data point and does not "
            "take a simulator_factory; use retwis/ycsb for traced-kernel "
            "equivalence checks")
    result = run_figure6(client_counts=(2,), alphas=(0.95,),
                         num_keys=150, duration=0.08, warmup=0.02)
    return {"kind": "figure6", "rendering": result.render()}


_MATERIALS = {
    "retwis": _retwis_material,
    "ycsb": _ycsb_material,
    "figure6": _figure6_material,
}


def fingerprint_material(kind: str, simulator_factory=None) -> Dict[str, Any]:
    """Run the ``kind`` workload and return its canonical observables.

    Use this to *diff* two kernels when a fingerprint mismatches: dump
    the material on each commit and compare JSON. ``simulator_factory``
    swaps in an alternative kernel (e.g. sansim's TracedSimulator) for
    equivalence checks; the material format is unchanged.
    """
    if kind not in _MATERIALS:
        raise ValueError(
            f"unknown fingerprint kind {kind!r}; expected one of "
            f"{FINGERPRINT_KINDS}")
    return _MATERIALS[kind](simulator_factory=simulator_factory)


def schedule_fingerprint(kind: str, simulator_factory=None) -> str:
    """SHA-256 hex digest of the ``kind`` workload's schedule."""
    canonical = json.dumps(
        fingerprint_material(kind, simulator_factory=simulator_factory),
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def all_fingerprints() -> Dict[str, str]:
    """Fingerprints for every gated workload, keyed by kind."""
    return {kind: schedule_fingerprint(kind)
            for kind in FINGERPRINT_KINDS}
