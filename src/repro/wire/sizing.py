"""Deterministic byte-size model for simulated wire traffic.

The simulator never serializes messages — Python objects cross the
"wire" directly — but the paper's throughput and replication-fan-out
arguments depend on message *sizes* (a 100-key prepare is not a 1-key
get). This module assigns every payload a deterministic size in bytes,
patterned on a compact schema'd binary encoding:

* fixed-width scalars (ints, floats, timestamps) are 8 bytes;
* booleans and ``None`` are 1 byte (presence/flag byte);
* strings and bytes carry a 4-byte length prefix plus their UTF-8 body;
* containers carry a 4-byte count prefix plus their elements — field
  *names* are never charged, because a schema'd format transmits field
  tags, which the per-message 2-byte header in
  :class:`repro.wire.messages.WireMessage` stands in for.

Sizes are pure functions of the value: no RNG draws, no host state, so
charging transmission delay from them preserves seeded determinism.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "payload_size",
    "wire_size_of",
    "SCALAR_SIZE",
    "LENGTH_PREFIX_SIZE",
]

#: Width of a fixed-size scalar (int/float/timestamp) on the wire.
SCALAR_SIZE = 8
#: Length/count prefix charged for strings, bytes and containers.
LENGTH_PREFIX_SIZE = 4
#: A bool, None, or other single presence/flag byte.
FLAG_SIZE = 1


def payload_size(value: Any) -> int:
    """Size of ``value`` in modelled wire bytes (deterministic).

    Objects exposing a ``wire_size()`` method (all
    :class:`~repro.wire.messages.WireMessage` subclasses, and the RPC
    envelope types) are delegated to; everything else falls back to a
    structural model so ad-hoc test payloads still get a finite size.
    """
    if value is None:
        return FLAG_SIZE
    if isinstance(value, bool):
        return FLAG_SIZE
    if isinstance(value, (int, float)):
        return SCALAR_SIZE
    if isinstance(value, str):
        return LENGTH_PREFIX_SIZE + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return LENGTH_PREFIX_SIZE + len(value)
    size_method = getattr(value, "wire_size", None)
    if callable(size_method):
        return size_method()
    if isinstance(value, (tuple, list)):
        return LENGTH_PREFIX_SIZE + sum(payload_size(v) for v in value)
    if isinstance(value, dict):
        return LENGTH_PREFIX_SIZE + sum(
            payload_size(k) + payload_size(v) for k, v in value.items())
    # Last resort for exotic test payloads: charge the repr. Still a
    # pure function of the value, so determinism holds.
    return LENGTH_PREFIX_SIZE + len(repr(value).encode("utf-8"))


def wire_size_of(message: Any) -> int:
    """Total modelled size of anything handed to ``Network.send``."""
    return payload_size(message)
