"""Registry completeness checker behind ``repro wire --check``.

Two halves:

* :func:`validate_registry` (re-run here) — every registered message is
  a frozen dataclass that round-trips through its wire form with a
  positive, deterministic size;
* an AST sweep of the source tree — every dotted RPC method named at a
  ``register``/``call``/``send_oneway``/``notify``/
  ``replicate_to_backups`` site must have a registry entry, and every
  registry entry must have at least one ``register`` site, so the
  registry can neither lag behind nor outgrow the code.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

from .registry import REGISTRY, validate_registry

__all__ = ["scan_rpc_methods", "run_check", "check_tree"]

#: call-name -> argument index of the method-name string literal.
_METHOD_ARG_INDEX = {
    "register": 0,
    "call": 1,
    "send_oneway": 1,
    "notify": 1,
    "replicate_to_backups": 2,
}


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _literal_method(node: ast.Call, name: str) -> str:
    index = _METHOD_ARG_INDEX[name]
    if len(node.args) > index:
        arg = node.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    for keyword in node.keywords:
        if keyword.arg == "method" and isinstance(keyword.value, ast.Constant) \
                and isinstance(keyword.value.value, str):
            return keyword.value.value
    return ""


def scan_rpc_methods(root: Path) -> Dict[str, List[Tuple[str, str, int]]]:
    """Map dotted RPC method name -> [(site kind, file, line), ...] for
    every string-literal method at a known RPC site under ``root``."""
    sites: Dict[str, List[Tuple[str, str, int]]] = {}
    for path in sorted(root.rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        rel = str(path.relative_to(root))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in _METHOD_ARG_INDEX:
                continue
            method = _literal_method(node, name)
            # Only dotted names are protocol methods; bare names are
            # ad-hoc test/demo handlers outside the registry's remit.
            if "." not in method:
                continue
            sites.setdefault(method, []).append((name, rel, node.lineno))
    return sites


def _iter_kinds(records: Iterable[Tuple[str, str, int]]) -> Set[str]:
    return {kind for kind, _, _ in records}


def check_tree(root: Path) -> List[str]:
    """Cross-check the registry against the code under ``root``."""
    problems: List[str] = []
    sites = scan_rpc_methods(root)
    for method in sorted(sites):
        if method not in REGISTRY:
            where = ", ".join(
                f"{rel}:{line}" for _, rel, line in sites[method][:3])
            problems.append(
                f"{method}: used in code ({where}) but has no "
                f"repro.wire registry entry")
    for method in sorted(REGISTRY):
        kinds = _iter_kinds(sites.get(method, ()))
        if "register" not in kinds:
            problems.append(
                f"{method}: registered in repro.wire but no handler "
                f"registers it under {root}")
    return problems


def run_check(root: Path) -> Tuple[List[str], int]:
    """Full check: registry self-validation plus the tree cross-check.

    Returns (problems, methods scanned)."""
    problems = validate_registry()
    problems.extend(check_tree(root))
    return problems, len(REGISTRY)
