"""Method ↔ message registry: one :class:`MethodSpec` per RPC method.

The registry is the single source of truth for the protocol surface:

* :class:`repro.net.rpc.RpcNode` type-checks request and response
  payloads of registered methods against it;
* ``repro wire --check`` validates completeness (every handler in the
  source tree has a spec, every spec has a handler) and round-trips
  every message through its wire form and size model;
* the PROTOCOL.md message catalogue is rendered from it
  (:func:`render_catalogue`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from . import messages as m
from .messages import WireMessage

__all__ = [
    "MethodSpec",
    "REGISTRY",
    "spec_for",
    "validate_registry",
    "render_catalogue",
]


@dataclass(frozen=True)
class MethodSpec:
    """Everything the stack knows about one RPC method."""

    method: str
    request: Type[WireMessage]
    response: Type[WireMessage]
    sender: str
    receiver: str
    #: True when the method is (also) used fire-and-forget.
    oneway: bool = False
    doc: str = ""


_SPECS: Tuple[MethodSpec, ...] = (
    # SEMEL single-key operations (§3.3)
    MethodSpec("semel.get", m.SemelGet, m.SemelGetReply,
               "client", "shard primary",
               doc="youngest version at or below the request timestamp"),
    MethodSpec("semel.get_history", m.SemelGetHistory,
               m.SemelGetHistoryReply, "client", "shard primary",
               doc="every retained version of a key in a time range"),
    MethodSpec("semel.put", m.SemelPut, m.SemelPutReply,
               "client", "shard primary",
               doc="versioned write; stale-rejected, duplicate-deduped"),
    MethodSpec("semel.delete", m.SemelDelete, m.SemelDeleteReply,
               "client", "shard primary",
               doc="drop every version of a key"),
    MethodSpec("semel.replicate", m.SemelReplicate, m.Ack,
               "shard primary", "backup",
               doc="unordered put/delete replication record (§3.2)"),
    MethodSpec("semel.watermark", m.WatermarkReport, m.Ack,
               "client", "every server", oneway=True,
               doc="client GC low-water broadcast (§3.1/§4.4)"),
    # MILANA transactions (§4)
    MethodSpec("milana.get", m.MilanaGet, m.MilanaGetReply,
               "client", "shard primary",
               doc="snapshot read at ts_begin, with the prepared bit"),
    MethodSpec("milana.get_unvalidated", m.MilanaGetUnvalidated,
               m.MilanaGetUnvalidatedReply, "client", "any replica",
               doc="any-replica snapshot read; remote validation required"),
    MethodSpec("milana.prepare", m.MilanaPrepare, m.MilanaPrepareReply,
               "client (coordinator)", "participant primary",
               doc="Algorithm 1 validation; replicated before the vote"),
    MethodSpec("milana.decide", m.MilanaDecide, m.MilanaDecideReply,
               "client (coordinator) / CTP peer", "participant primary",
               oneway=True,
               doc="commit/abort outcome; one-way fast path, retried as "
                   "an acked call when any vote was unknown"),
    MethodSpec("milana.replicate_txn", m.MilanaReplicateTxn, m.Ack,
               "shard primary", "backup", oneway=True,
               doc="unordered transaction-record replication"),
    MethodSpec("milana.txn_status", m.MilanaTxnStatus,
               m.MilanaTxnStatusReply, "CTP daemon / recovery",
               "participant primary",
               doc="transaction-table status probe (§4.5)"),
    MethodSpec("milana.txn_outcome", m.MilanaTxnStatus,
               m.MilanaTxnStatusReply, "participant primary (CTP)",
               "client (coordinator)",
               doc="termination-query backstop: the coordinator's "
                   "recorded outcome for an in-doubt transaction"),
    MethodSpec("milana.fetch_log", m.MilanaFetchLog,
               m.MilanaFetchLogReply, "recovering primary", "replica",
               doc="full transaction log pull for the Algorithm 2 merge"),
    MethodSpec("milana.catchup", m.MilanaCatchup, m.MilanaCatchupReply,
               "restarted backup", "shard primary",
               doc="post-restart pull of decided records and newest "
                   "stored versions"),
    MethodSpec("milana.renew_lease", m.MilanaRenewLease,
               m.MilanaRenewLeaseReply, "shard primary", "backup",
               doc="read-lease renewal; f grants required (§4.5)"),
    # master service
    MethodSpec("master.heartbeat", m.MasterHeartbeat,
               m.MasterHeartbeatReply, "storage server", "master",
               oneway=True, doc="liveness report; silence drives failover"),
    MethodSpec("master.lookup", m.MasterLookup, m.MasterLookupReply,
               "client", "master",
               doc="shard-map query (cold start / cache refresh)"),
)

#: method name -> spec, the lookup the RPC layer uses on every call.
REGISTRY: Dict[str, MethodSpec] = {spec.method: spec for spec in _SPECS}


def spec_for(method: str) -> Optional[MethodSpec]:
    """The spec for ``method``, or None for unregistered (ad-hoc) ones."""
    return REGISTRY.get(method)


def _example_record() -> m.TxnRecordWire:
    return m.TxnRecordWire(
        txn_id="t1.1", client_id=1, client_name="client-1",
        ts_commit=2.5e-3,
        reads=(("key:0", (1e-3, 2)), ("key:1", None)),
        writes=(("key:0", "value"),),
        participants=("shard0", "shard1"), status="PREPARED")


def _examples() -> Dict[str, Tuple[WireMessage, WireMessage]]:
    """One representative (request, reply) pair per method, used by
    :func:`validate_registry` to drive round-trip and size checks."""
    record = _example_record()
    return {
        "semel.get": (m.SemelGet(key="key:0", max_timestamp=1e-3),
                      m.SemelGetReply(found=True, version=(1e-3, 2),
                                      value="v")),
        "semel.get_history": (
            m.SemelGetHistory(key="key:0", from_timestamp=0.0,
                              to_timestamp=1.0),
            m.SemelGetHistoryReply(versions=(((1e-3, 2), "v"),))),
        "semel.put": (m.SemelPut(key="key:0", value="v",
                                 version=(1e-3, 2)),
                      m.SemelPutReply(applied=True)),
        "semel.delete": (m.SemelDelete(key="key:0"),
                         m.SemelDeleteReply()),
        "semel.replicate": (
            m.SemelReplicate(op="put", key="key:0", value="v",
                             version=(1e-3, 2)),
            m.Ack()),
        "semel.watermark": (m.WatermarkReport(client_id=1,
                                              timestamp=1e-3),
                            m.Ack()),
        "milana.get": (m.MilanaGet(key="key:0", timestamp=1e-3),
                       m.MilanaGetReply(found=True, prepared=False,
                                        version=(1e-3, 2), value="v")),
        "milana.get_unvalidated": (
            m.MilanaGetUnvalidated(key="key:0", timestamp=1e-3),
            m.MilanaGetUnvalidatedReply(found=True, version=(1e-3, 2),
                                        value="v")),
        "milana.prepare": (m.MilanaPrepare(record=record),
                           m.MilanaPrepareReply(vote="SUCCESS")),
        "milana.decide": (m.MilanaDecide(txn_id="t1.1",
                                         outcome="COMMITTED"),
                          m.MilanaDecideReply(status="COMMITTED")),
        "milana.replicate_txn": (m.MilanaReplicateTxn(record=record),
                                 m.Ack()),
        "milana.txn_status": (m.MilanaTxnStatus(txn_id="t1.1"),
                              m.MilanaTxnStatusReply(status="PREPARED")),
        "milana.txn_outcome": (m.MilanaTxnStatus(txn_id="t1.1"),
                               m.MilanaTxnStatusReply(status="COMMITTED")),
        "milana.fetch_log": (m.MilanaFetchLog(),
                             m.MilanaFetchLogReply(records=(record,))),
        "milana.catchup": (
            m.MilanaCatchup(replica="srv-0-1"),
            m.MilanaCatchupReply(records=(record,),
                                 versions=(("key:0", (1e-3, 2), "v"),))),
        "milana.renew_lease": (
            m.MilanaRenewLease(primary="srv-0-0", expiry=0.1),
            m.MilanaRenewLeaseReply()),
        "master.heartbeat": (m.MasterHeartbeat(server="srv-0-0",
                                               shard="shard0"),
                             m.MasterHeartbeatReply(epoch=0)),
        "master.lookup": (
            m.MasterLookup(key="key:0"),
            m.MasterLookupReply(shard="shard0", primary="srv-0-0",
                                replicas=("srv-0-0", "srv-0-1"),
                                epoch=0)),
    }


def _check_message(method: str, role: str, expected: Type[WireMessage],
                   example: WireMessage, problems: List[str]) -> None:
    if not isinstance(example, expected):
        problems.append(
            f"{method}: example {role} is {type(example).__name__}, "
            f"spec says {expected.__name__}")
        return
    if not dataclasses.is_dataclass(expected):
        problems.append(f"{method}: {expected.__name__} is not a dataclass")
        return
    params = getattr(expected, "__dataclass_params__", None)
    if params is None or not params.frozen:
        problems.append(f"{method}: {expected.__name__} is not frozen")
    round_tripped = expected.from_wire(example.to_wire())
    if round_tripped != example:
        problems.append(
            f"{method}: {expected.__name__} does not round-trip through "
            f"to_wire()/from_wire()")
    size = example.wire_size()
    if not isinstance(size, int) or size <= 0:
        problems.append(
            f"{method}: {expected.__name__}.wire_size() returned {size!r}")
    elif example.wire_size() != size:
        problems.append(
            f"{method}: {expected.__name__}.wire_size() is not "
            f"deterministic")


def validate_registry() -> List[str]:
    """Check every registered message: frozen dataclass, round-trip
    through its wire form, positive deterministic size. Returns a list
    of problems (empty = healthy)."""
    problems: List[str] = []
    examples = _examples()
    for method in sorted(REGISTRY):
        spec = REGISTRY[method]
        if method not in examples:
            problems.append(f"{method}: no example message pair")
            continue
        request, response = examples[method]
        _check_message(method, "request", spec.request, request, problems)
        _check_message(method, "response", spec.response, response,
                       problems)
    for method in sorted(examples):
        if method not in REGISTRY:
            problems.append(f"{method}: example without a registry entry")
    return problems


def _field_summary(message_type: Type[WireMessage]) -> str:
    names = [f.name for f in dataclasses.fields(message_type)]
    return ", ".join(names) if names else "(none)"


def render_catalogue() -> str:
    """The PROTOCOL.md message catalogue, straight from the registry."""
    examples = _examples()
    lines = [
        "| method | sender → receiver | request fields | reply fields "
        "| example req/reply bytes |",
        "|---|---|---|---|---|",
    ]
    for method in sorted(REGISTRY):
        spec = REGISTRY[method]
        request, response = examples[method]
        arrow = f"{spec.sender} → {spec.receiver}"
        if spec.oneway:
            arrow += " (one-way)"
        lines.append(
            f"| `{method}` | {arrow} "
            f"| `{spec.request.__name__}`: {_field_summary(spec.request)} "
            f"| `{spec.response.__name__}`: "
            f"{_field_summary(spec.response)} "
            f"| {request.wire_size()} / {response.wire_size()} |")
    return "\n".join(lines)
