"""Typed wire messages for every RPC method in the reproduction.

One frozen dataclass per request and per reply, with value semantics
(tuples, not lists) so a message cannot alias mutable state across the
simulated wire. Every message knows its own deterministic byte size
(:meth:`WireMessage.wire_size`), which the network charges as
transmission delay and per-edge byte counters.

``to_wire()``/``from_wire()`` round-trip a message through a plain-dict
form — the shape a real serializer would see — and are exercised by
:func:`repro.wire.registry.validate_registry` and ``repro wire --check``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .sizing import payload_size

__all__ = [
    "WireMessage",
    "Ack",
    "SemelGet",
    "SemelGetReply",
    "SemelGetHistory",
    "SemelGetHistoryReply",
    "SemelPut",
    "SemelPutReply",
    "SemelDelete",
    "SemelDeleteReply",
    "SemelReplicate",
    "WatermarkReport",
    "TxnRecordWire",
    "MilanaGet",
    "MilanaGetReply",
    "MilanaGetUnvalidated",
    "MilanaGetUnvalidatedReply",
    "MilanaPrepare",
    "MilanaPrepareReply",
    "MilanaDecide",
    "MilanaDecideReply",
    "MilanaTxnStatus",
    "MilanaTxnStatusReply",
    "MilanaFetchLog",
    "MilanaFetchLogReply",
    "MilanaCatchup",
    "MilanaCatchupReply",
    "MilanaReplicateTxn",
    "MilanaRenewLease",
    "MilanaRenewLeaseReply",
    "MasterHeartbeat",
    "MasterHeartbeatReply",
    "MasterLookup",
    "MasterLookupReply",
]

#: Per-message type tag a schema'd encoding would transmit.
_MESSAGE_HEADER = 2


def _encode(value: Any) -> Any:
    """Recursively turn nested messages into their plain-dict form."""
    if isinstance(value, WireMessage):
        return value.to_wire()
    if isinstance(value, tuple):
        return tuple(_encode(item) for item in value)
    return value


@dataclass(frozen=True)
class WireMessage:
    """Base class: a frozen, self-sizing protocol message."""

    def to_wire(self) -> Dict[str, Any]:
        """Plain-dict form (nested messages become dicts too)."""
        return {
            f.name: _encode(getattr(self, f.name))
            for f in dataclasses.fields(self)
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "WireMessage":
        """Rebuild from :meth:`to_wire` output. Subclasses with nested
        or sequence-typed fields override this to re-coerce them."""
        return cls(**payload)

    def wire_size(self) -> int:
        """Modelled size in bytes: type tag + field payloads."""
        return _MESSAGE_HEADER + sum(
            payload_size(getattr(self, f.name))
            for f in dataclasses.fields(self))


@dataclass(frozen=True)
class Ack(WireMessage):
    """Generic positive acknowledgement (replication, decide, watermark)."""

    ack: bool = True


# -- SEMEL single-key operations (§3.3) ------------------------------------


@dataclass(frozen=True)
class SemelGet(WireMessage):
    """``semel.get``: youngest version of ``key`` at or below the bound."""

    key: str
    max_timestamp: Optional[float] = None


@dataclass(frozen=True)
class SemelGetReply(WireMessage):
    found: bool
    version: Optional[Tuple[float, int]] = None
    value: Any = None


@dataclass(frozen=True)
class SemelGetHistory(WireMessage):
    """``semel.get_history``: all retained versions in a time range."""

    key: str
    from_timestamp: float
    to_timestamp: float


@dataclass(frozen=True)
class SemelGetHistoryReply(WireMessage):
    #: ((version tuple, value), ...) oldest first.
    versions: Tuple[Tuple[Any, Any], ...] = ()

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SemelGetHistoryReply":
        return cls(versions=tuple(
            (tuple(version), value)
            for version, value in payload["versions"]))


@dataclass(frozen=True)
class SemelPut(WireMessage):
    """``semel.put``: write ``value`` under a client-stamped version."""

    key: str
    value: Any
    version: Tuple[float, int]

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SemelPut":
        return cls(key=payload["key"], value=payload["value"],
                   version=tuple(payload["version"]))


@dataclass(frozen=True)
class SemelPutReply(WireMessage):
    applied: bool
    duplicate: bool = False


@dataclass(frozen=True)
class SemelDelete(WireMessage):
    """``semel.delete``: drop every version of ``key``."""

    key: str


@dataclass(frozen=True)
class SemelDeleteReply(WireMessage):
    applied: bool = True


@dataclass(frozen=True)
class SemelReplicate(WireMessage):
    """``semel.replicate``: one unordered primary→backup record (§3.2)."""

    op: str  # "put" | "delete"
    key: str
    value: Any = None
    version: Optional[Tuple[float, int]] = None

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SemelReplicate":
        version = payload.get("version")
        return cls(op=payload["op"], key=payload["key"],
                   value=payload.get("value"),
                   version=tuple(version) if version is not None else None)


@dataclass(frozen=True)
class WatermarkReport(WireMessage):
    """``semel.watermark`` (one-way): a client's GC low-water mark."""

    client_id: int
    timestamp: float


# -- MILANA transactions (§4) ----------------------------------------------


@dataclass(frozen=True)
class TxnRecordWire(WireMessage):
    """Wire form of a transaction record (prepare payloads, backup logs).

    The mutable server-side twin is
    :class:`repro.milana.transaction.TransactionRecord`; this class is
    the immutable value that actually crosses the network, so a backup
    can never alias the primary's record object.
    """

    txn_id: str
    client_id: int
    client_name: str
    ts_commit: float
    #: ((key, observed version tuple or None), ...) for this shard.
    reads: Tuple[Tuple[str, Optional[Tuple[float, int]]], ...]
    #: ((key, value), ...) for this shard.
    writes: Tuple[Tuple[str, Any], ...]
    #: Every participant shard name (CTP and recovery need them all).
    participants: Tuple[str, ...]
    status: str
    prepared_at: float = 0.0

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "TxnRecordWire":
        return cls(
            txn_id=payload["txn_id"],
            client_id=payload["client_id"],
            client_name=payload["client_name"],
            ts_commit=payload["ts_commit"],
            reads=tuple(
                (key, tuple(version) if version is not None else None)
                for key, version in payload["reads"]),
            writes=tuple(
                (key, value) for key, value in payload["writes"]),
            participants=tuple(payload["participants"]),
            status=payload["status"],
            prepared_at=payload["prepared_at"],
        )

    @classmethod
    def from_record(cls, record: Any) -> "TxnRecordWire":
        """Snapshot a server/client-side ``TransactionRecord``."""
        return cls(
            txn_id=record.txn_id,
            client_id=record.client_id,
            client_name=record.client_name,
            ts_commit=record.ts_commit,
            reads=tuple(
                (key, tuple(version) if version is not None else None)
                for key, version in record.reads),
            writes=tuple(
                (key, value) for key, value in record.writes),
            participants=tuple(record.participants),
            status=record.status,
            prepared_at=record.prepared_at,
        )

    def to_record(self) -> Any:
        """Thaw into a mutable ``TransactionRecord`` for server tables."""
        from ..milana.transaction import TransactionRecord
        return TransactionRecord(
            txn_id=self.txn_id,
            client_id=self.client_id,
            client_name=self.client_name,
            ts_commit=self.ts_commit,
            reads=list(self.reads),
            writes=list(self.writes),
            participants=list(self.participants),
            status=self.status,
            prepared_at=self.prepared_at,
        )


@dataclass(frozen=True)
class MilanaGet(WireMessage):
    """``milana.get``: snapshot read at the transaction's ``ts_begin``."""

    key: str
    timestamp: float


@dataclass(frozen=True)
class MilanaGetReply(WireMessage):
    found: bool
    #: True iff a prepared version existed at or below the timestamp —
    #: the bit that makes client-local validation possible (§4.3).
    prepared: bool = False
    version: Optional[Tuple[float, int]] = None
    value: Any = None
    snapshot_miss: bool = False


@dataclass(frozen=True)
class MilanaGetUnvalidated(WireMessage):
    """``milana.get_unvalidated``: any-replica read (§4.6 relaxation)."""

    key: str
    timestamp: float


@dataclass(frozen=True)
class MilanaGetUnvalidatedReply(WireMessage):
    found: bool
    version: Optional[Tuple[float, int]] = None
    value: Any = None
    snapshot_miss: bool = False


@dataclass(frozen=True)
class MilanaPrepare(WireMessage):
    """``milana.prepare``: Algorithm 1 validation request (§4.2)."""

    record: TxnRecordWire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "MilanaPrepare":
        return cls(record=TxnRecordWire.from_wire(payload["record"]))


@dataclass(frozen=True)
class MilanaPrepareReply(WireMessage):
    vote: str  # "SUCCESS" | "ABORT"
    reason: Optional[str] = None


@dataclass(frozen=True)
class MilanaDecide(WireMessage):
    """``milana.decide``: the coordinator's (async) outcome broadcast."""

    txn_id: str
    outcome: str  # COMMITTED | ABORTED


@dataclass(frozen=True)
class MilanaDecideReply(WireMessage):
    """Decide acknowledgement: the participant's resulting record status
    (UNKNOWN when it never saw the prepare). Sent only when the decide
    arrived as an acked call — the fast path stays one-way."""

    status: str  # COMMITTED | ABORTED | UNKNOWN


@dataclass(frozen=True)
class MilanaTxnStatus(WireMessage):
    """``milana.txn_status``: CTP / recovery status probe (§4.5)."""

    txn_id: str


@dataclass(frozen=True)
class MilanaTxnStatusReply(WireMessage):
    status: str  # PREPARED | COMMITTED | ABORTED | UNKNOWN


@dataclass(frozen=True)
class MilanaFetchLog(WireMessage):
    """``milana.fetch_log``: pull a replica's full transaction log."""


@dataclass(frozen=True)
class MilanaFetchLogReply(WireMessage):
    records: Tuple[TxnRecordWire, ...] = ()

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "MilanaFetchLogReply":
        return cls(records=tuple(
            TxnRecordWire.from_wire(record)
            for record in payload["records"]))


@dataclass(frozen=True)
class MilanaCatchup(WireMessage):
    """``milana.catchup``: a restarted backup's pull for everything it
    may have missed while down — decided records plus the newest stored
    version of every key (prepared records travel separately via normal
    ``milana.replicate_txn`` traffic and the recovery merge)."""

    replica: str


@dataclass(frozen=True)
class MilanaCatchupReply(WireMessage):
    records: Tuple[TxnRecordWire, ...] = ()
    #: ((key, version tuple, value), ...) — newest version per key.
    versions: Tuple[Tuple[str, Tuple[float, int], Any], ...] = ()

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "MilanaCatchupReply":
        return cls(
            records=tuple(
                TxnRecordWire.from_wire(record)
                for record in payload["records"]),
            versions=tuple(
                (key, tuple(version), value)
                for key, version, value in payload["versions"]),
        )


@dataclass(frozen=True)
class MilanaReplicateTxn(WireMessage):
    """``milana.replicate_txn``: unordered txn-record replication."""

    record: TxnRecordWire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "MilanaReplicateTxn":
        return cls(record=TxnRecordWire.from_wire(payload["record"]))


@dataclass(frozen=True)
class MilanaRenewLease(WireMessage):
    """``milana.renew_lease``: primary→backup read-lease renewal (§4.5)."""

    primary: str
    expiry: float


@dataclass(frozen=True)
class MilanaRenewLeaseReply(WireMessage):
    granted: bool = True


# -- master service (§3's global master) -----------------------------------


@dataclass(frozen=True)
class MasterHeartbeat(WireMessage):
    """``master.heartbeat`` (one-way): server liveness report."""

    server: str
    shard: str


@dataclass(frozen=True)
class MasterHeartbeatReply(WireMessage):
    epoch: int = 0


@dataclass(frozen=True)
class MasterLookup(WireMessage):
    """``master.lookup``: shard-map query (one key, or the full map)."""

    key: Optional[str] = None


@dataclass(frozen=True)
class MasterLookupReply(WireMessage):
    #: Single-key lookups fill these four...
    shard: Optional[str] = None
    primary: Optional[str] = None
    replicas: Optional[Tuple[str, ...]] = None
    epoch: Optional[int] = None
    #: ...full-map lookups fill this: shard name -> info dict.
    shards: Optional[Dict[str, Dict[str, Any]]] = None

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "MasterLookupReply":
        replicas = payload.get("replicas")
        return cls(
            shard=payload.get("shard"),
            primary=payload.get("primary"),
            replicas=tuple(replicas) if replicas is not None else None,
            epoch=payload.get("epoch"),
            shards=payload.get("shards"),
        )
