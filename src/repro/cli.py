"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiments and workloads.
``experiment <name>``
    Regenerate one of the paper's tables/figures (``table1``,
    ``figure1``, ``figure6`` ... ``figure9``) or an ablation, at quick or
    full scale, printing the same rows/series the paper reports.
``retwis``
    Run the Retwis benchmark on a configurable cluster and print
    throughput / abort rate / latency percentiles.
``ycsb``
    Run a YCSB workload (A–F) on a configurable cluster.
``analyze``
    Run the simlint determinism/protocol-hygiene static analyzer
    (see ``repro.analysis``); extra arguments are forwarded, e.g.
    ``python -m repro analyze src/repro --format json``.
``sansim``
    Run the dynamic happens-before race sanitizer with schedule
    exploration (see ``repro.sansim``); extra arguments are forwarded,
    e.g. ``python -m repro sansim retwis --trials 25 --format json``.
``wire``
    Validate the typed wire-protocol registry (``--check``) or print
    the message catalogue (``--catalogue``). ``--check`` cross-checks
    the registry against every RPC call site under ``src/repro`` and
    exits non-zero on drift; CI runs it next to simlint.
``nemesis``
    Run a named fault-injection scenario (partitions, message loss,
    clock storms) under a live workload, heal, and audit the aftermath
    for serializability, lost committed writes, stuck PREPARED records
    and replica divergence. Exits non-zero if the audit fails.
``sweep``
    Run an experiment sweep (figures, ablations, nemesis scenarios,
    sansim trials) across spawn-context worker processes with a
    content-addressed cell cache (see ``repro.sweep``); the merged
    report is byte-identical for every ``-j``.
``bench``
    Measure host-side kernel performance (events/s, timeouts/s, RPC
    round-trips/s, macro workload rates), optionally under cProfile,
    write ``BENCH_kernel.json``, and check for regressions against a
    checked-in baseline (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from .harness import (
    ClusterConfig,
    run_client_caching_ablation,
    run_figure1,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_gc_window_ablation,
    run_packing_delay_ablation,
    run_replication_factor_ablation,
    run_retwis_on_cluster,
    run_table1,
    run_watermark_interval_ablation,
)
from .harness.cluster import BACKEND_KINDS, Cluster
from .harness.metrics import merged_latency_histogram
from .workloads import YCSB_WORKLOADS, YcsbInstance

__all__ = ["main", "EXPERIMENTS"]

#: name -> (full-scale runner, quick-scale runner)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (
        lambda: run_table1(),
        lambda: run_table1(num_keys=2000, duration=0.05, warmup=0.02,
                           num_workers=64),
    ),
    "figure1": (
        lambda: run_figure1(),
        lambda: run_figure1(rounds=60),
    ),
    "figure6": (
        lambda: run_figure6(),
        lambda: run_figure6(client_counts=(2, 8), alphas=(0.5, 0.95),
                            num_keys=200, duration=0.15, warmup=0.04),
    ),
    "figure7": (
        lambda: run_figure7(),
        lambda: run_figure7(alphas=(0.5, 0.8), backends=("dram", "mftl"),
                            num_clients=10, duration=0.2, warmup=0.05),
    ),
    "figure8": (
        lambda: run_figure8(),
        lambda: run_figure8(client_counts=(8, 24),
                            backends=("dram", "mftl"),
                            duration=0.15, warmup=0.04),
    ),
    "figure9": (
        lambda: run_figure9(),
        lambda: run_figure9(alphas=(0.4, 0.8), num_clients=12,
                            num_keys=4000, duration=0.2, warmup=0.05),
    ),
    "ablation-packing": (
        lambda: run_packing_delay_ablation(),
        lambda: run_packing_delay_ablation(
            delays=(0.0, 1e-3), duration=0.04, warmup=0.01,
            num_workers=32),
    ),
    "ablation-replication": (
        lambda: run_replication_factor_ablation(),
        lambda: run_replication_factor_ablation(
            replica_counts=(1, 3), num_clients=4, duration=0.12,
            warmup=0.03),
    ),
    "ablation-watermark": (
        lambda: run_watermark_interval_ablation(),
        lambda: run_watermark_interval_ablation(
            intervals=(0.01, 0.2), num_clients=4, duration=0.15,
            warmup=0.04),
    ),
    "ablation-gc-window": (
        lambda: run_gc_window_ablation(),
        lambda: run_gc_window_ablation(
            windows=(0.002, 0.02), duration=0.04, warmup=0.01,
            num_workers=32),
    ),
    "ablation-caching": (
        lambda: run_client_caching_ablation(),
        lambda: run_client_caching_ablation(
            num_clients=4, txns_per_client=60),
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Enabling Lightweight Transactions "
                     "with Precision Time' (ASPLOS 2017)"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workloads")

    exp = sub.add_parser("experiment",
                         help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--scale", choices=("quick", "full"),
                     default="quick")
    exp.add_argument("--out", help="also write the rendering to a file")

    def add_cluster_arguments(command):
        command.add_argument("--backend", choices=BACKEND_KINDS,
                             default="mftl")
        command.add_argument("--clock", default="ptp-sw",
                             choices=("perfect", "dtp", "ptp-hw",
                                      "ptp-sw", "ntp"))
        command.add_argument("--shards", type=int, default=1)
        command.add_argument("--replicas", type=int, default=3)
        command.add_argument("--clients", type=int, default=8)
        command.add_argument("--keys", type=int, default=2000)
        command.add_argument("--duration", type=float, default=0.2,
                             help="measured seconds of simulated time")
        command.add_argument("--seed", type=int, default=42)
        command.add_argument(
            "--bandwidth", type=float, default=None,
            help="link bandwidth in bytes/s of simulated time "
                 "(default: infinitely fast links)")

    retwis = sub.add_parser("retwis", help="run the Retwis benchmark")
    add_cluster_arguments(retwis)
    retwis.add_argument("--alpha", type=float, default=0.6,
                        help="Zipf contention parameter")
    retwis.add_argument("--no-local-validation", action="store_true")

    ycsb = sub.add_parser("ycsb", help="run a YCSB workload")
    add_cluster_arguments(ycsb)
    ycsb.add_argument("--workload", choices=sorted(YCSB_WORKLOADS),
                      default="B")
    ycsb.add_argument("--alpha", type=float, default=0.99)

    analyze = sub.add_parser(
        "analyze", add_help=False,
        help="run the simlint static analyzer (repro.analysis)")
    analyze.add_argument("analysis_args", nargs=argparse.REMAINDER,
                         help="arguments forwarded to repro.analysis")

    sansim = sub.add_parser(
        "sansim", add_help=False,
        help="run the dynamic race sanitizer (repro.sansim)")
    sansim.add_argument("sansim_args", nargs=argparse.REMAINDER,
                        help="arguments forwarded to repro.sansim")

    wire = sub.add_parser(
        "wire", help="inspect/validate the typed wire-protocol registry")
    wire.add_argument("--check", action="store_true",
                      help="validate the registry against RPC call sites")
    wire.add_argument("--catalogue", action="store_true",
                      help="print the message catalogue as markdown")
    wire.add_argument("--root", default=None,
                      help="source tree to scan (default: the installed "
                           "repro package)")

    from .harness.nemesis import SCENARIOS
    nemesis = sub.add_parser(
        "nemesis",
        help="inject faults under a workload, heal, audit consistency")
    nemesis.add_argument("--scenario", choices=sorted(SCENARIOS),
                         default="asymmetric-partition")
    nemesis.add_argument("--workload", choices=("retwis", "ycsb"),
                         default="retwis")
    nemesis.add_argument("--duration", type=float, default=0.3,
                         help="workload seconds of simulated time")
    nemesis.add_argument("--fault-start", type=float, default=0.05,
                         help="fault injection start (simulated seconds)")
    nemesis.add_argument("--fault-duration", type=float, default=0.15,
                         help="how long faults stay injected")
    nemesis.add_argument("--alpha", type=float, default=0.8,
                         help="Zipf contention parameter")
    nemesis.add_argument("--shards", type=int, default=2)
    nemesis.add_argument("--replicas", type=int, default=3)
    nemesis.add_argument("--clients", type=int, default=4)
    nemesis.add_argument("--keys", type=int, default=400)
    nemesis.add_argument("--backend", choices=BACKEND_KINDS,
                         default="dram")
    nemesis.add_argument("--clock", default="perfect",
                         choices=("perfect", "dtp", "ptp-hw", "ptp-sw",
                                  "ntp"))
    nemesis.add_argument("--seed", type=int, default=42)

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment sweep across worker processes with "
             "cell caching (deterministic: merged reports are "
             "byte-identical for every -j)")
    sweep.add_argument("name", nargs="?", default=None,
                       help="sweep to run (see --list)")
    sweep.add_argument("--list", action="store_true", dest="list_sweeps",
                       help="list available sweeps and exit")
    sweep.add_argument("--scale", choices=("quick", "full"),
                       default="quick")
    sweep.add_argument("-j", "--jobs", type=int, default=None,
                       help="worker processes (default: cores - 1)")
    sweep.add_argument("--out", default=None, metavar="FILE",
                       help="write the merged JSON report to FILE")
    sweep.add_argument("--no-cache", action="store_true",
                       help="do not read or write the cell cache")
    sweep.add_argument("--refresh", action="store_true",
                       help="recompute every cell, overwriting cached "
                            "entries")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cell cache directory (default: "
                            "benchmarks/results/cache)")
    sweep.add_argument("--min-hit-rate", type=float, default=None,
                       metavar="FRACTION",
                       help="fail (exit 1) if the cache hit rate falls "
                            "below FRACTION (used by CI sweep-smoke)")

    bench = sub.add_parser(
        "bench", help="measure kernel performance; gate regressions")
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke scale (~10x smaller runs)")
    bench.add_argument("--only", default=None, metavar="PREFIX",
                       help="run only benchmarks whose name starts "
                            "with PREFIX (e.g. kernel/)")
    bench.add_argument("--profile", action="store_true",
                       help="run each benchmark under cProfile and "
                            "print the hottest functions")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="write a BENCH_kernel.json report to FILE")
    bench.add_argument("--check", default=None, metavar="BASELINE",
                       help="fail (exit 1) on regression vs a "
                            "checked-in baseline report")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional slowdown for --check "
                            "(default 0.30)")
    bench.add_argument("--kernel-tolerance", type=float, default=None,
                       help="override --tolerance for kernel/* "
                            "microbenchmarks")
    bench.add_argument("--macro-tolerance", type=float, default=None,
                       help="override --tolerance for macro/* workloads "
                            "(noisier; usually gated looser)")
    bench.add_argument("--fingerprints", action="store_true",
                       help="also print the schedule fingerprints that "
                            "gate kernel optimisations")
    return parser


def _command_list(_args) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("workloads:")
    print("  retwis (Table 2 mix; --alpha sets contention)")
    for name in sorted(YCSB_WORKLOADS):
        mix = ", ".join(f"{op} {weight:.0f}%"
                        for op, weight in YCSB_WORKLOADS[name])
        print(f"  ycsb {name}: {mix}")
    return 0


def _command_experiment(args) -> int:
    full, quick = EXPERIMENTS[args.name]
    result = full() if args.scale == "full" else quick()
    text = result.render()
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"\n[written to {args.out}]")
    return 0


def _cluster_config(args) -> ClusterConfig:
    return ClusterConfig(
        num_shards=args.shards,
        replicas_per_shard=args.replicas,
        num_clients=args.clients,
        backend=args.backend,
        clock_preset=args.clock,
        seed=args.seed,
        populate_keys=args.keys,
        local_validation=not getattr(args, "no_local_validation", False),
        network_bandwidth=getattr(args, "bandwidth", None),
    )


def _print_run_summary(metrics, clients, network=None) -> None:
    histogram = merged_latency_histogram(clients)
    summary = histogram.summary()
    print(f"committed txns : {metrics.committed}")
    print(f"aborted txns   : {metrics.aborted} "
          f"(abort rate {metrics.abort_rate:.3f})")
    print(f"throughput     : {metrics.throughput:,.0f} txn/s")
    print(f"latency mean   : {metrics.mean_latency * 1e3:.3f} ms")
    print(f"latency p50    : {summary['p50'] * 1e3:.3f} ms")
    print(f"latency p95    : {summary['p95'] * 1e3:.3f} ms")
    print(f"latency p99    : {summary['p99'] * 1e3:.3f} ms")
    if metrics.network_bytes:
        print(f"wire traffic   : {metrics.network_bytes:,} bytes in "
              f"{metrics.messages_sent:,} messages "
              f"({metrics.network_bandwidth_used / 1e6:.2f} MB/s)")
    if network is not None and network.stats.bytes_by_edge:
        top = sorted(network.stats.bytes_by_edge.items(),
                     key=lambda kv: -kv[1])[:3]
        print("busiest edges  : " + "; ".join(
            f"{src}->{dst} {count:,} B" for (src, dst), count in top))
    reasons: Dict[str, int] = {}
    for client in clients:
        for reason, count in client.stats.abort_reasons.items():
            category = _abort_category(reason)
            reasons[category] = reasons.get(category, 0) + count
    if reasons:
        top = sorted(reasons.items(), key=lambda kv: -kv[1])[:3]
        print("abort reasons  : " + "; ".join(
            f"{count}x {category}" for category, count in top))


def _abort_category(reason: str) -> str:
    """Collapse per-key abort reasons into reportable categories."""
    if reason.startswith("local-validation"):
        return "local-validation conflict"
    if "changed" in reason:
        return "read-set changed"
    if "prepared version" in reason:
        return "prepared-version conflict"
    if "read at" in reason or "committed" in reason:
        return "write-timestamp conflict"
    if reason.startswith("prepare failed"):
        return "prepare RPC failed"
    if "snapshot" in reason:
        return "snapshot miss"
    return reason[:40]


def _command_retwis(args) -> int:
    result = run_retwis_on_cluster(
        _cluster_config(args), alpha=args.alpha,
        duration=args.duration, warmup=args.duration / 4)
    print(f"Retwis on {args.backend} x {args.shards} shard(s) x "
          f"{args.replicas} replica(s), {args.clients} clients, "
          f"clock={args.clock}, alpha={args.alpha}")
    _print_run_summary(result.metrics, result.cluster.clients,
                       network=result.cluster.network)
    return 0


def _command_ycsb(args) -> int:
    cluster = Cluster(_cluster_config(args))
    instances = [
        YcsbInstance(cluster.sim, client, cluster.populated_keys,
                     cluster.rng.substream(f"ycsb{client.client_id}"),
                     workload=args.workload, alpha=args.alpha)
        for client in cluster.clients
    ]
    procs = [instance.run(args.duration) for instance in instances]
    for proc in procs:
        cluster.sim.run_until_event(proc)
    operations = sum(i.stats.operations for i in instances)
    committed = sum(i.stats.committed for i in instances)
    aborted = sum(i.stats.aborted for i in instances)
    decided = committed + aborted
    histogram = merged_latency_histogram(cluster.clients)
    summary = histogram.summary()
    print(f"YCSB-{args.workload} on {args.backend}, {args.clients} "
          f"clients, alpha={args.alpha}")
    print(f"operations     : {operations}")
    print(f"throughput     : {operations / args.duration:,.0f} ops/s")
    print(f"abort rate     : {aborted / decided if decided else 0:.3f}")
    print(f"latency p50    : {summary['p50'] * 1e3:.3f} ms")
    print(f"latency p99    : {summary['p99'] * 1e3:.3f} ms")
    return 0


def _command_nemesis(args) -> int:
    from .harness.nemesis import nemesis_config, run_nemesis

    config = nemesis_config(
        num_shards=args.shards,
        replicas_per_shard=args.replicas,
        num_clients=args.clients,
        backend=args.backend,
        clock_preset=args.clock,
        seed=args.seed,
        populate_keys=args.keys,
        with_master=(args.scenario == "isolate-master"),
    )
    result = run_nemesis(
        args.scenario, config=config, workload=args.workload,
        duration=args.duration, fault_start=args.fault_start,
        fault_duration=args.fault_duration, alpha=args.alpha)
    print(result.summary())
    return 0 if result.passed else 1


def _command_sweep(args) -> int:
    from .sweep import (
        CellCache,
        SweepWorkerError,
        default_jobs,
        run_sweep,
        sweep_names,
    )
    from .sweep.cache import DEFAULT_CACHE_DIR

    if args.list_sweeps or args.name is None:
        print("sweeps:")
        for name in sweep_names():
            print(f"  {name}")
        return 0 if args.list_sweeps else 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    cache = None
    if not args.no_cache:
        cache = CellCache(args.cache_dir or DEFAULT_CACHE_DIR)
    try:
        result = run_sweep(
            args.name, scale=args.scale, jobs=jobs, cache=cache,
            refresh=args.refresh,
            progress=lambda line: print(line, file=sys.stderr))
    except SweepWorkerError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # Unknown sweep name / bad override: usage error, not a crash.
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    print(f"\n[{result.summary()}]", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(result.report_json())
        print(f"[merged report written to {args.out}]", file=sys.stderr)
    if (args.min_hit_rate is not None
            and result.hit_rate < args.min_hit_rate):
        print(f"sweep: cache hit rate {result.hit_rate:.0%} below "
              f"required {args.min_hit_rate:.0%}", file=sys.stderr)
        return 1
    return 0


def _command_bench(args) -> int:
    from .bench import (
        all_fingerprints,
        check_against_baseline,
        run_suite,
        write_report,
    )

    results = run_suite(quick=args.quick, only=args.only,
                        profile=args.profile)
    if args.fingerprints:
        print("schedule fingerprints (must not change with kernel "
              "optimisations):")
        for kind, digest in sorted(all_fingerprints().items()):
            print(f"  {kind:<8} {digest}")
    if args.out:
        write_report(results, args.out, quick=args.quick)
        print(f"[report written to {args.out}]")
    if args.check:
        tolerances = {}
        if args.kernel_tolerance is not None:
            tolerances["kernel/"] = args.kernel_tolerance
        if args.macro_tolerance is not None:
            tolerances["macro/"] = args.macro_tolerance
        problems = check_against_baseline(
            results, args.check, tolerance=args.tolerance,
            tolerances=tolerances or None)
        if args.only:
            # A filtered run legitimately misses baseline entries.
            problems = [problem for problem in problems
                        if "not produced by this run" not in problem]
        if problems:
            for problem in problems:
                print(f"bench-check: {problem}")
            return 1
        print(f"bench-check: OK ({len(results)} benchmarks within "
              f"tolerance of {args.check})")
    return 0


def _command_analyze(args) -> int:
    from .analysis.cli import main as analysis_main
    return analysis_main(args.analysis_args, prog="repro analyze")


def _command_sansim(args) -> int:
    from .sansim.cli import main as sansim_main
    return sansim_main(args.sansim_args, prog="repro sansim")


def _command_wire(args) -> int:
    from pathlib import Path

    from .wire.check import run_check
    from .wire.registry import render_catalogue

    if not args.check and not args.catalogue:
        args.check = True  # bare ``repro wire`` validates
    status = 0
    if args.catalogue:
        print(render_catalogue())
    if args.check:
        root = Path(args.root) if args.root else Path(__file__).parent
        problems, num_methods = run_check(root)
        if problems:
            for problem in problems:
                print(f"wire-check: {problem}")
            status = 1
        else:
            print(f"wire-check: OK ({num_methods} methods, registry and "
                  f"call sites agree)")
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # argparse.REMAINDER cannot capture a leading option (bpo-17050), so
    # forward everything after ``analyze`` to the analyzer CLI directly.
    if argv and argv[0] == "analyze":
        from .analysis.cli import main as analysis_main
        return analysis_main(list(argv[1:]), prog="repro analyze")
    if argv and argv[0] == "sansim":
        from .sansim.cli import main as sansim_main
        return sansim_main(list(argv[1:]), prog="repro sansim")
    args = _build_parser().parse_args(argv)
    handlers: Dict[str, Callable] = {
        "list": _command_list,
        "experiment": _command_experiment,
        "retwis": _command_retwis,
        "ycsb": _command_ycsb,
        "analyze": _command_analyze,
        "sansim": _command_sansim,
        "wire": _command_wire,
        "nemesis": _command_nemesis,
        "sweep": _command_sweep,
        "bench": _command_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
