"""Tie-break policies: how the explorer permutes same-timestamp events.

The kernel's heap orders events by ``(time, seq)``; everything at the
same simulated instant is causally unordered as far as the event queue
is concerned, so any permutation of a tie is a legal schedule. Policies
choose which tied entry fires next:

* :class:`FifoTieBreak` — index 0, i.e. scheduling order: byte-identical
  to the production kernel (the equivalence tests pin this).
* :class:`RandomTieBreak` — uniform seeded choice; the breadth pass.
* :class:`TargetedTieBreak` — DPOR-lite: prefers tied entries whose
  pushes came from sections that touched *hot* (flagged or previously
  raced) locations, biasing exploration toward the access pairs the
  happens-before engine already suspects.

Seeds flow through :class:`repro.sim.rng.SeededRng` named streams,
which derive the underlying state with sha256 — deterministic across
runs and platforms, so a trial spec is a complete replay recipe, and
independent of every simulation substream (adding a policy draw never
perturbs workload randomness).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Sequence, Tuple

from ..sim.rng import SeededRng
from .runtime import SanitizerRuntime

__all__ = [
    "FifoTieBreak",
    "RandomTieBreak",
    "TargetedTieBreak",
    "TieBreakPolicy",
    "make_policy",
    "POLICY_NAMES",
]

POLICY_NAMES = ("fifo", "random", "targeted")


class TieBreakPolicy(Protocol):
    """Chooses which of the tied heap entries fires next."""

    name: str

    def choose(self, tied: Sequence[Tuple[float, int, Any]]) -> int:
        """Return an index into ``tied`` (entries are ``(time, seq,
        event)`` in ascending sequence order)."""
        ...  # pragma: no cover - protocol


class FifoTieBreak:
    """Scheduling order — the production kernel's schedule, exactly."""

    name = "fifo"

    def choose(self, tied: Sequence[Tuple[float, int, Any]]) -> int:
        return 0


class RandomTieBreak:
    """Uniform seeded permutation of every tie."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = SeededRng(seed, "sansim/random")

    def choose(self, tied: Sequence[Tuple[float, int, Any]]) -> int:
        return self._rng.randint(0, len(tied) - 1)


class TargetedTieBreak:
    """DPOR-lite: bias reorderings toward flagged access pairs.

    The runtime marks heap sequence numbers pushed by contexts that
    touched hot locations (``SanitizerRuntime.hot_seqs``); with
    probability ``bias`` the policy fires one of those first, otherwise
    it falls back to a uniform choice. Hot locations accumulate across
    trials (see :mod:`repro.sansim.explorer`), so later trials search
    the neighbourhood of earlier near-misses.
    """

    name = "targeted"

    def __init__(self, seed: int, tracer: SanitizerRuntime,
                 bias: float = 0.8) -> None:
        self.seed = seed
        self.bias = bias
        self._rng = SeededRng(seed, "sansim/targeted")
        self._tracer = tracer

    def choose(self, tied: Sequence[Tuple[float, int, Any]]) -> int:
        if len(tied) > 1:
            hot_seqs = self._tracer.hot_seqs
            if hot_seqs:
                hot = [index for index, entry in enumerate(tied)
                       if entry[1] in hot_seqs]
                if hot and self._rng.random() < self.bias:
                    return hot[self._rng.randint(0, len(hot) - 1)]
        return self._rng.randint(0, len(tied) - 1)


def make_policy(name: str, seed: int,
                tracer: Optional[SanitizerRuntime] = None) -> TieBreakPolicy:
    """Instantiate a policy by name (the explorer's factory)."""
    if name == "fifo":
        return FifoTieBreak()
    if name == "random":
        return RandomTieBreak(seed)
    if name == "targeted":
        if tracer is None:
            raise ValueError("targeted tie-break needs the trial's tracer")
        return TargetedTieBreak(seed, tracer)
    raise ValueError(
        f"unknown tie-break policy {name!r}; expected one of "
        f"{POLICY_NAMES}")
