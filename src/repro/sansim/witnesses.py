"""Race witnesses: what the happens-before engine reports.

A witness names both access sites with short application-level stacks,
the tracked location, and (once the explorer stamps it) the exact trial
spec — workload, trial index, tie-break policy and seed — that
deterministically replays the violating interleaving.

Witness *messages* and *fingerprints* are canonical: they name files,
functions and location kinds but never line numbers, transaction ids or
keys, so the same race produces the same fingerprint across trials,
seeds and unrelated edits — the property the sansim baseline (same
lifecycle as simlint's) and golden snapshots rely on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

__all__ = ["Site", "Witness", "canonical_location"]


@dataclass(frozen=True)
class Site:
    """One access site: where instrumented code touched tracked state."""

    path: str
    line: int
    function: str
    #: Short application stack, innermost first: "path:line in function".
    frames: Tuple[str, ...] = ()

    def render(self) -> str:
        return f"{self.path}:{self.line} in {self.function}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "frames": list(self.frames),
        }


def canonical_location(location: Tuple[Any, ...]) -> str:
    """Instance-free display form of a tracked location.

    ``("txn", "srv-0-0", "c1.17")`` canonicalizes to ``txn@srv-0-0``:
    the transaction id (or key) varies per run, the race class does not.
    """
    kind = str(location[0])
    scope = str(location[1]) if len(location) > 1 else ""
    return f"{kind}@{scope}" if scope else kind


@dataclass
class Witness:
    """A confirmed dynamic race: two access sites and how to replay them."""

    rule_id: str  # SAN001 | SAN002
    location: str  # canonical location (kind@scope)
    message: str
    #: The write that completed the race (reported site).
    acting: Site
    #: SAN001: the stale guard read. SAN002: the earlier write.
    prior: Site
    #: SAN001 only: the concurrent write that invalidated the guard.
    foreign: Optional[Site] = None
    section: str = ""
    #: Concrete location instance (debugging aid; not canonical).
    detail: str = ""
    #: Replay spec, stamped by the explorer.
    workload: str = ""
    trial: int = -1
    policy: str = ""
    seed: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        """Stable identity: rule, canonical location, both site functions."""
        basis = "|".join((
            self.rule_id, self.location,
            f"{self.acting.path}:{self.acting.function}",
            f"{self.prior.path}:{self.prior.function}",
        ))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    @property
    def replay_command(self) -> str:
        return (f"python -m repro sansim {self.workload} "
                f"--replay {self.workload}:{self.trial}:"
                f"{self.policy}:{self.seed}")

    def stamped(self, workload: str, trial: int, policy: str,
                seed: int) -> "Witness":
        return replace(self, workload=workload, trial=trial,
                       policy=policy, seed=seed)

    def render(self) -> str:
        lines = [
            f"{self.acting.path}:{self.acting.line} "
            f"{self.rule_id} [error] {self.message}",
            f"    acting write : {self.acting.render()}",
            f"    prior access : {self.prior.render()}",
        ]
        if self.foreign is not None:
            lines.append(f"    foreign write: {self.foreign.render()}")
        for frame in self.acting.frames[1:4]:
            lines.append(f"        from {frame}")
        if self.workload:
            lines.append(f"    replay       : {self.replay_command}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "location": self.location,
            "detail": self.detail,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "section": self.section,
            "acting": self.acting.to_json(),
            "prior": self.prior.to_json(),
            "replay": {
                "workload": self.workload,
                "trial": self.trial,
                "policy": self.policy,
                "seed": self.seed,
                "command": self.replay_command,
            },
        }
        if self.foreign is not None:
            payload["foreign"] = self.foreign.to_json()
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload
