"""The happens-before engine behind the sanitizer.

Vector clocks, FastTrack-style
------------------------------
Every simulation process gets a context; only contexts that *write*
tracked state are lazily assigned a vector-clock component (pid), so
clock dicts stay as small as the set of writers, not the set of
processes. Clocks are treated as immutable: joins and epoch bumps
produce fresh dicts, so a clock reference captured at attribution time
is a true snapshot.

Happens-before edges come from three places:

* **event attribution** — every heap push is attributed (by sequence
  number) to the clock of the context that pushed it; popping the event
  makes that clock the *ambient* clock its callbacks run under. This
  captures message sends, timer chains, done-event handoffs — every
  causal edge the kernel itself creates.
* **condition joins** — AnyOf/AllOf join the ambient clock of every
  child that fired into the condition (see ``_Condition._traced_check``),
  so ``all_of(replica_acks)`` orders the continuation after *all* acks,
  not just the last one to arrive.
* **reads-from joins** — a tracked read joins the last writer's clock
  into the reader; a tracked write joins the previous writer's clock
  *after* the race check. Read-check-act sequences therefore order
  themselves and only *blind* writes remain concurrent — exactly the
  OCC bug class ATM001/ATM002 describe statically.

Checks
------
``SAN001`` (stale-guard write) fires when a section read a location,
suspended at least once, and wrote it while a foreign write slipped in
between. ``SAN002`` (unordered write-write) fires when two non-relaxed
writes to one location are concurrent under the clocks and share no
lock; ``exclusive`` locations (single-apply invariants such as
"a transaction outcome is applied once") make the report explicit.
``relaxed`` writes (MVCC versioned puts, where concurrency is the
design) update the location clock but are never flagged.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from .witnesses import Site, Witness, canonical_location

__all__ = ["SanitizerRuntime"]

_EMPTY_CLOCK: Dict[int, int] = {}

#: Frames from these path fragments never appear in witness stacks.
_INTERNAL_FRAGMENTS = ("/repro/sansim/", "/repro/sim/", "/importlib/")


def _join(base: Dict[int, int], other: Dict[int, int]) -> Dict[int, int]:
    """Pointwise max; returns ``base`` unchanged when it already covers."""
    if other is base or not other:
        return base
    get = base.get
    for pid, epoch in other.items():
        if get(pid, 0) < epoch:
            break
    else:
        return base
    merged = dict(base)
    for pid, epoch in other.items():
        if merged.get(pid, 0) < epoch:
            merged[pid] = epoch
    return merged


class _Context:
    """Per-process sanitizer state."""

    __slots__ = ("label", "pid", "epoch", "clock", "resumes", "section",
                 "guards", "held_locks", "hot")

    def __init__(self, label: str) -> None:
        self.label = label
        self.pid: Optional[int] = None  # assigned lazily on first write
        self.epoch = 0
        self.clock: Dict[int, int] = _EMPTY_CLOCK
        self.resumes = 0
        self.section = label
        #: location -> (write token at read, resumes at read, read Site)
        self.guards: Dict[Tuple[Any, ...], Tuple[int, int, Site]] = {}
        self.held_locks: Set[Tuple[Any, ...]] = set()
        self.hot = False


class _Location:
    """Last-writer state of one tracked location."""

    __slots__ = ("token", "writer_pid", "writer_epoch", "writer_clock",
                 "writer_site", "writer_section", "writer_locks",
                 "writer_ctx", "writers", "exclusive")

    def __init__(self) -> None:
        self.token = 0
        self.writer_pid: Optional[int] = None
        self.writer_epoch = 0
        self.writer_clock: Optional[Dict[int, int]] = None
        self.writer_site: Optional[Site] = None
        self.writer_section = ""
        self.writer_locks: FrozenSet[Tuple[Any, ...]] = frozenset()
        self.writer_ctx: Optional[_Context] = None
        self.writers: Set[int] = set()
        self.exclusive = False


class SanitizerRuntime:
    """Vector-clock tracker + race checker for one traced run.

    The :class:`~repro.sansim.kernel.TracedSimulator` drives the kernel
    hooks (``on_pop`` / ``end_fire`` / ``begin_resume`` / ``end_resume``
    / ``attribute_relay`` / ``on_condition_child``); instrumented
    protocol code drives the tracked-state API (``on_read`` /
    ``on_write`` / ``on_acquire`` / ``on_release`` / ``begin_section``).
    """

    def __init__(self, hot_locations: FrozenSet[str] = frozenset()) -> None:
        self.witnesses: List[Witness] = []
        #: Canonical locations observed contended or raced — fed back to
        #: the next trial's targeted tie-break policy.
        self.flagged_locations: Set[str] = set()
        #: Heap sequence numbers whose reordering the targeted policy
        #: should prefer (pushes made by sections touching hot state).
        self.hot_seqs: Set[int] = set()
        self.hot_locations = frozenset(hot_locations)
        self.reads = 0
        self.writes = 0
        self._ambient: Dict[int, int] = _EMPTY_CLOCK
        self._root = _Context("<root>")
        self._current = self._root
        self._stack: List[_Context] = []
        self._next_pid = 1
        self._contexts: Dict[Any, _Context] = {}
        #: heap seq -> clock of the context that pushed that entry.
        self._seq_origin: Dict[int, Dict[int, int]] = {}
        #: id(condition) -> join of fired children's ambient clocks.
        self._cond_joins: Dict[int, Dict[int, int]] = {}
        #: id(message) -> clock carried by an in-flight delivered message
        #: (tagged at inbox delivery, adopted at dispatch).
        self._payload_clocks: Dict[int, Dict[int, int]] = {}
        self._locations: Dict[Tuple[Any, ...], _Location] = {}
        self._cwd = str(Path.cwd())

    # -- kernel hooks (called by TracedSimulator / TracedProcess) ---------

    def on_pop(self, seq: int, event: Any) -> None:
        """An event was popped: its origin clock becomes ambient."""
        origin = self._seq_origin.pop(seq, _EMPTY_CLOCK)
        joins = self._cond_joins.pop(id(event), None)
        if joins is not None:
            origin = _join(origin, joins)
        self._ambient = origin
        self.hot_seqs.discard(seq)

    def end_fire(self, s0: int, s1: int) -> None:
        """Attribute pushes made by non-process callbacks to the ambient."""
        origin = self._ambient
        setdefault = self._seq_origin.setdefault
        for seq in range(s0, s1):
            setdefault(seq, origin)

    def begin_resume(self, process: Any) -> _Context:
        ctx = self._contexts.get(process)
        if ctx is None:
            generator = getattr(process, "_generator", None)
            code = getattr(generator, "gi_code", None)
            label = code.co_name if code is not None else "<process>"
            ctx = _Context(label)
            self._contexts[process] = ctx
        ctx.resumes += 1
        ctx.clock = _join(ctx.clock, self._ambient)
        self._stack.append(self._current)
        self._current = ctx
        return ctx

    def end_resume(self, ctx: _Context, s0: int, s1: int) -> None:
        clock = ctx.clock
        setdefault = self._seq_origin.setdefault
        for seq in range(s0, s1):
            setdefault(seq, clock)
        if ctx.hot and s1 > s0:
            self.hot_seqs.update(range(s0, s1))
        self._current = self._stack.pop()

    def attribute_relay(self, seq: int, target: Any) -> None:
        """A relay event carries a finished process's outcome: the push
        inherits that process's final clock, not just the resuming one's
        (the original completion push was consumed in an earlier step)."""
        target_ctx = self._contexts.get(target)
        if target_ctx is not None:
            self._seq_origin[seq] = _join(self._current.clock,
                                          target_ctx.clock)

    def tag_payload(self, message: Any) -> None:
        """Record the causal clock a just-delivered message carries.

        Called by the network as it places a message into an inbox; the
        ambient clock at that moment is the sender's clock at send time
        (the delivery event's attributed origin).
        """
        self._payload_clocks[id(message)] = (
            self._ambient if self._current is self._root
            else self._current.clock)

    def adopt_payload(self, message: Any) -> None:
        """Courier seam: a dispatch loop routes messages for *many*
        unrelated conversations, so letting its context accumulate joins
        would launder causality between them (e.g. a replication ack's
        clock would falsely order a later, unrelated RPC reply after the
        replicated writes). The dispatcher instead *replaces* its clock
        with the popped message's carried clock, so everything it pushes
        while routing this message — handler spawns, reply waiter
        wake-ups — inherits exactly that message's causal past.
        """
        clock = self._payload_clocks.pop(id(message), None)
        self._current.clock = clock if clock is not None else self._ambient

    def on_condition_child(self, condition: Any, child: Any) -> None:
        clock = (self._ambient if self._current is self._root
                 else self._current.clock)
        key = id(condition)
        current = self._cond_joins.get(key)
        self._cond_joins[key] = (clock if current is None
                                 else _join(current, clock))

    # -- tracked-state API (called by instrumented protocol code) ---------

    def begin_section(self, kind: str, detail: str = "") -> None:
        """Start a logical operation: guard windows reset here."""
        ctx = self._current
        ctx.section = kind
        ctx.guards.clear()

    def on_read(self, location: Tuple[Any, ...]) -> None:
        self.reads += 1
        ctx = self._current
        if ctx is self._root:
            ctx.clock = _join(ctx.clock, self._ambient)
        loc = self._locations.get(location)
        token = 0
        if loc is not None:
            token = loc.token
            if loc.writer_clock is not None:
                ctx.clock = _join(ctx.clock, loc.writer_clock)
        ctx.guards[location] = (token, ctx.resumes, self._capture_site())
        if canonical_location(location) in self.hot_locations:
            ctx.hot = True

    def on_write(self, location: Tuple[Any, ...], exclusive: bool = False,
                 relaxed: bool = False) -> None:
        self.writes += 1
        ctx = self._current
        if ctx is self._root:
            ctx.clock = _join(ctx.clock, self._ambient)
        site = self._capture_site()
        loc = self._locations.get(location)
        if loc is None:
            loc = _Location()
            self._locations[location] = loc
        if exclusive:
            loc.exclusive = True
        if ctx.pid is None:
            ctx.pid = self._next_pid
            self._next_pid += 1
        canon = canonical_location(location)
        if canon in self.hot_locations:
            ctx.hot = True
        if not relaxed:
            self._check_stale_guard(location, canon, loc, ctx, site)
            self._check_unordered_write(location, canon, loc, ctx, site,
                                        relaxed)
        # Epoch bump + publish: fresh dict, join previous writer after
        # the checks so the race (if any) was visible above.
        ctx.epoch += 1
        clock = dict(ctx.clock)
        clock[ctx.pid] = ctx.epoch
        if loc.writer_clock is not None:
            for pid, epoch in loc.writer_clock.items():
                if clock.get(pid, 0) < epoch:
                    clock[pid] = epoch
        ctx.clock = clock
        loc.token += 1
        loc.writer_pid = ctx.pid
        loc.writer_epoch = ctx.epoch
        loc.writer_clock = clock
        loc.writer_site = site
        loc.writer_section = ctx.section
        loc.writer_locks = frozenset(ctx.held_locks)
        loc.writer_ctx = ctx
        loc.writers.add(ctx.pid)
        if len(loc.writers) > 1:
            self.flagged_locations.add(canon)
        # The writer's own guard refreshes: later writes in the same
        # section are not "stale" because of this one.
        ctx.guards[location] = (loc.token, ctx.resumes, site)

    def on_acquire(self, lock: Tuple[Any, ...]) -> None:
        self._current.held_locks.add(lock)

    def on_release(self, lock: Tuple[Any, ...]) -> None:
        self._current.held_locks.discard(lock)

    # -- checks -----------------------------------------------------------

    def _check_stale_guard(self, location: Tuple[Any, ...], canon: str,
                           loc: _Location, ctx: _Context,
                           site: Site) -> None:
        guard = ctx.guards.get(location)
        if guard is None:
            return
        token, resumes_at_read, guard_site = guard
        if loc.token == token:
            return  # nothing changed since the guard
        if ctx.resumes <= resumes_at_read:
            return  # no suspension between guard and write
        if loc.writer_ctx is ctx:
            return  # own write (guard refresh missed); not foreign
        if loc.writer_locks and (ctx.held_locks & loc.writer_locks):
            return  # serialized by a common lock
        foreign = loc.writer_site
        message = (
            f"stale-guard write on {canon}: section "
            f"'{ctx.section or ctx.label}' checked it in "
            f"'{guard_site.function}' but wrote it in '{site.function}' "
            f"after a suspension, while "
            f"'{foreign.function if foreign else '<unknown>'}' "
            f"(section '{loc.writer_section}') wrote it in between; "
            f"re-check after the yield or hold the in-flight guard")
        self._report(Witness(
            rule_id="SAN001", location=canon, message=message,
            acting=site, prior=guard_site, foreign=foreign,
            section=ctx.section, detail=repr(location)), canon, ctx)

    def _check_unordered_write(self, location: Tuple[Any, ...], canon: str,
                               loc: _Location, ctx: _Context, site: Site,
                               relaxed: bool) -> None:
        if loc.writer_pid is None or loc.writer_ctx is ctx:
            return
        if ctx.clock.get(loc.writer_pid, 0) >= loc.writer_epoch:
            return  # ordered: the previous write happens-before this one
        if loc.writer_locks and (ctx.held_locks & loc.writer_locks):
            return  # serialized by a common lock
        prior = loc.writer_site or site
        flavour = ("single-apply invariant violated"
                   if loc.exclusive else "unordered write-write race")
        message = (
            f"{flavour} on {canon}: '{site.function}' (section "
            f"'{ctx.section or ctx.label}') and '{prior.function}' "
            f"(section '{loc.writer_section}') write it with no "
            f"happens-before edge and no common lock")
        self._report(Witness(
            rule_id="SAN002", location=canon, message=message,
            acting=site, prior=prior, section=ctx.section,
            detail=repr(location)), canon, ctx)

    def _report(self, witness: Witness, canon: str, ctx: _Context) -> None:
        self.witnesses.append(witness)
        self.flagged_locations.add(canon)
        ctx.hot = True

    # -- site capture -----------------------------------------------------

    def _capture_site(self, limit: int = 6) -> Site:
        frames: List[Tuple[str, int, str]] = []
        try:
            frame = sys._getframe(2)
        except ValueError:  # pragma: no cover - shallow stacks in tests
            frame = None
        while frame is not None and len(frames) < limit:
            code = frame.f_code
            path = code.co_filename.replace("\\", "/")
            if not any(fragment in path
                       for fragment in _INTERNAL_FRAGMENTS):
                frames.append((self._normalize(path), frame.f_lineno,
                               code.co_name))
            frame = frame.f_back
        if not frames:
            return Site(path="<unknown>", line=0, function="<unknown>")
        path, line, function = frames[0]
        rendered = tuple(f"{p}:{n} in {f}" for p, n, f in frames)
        return Site(path=path, line=line, function=function,
                    frames=rendered)

    def _normalize(self, path: str) -> str:
        cwd = self._cwd.replace("\\", "/").rstrip("/") + "/"
        if path.startswith(cwd):
            return path[len(cwd):]
        return path

    # -- summaries --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "tracked_reads": self.reads,
            "tracked_writes": self.writes,
            "contexts": len(self._contexts),
            "locations": len(self._locations),
            "witnesses": len(self.witnesses),
        }
