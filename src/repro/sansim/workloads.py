"""Workloads the sanitizer explores.

Each workload is a callable taking a ``simulator_factory`` (producing
the trial's :class:`~repro.sansim.kernel.TracedSimulator`) and running
one bounded, deterministic protocol exercise under it:

* ``retwis`` / ``ycsb`` — smoke-scale versions of the protocol
  workloads CI fingerprints (dram backend, 1x3 shard, 3 clients, ~20 ms
  of simulated time): enough prepare/decide/replicate traffic to
  exercise every instrumented path while keeping 25 trials in budget.
* ``ctp-race`` — the seeded-bug fixture
  (``tests/fixtures/sansim/milana/ctp_race.py``): a MILANA server whose
  CTP path reintroduces the pre-PR-4 commit-without-lock race, plus a
  coordinator stub that deterministically lands a decide inside the
  CTP window. The explorer must find a witness here; the real server
  under the same scenario must stay clean.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path
from types import ModuleType
from typing import Callable, Dict

from ..harness.cluster import Cluster, ClusterConfig
from ..harness.runner import run_retwis_on_cluster
from ..sim.core import Simulator
from ..workloads import YcsbInstance

__all__ = [
    "STATIC_SCOPES",
    "WORKLOADS",
    "fixture_path",
    "run_ctp_race",
    "run_ctp_race_safe",
    "run_retwis_smoke",
    "run_ycsb_smoke",
    "workload_names",
]

#: Paths (relative to the repository root) simlint analyzes when
#: reconciling each workload's witnesses against static findings.
#: A trial's kernel factory: zero-arg, returns the (traced) simulator
#: every component of the exercised cluster shares.
_SimFactory = Callable[[], Simulator]

STATIC_SCOPES: Dict[str, str] = {
    "retwis": "src/repro",
    "ycsb": "src/repro",
    "ctp-race": "tests/fixtures/sansim",
}


def _smoke_config(simulator_factory: _SimFactory,
                  seed: int) -> ClusterConfig:
    return ClusterConfig(
        num_shards=1, replicas_per_shard=3, num_clients=3,
        backend="dram", clock_preset="ptp-sw", seed=seed,
        populate_keys=120, simulator_factory=simulator_factory)


def run_retwis_smoke(simulator_factory: _SimFactory) -> None:
    run_retwis_on_cluster(_smoke_config(simulator_factory, seed=11),
                          alpha=0.9, duration=0.02, warmup=0.005)


def run_ycsb_smoke(simulator_factory: _SimFactory) -> None:
    cluster = Cluster(_smoke_config(simulator_factory, seed=13))
    instances = [
        YcsbInstance(cluster.sim, client, cluster.populated_keys,
                     cluster.rng.substream(f"ycsb{client.client_id}"),
                     workload="A", alpha=0.99)
        for client in cluster.clients
    ]
    procs = [instance.run(0.02) for instance in instances]
    for proc in procs:
        cluster.sim.run_until_event(proc)


def _repo_root() -> Path:
    # src/repro/sansim/workloads.py -> repository root is three up from
    # the package directory.
    return Path(__file__).resolve().parents[3]


def fixture_path() -> Path:
    """Location of the seeded CTP-race fixture module."""
    return (_repo_root() / "tests" / "fixtures" / "sansim" / "milana"
            / "ctp_race.py")


def _load_fixture() -> ModuleType:
    path = fixture_path()
    if not path.exists():
        raise FileNotFoundError(
            f"ctp-race fixture not found at {path}; the sansim seeded-bug "
            f"workload needs the repository checkout")
    spec = importlib.util.spec_from_file_location("sansim_ctp_race", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_ctp_race(simulator_factory: _SimFactory) -> None:
    """The seeded pre-PR-4 CTP bug, racy server variant."""
    _load_fixture().run_scenario(simulator_factory, racy=True)


def run_ctp_race_safe(simulator_factory: _SimFactory) -> None:
    """The same scenario against the real (fixed) MilanaServer: the
    specificity control — it must produce zero witnesses."""
    _load_fixture().run_scenario(simulator_factory, racy=False)


WORKLOADS: Dict[str, Callable[[_SimFactory], None]] = {
    "retwis": run_retwis_smoke,
    "ycsb": run_ycsb_smoke,
    "ctp-race": run_ctp_race,
    "ctp-race-safe": run_ctp_race_safe,
}


def workload_names() -> list:
    """Workloads exposed on the CLI (the safe control is test-only)."""
    return [name for name in WORKLOADS if name != "ctp-race-safe"]
