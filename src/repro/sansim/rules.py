"""Rule descriptors for the dynamic sanitizer.

These mirror the shape of :class:`repro.analysis.engine.Rule` closely
enough (``severity`` + ``description``) for the existing SARIF emitter
to render sansim witnesses through the same machinery, and they carry
the static/dynamic pairing that ``simlint --list-rules`` and the
reconciliation report surface:

* SAN001 is the dynamic twin of ATM002 (and of TXN001's lock-protocol
  variant): a *witnessed* check-suspend-write staleness.
* SAN002 is the dynamic twin of ATM001: a *witnessed* pair of writes
  with no happens-before edge, where the static rule could only point
  at a validate/apply split across a suspension.

This module deliberately imports nothing from the rest of the package
(and stays ``mypy --strict``-clean) so the analysis CLI can list the
dynamic catalogue without dragging the tracer runtime in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SANITIZER_RULES", "SanitizerRule"]


@dataclass(frozen=True)
class SanitizerRule:
    """One dynamic rule: id, severity, prose, and its static twin."""

    rule_id: str
    severity: str
    description: str
    family: str = "SAN"
    domain: str = "dynamic"
    #: The simlint rule approximating the same bug class statically.
    counterpart: str = ""


SANITIZER_RULES: Dict[str, SanitizerRule] = {
    rule.rule_id: rule
    for rule in (
        SanitizerRule(
            rule_id="SAN001",
            severity="error",
            description=(
                "stale-guard write: a section read tracked state, "
                "suspended, and wrote it while a concurrent writer "
                "changed it in between (dynamic twin of ATM002)"),
            counterpart="ATM002",
        ),
        SanitizerRule(
            rule_id="SAN002",
            severity="error",
            description=(
                "unordered write-write race: two writes to one tracked "
                "location with no happens-before edge and no common "
                "lock; exclusive locations report a single-apply "
                "invariant violation (dynamic twin of ATM001)"),
            counterpart="ATM001",
        ),
    )
}
