"""Systematic schedule exploration: bounded trials, seeded replay.

A *trial* runs one workload once under a tie-break policy: trial 0 is
always ``fifo`` (the production schedule — any witness there is a bug
on the default path), and subsequent trials alternate ``random`` and
``targeted`` with per-trial derived seeds. Hot locations accumulate
across trials, so the targeted policy explores the neighbourhood of
earlier contention (DPOR-lite rather than full persistent sets: the
kernel's ties are the only reorderable points, which keeps the trial
budget honest).

Every witness is stamped with its :class:`TrialSpec`; replaying that
spec re-runs the exact schedule — policies are seeded and the kernel is
otherwise deterministic — and must reproduce the same witness
fingerprints. That replay loop (``replay_spec``) is what CI and the
golden-snapshot test call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set

from .kernel import TracedSimulator
from .policies import make_policy
from .runtime import SanitizerRuntime
from .witnesses import Witness
from .workloads import WORKLOADS

__all__ = [
    "ExplorationResult",
    "TrialResult",
    "TrialSpec",
    "explore",
    "parse_replay_spec",
    "replay_spec",
    "run_trial",
]


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to replay one trial deterministically."""

    workload: str
    trial: int
    policy: str
    seed: int

    @property
    def policy_seed(self) -> int:
        """Per-trial seed derived from the exploration seed."""
        return self.seed * 10_000 + self.trial

    def render(self) -> str:
        return f"{self.workload}:{self.trial}:{self.policy}:{self.seed}"


def parse_replay_spec(text: str) -> TrialSpec:
    """Parse ``workload:trial:policy:seed`` (the --replay argument)."""
    parts = text.split(":")
    if len(parts) != 4:
        raise ValueError(
            f"bad replay spec {text!r}; expected "
            f"workload:trial:policy:seed")
    workload, trial, policy, seed = parts
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r} in replay spec")
    return TrialSpec(workload=workload, trial=int(trial), policy=policy,
                     seed=int(seed))


@dataclass
class TrialResult:
    spec: TrialSpec
    witnesses: List[Witness]
    flagged_locations: Set[str]
    stats: Dict[str, int]


@dataclass
class ExplorationResult:
    """Deduplicated witnesses plus per-trial accounting."""

    workload: str
    trials: int
    seed: int
    witnesses: List[Witness] = field(default_factory=list)
    flagged_locations: Set[str] = field(default_factory=set)
    trial_stats: List[Dict[str, int]] = field(default_factory=list)

    @property
    def fingerprints(self) -> List[str]:
        return [witness.fingerprint for witness in self.witnesses]


def _policy_for_trial(trial: int) -> str:
    if trial == 0:
        return "fifo"
    return "targeted" if trial % 2 == 0 else "random"


def run_trial(spec: TrialSpec,
              hot_locations: FrozenSet[str] = frozenset()) -> TrialResult:
    """Run one workload trial under its policy; witnesses come back
    stamped with the spec so they are replayable as-is."""
    workload = WORKLOADS.get(spec.workload)
    if workload is None:
        raise ValueError(
            f"unknown sansim workload {spec.workload!r}; expected one "
            f"of {sorted(WORKLOADS)}")
    tracer = SanitizerRuntime(hot_locations=hot_locations)
    policy = make_policy(spec.policy, spec.policy_seed, tracer)

    def factory() -> TracedSimulator:
        return TracedSimulator(tracer=tracer, tie_break=policy)

    workload(factory)
    witnesses = [
        witness.stamped(spec.workload, spec.trial, spec.policy, spec.seed)
        for witness in tracer.witnesses
    ]
    if spec.policy == "targeted" and hot_locations:
        # Targeted trials depend on hot-location feedback from earlier
        # trials; record it so such a witness stays replayable via
        # run_trial(spec, hot_locations=...).
        for witness in witnesses:
            witness.extra["hot_locations"] = sorted(hot_locations)
    return TrialResult(spec=spec, witnesses=witnesses,
                       flagged_locations=set(tracer.flagged_locations),
                       stats=tracer.stats())


def explore(workload: str, trials: int = 25, seed: int = 0,
            policy: Optional[str] = None,
            progress: Optional[Callable[[TrialSpec, TrialResult],
                                        None]] = None) -> ExplorationResult:
    """Bounded exploration: ``trials`` runs, deduplicated witnesses.

    ``policy`` forces every trial onto one tie-break policy; the default
    rotation is trial 0 fifo, then alternating random/targeted.
    """
    result = ExplorationResult(workload=workload, trials=trials, seed=seed)
    seen: Set[str] = set()
    hot: Set[str] = set()
    for trial in range(max(trials, 1)):
        spec = TrialSpec(workload=workload, trial=trial,
                         policy=policy or _policy_for_trial(trial),
                         seed=seed)
        trial_result = run_trial(spec, hot_locations=frozenset(hot))
        hot |= trial_result.flagged_locations
        result.flagged_locations |= trial_result.flagged_locations
        result.trial_stats.append(trial_result.stats)
        for witness in trial_result.witnesses:
            fingerprint = witness.fingerprint
            if fingerprint not in seen:
                seen.add(fingerprint)
                result.witnesses.append(witness)
        if progress is not None:
            progress(spec, trial_result)
    result.witnesses.sort(key=lambda w: (w.rule_id, w.location,
                                         w.acting.path, w.acting.line))
    return result


def replay_spec(spec: TrialSpec) -> TrialResult:
    """Re-run exactly one trial (hot-location feedback excluded: a
    replayed fifo/random trial needs none; a targeted trial replays its
    own discoveries because hot state also accrues *within* a trial)."""
    return run_trial(spec)
