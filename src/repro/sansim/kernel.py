"""Traced simulator/process: the sanitizer-enabled kernel twin.

:class:`TracedSimulator` subclasses the production
:class:`~repro.sim.core.Simulator` and re-implements the (deliberately
non-inlined) event loop with three additions:

1. every pop consults the :class:`~repro.sansim.runtime.SanitizerRuntime`
   so the fired event's *origin clock* becomes ambient, and every push
   window is attributed back to the clock that made it;
2. same-timestamp ties are resolved through a pluggable, seeded
   tie-break policy (:mod:`repro.sansim.policies`) instead of strict
   sequence order — the schedule explorer's lever. The default
   :class:`~repro.sansim.policies.FifoTieBreak` picks index 0, which is
   byte-identical to the base kernel's ``(time, seq)`` order;
3. ``process()`` returns a :class:`TracedProcess` whose ``_resume``
   duplicates the base body inside begin/end-resume bookkeeping (a
   wrapper could not see the relay special case, which needs the target
   process's final clock to keep the happens-before edge).

``events_processed`` keeps the base kernel's arithmetic accounting:
pushed-back tie entries bump neither ``_seq`` nor the net heap length,
so the pops = pushes + shrinkage identity still holds.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Optional, Tuple

from ..sim.core import Simulator
from ..sim.events import Event, Interrupt
from ..sim.process import Process
from .policies import FifoTieBreak, TieBreakPolicy
from .runtime import SanitizerRuntime

__all__ = ["TracedProcess", "TracedSimulator"]


class TracedProcess(Process):
    """A process that reports resume windows to the sanitizer runtime.

    The body of :meth:`_resume` mirrors ``Process._resume`` statement
    for statement (see the lockstep note in ``sim/process.py``); the
    only behavioural additions are the tracer calls, which never touch
    the heap themselves.
    """

    __slots__ = ()

    def _resume(self, trigger: Event) -> None:
        sim = self.sim
        tracer = sim.tracer
        if tracer is None:  # pragma: no cover - traced sims carry one
            Process._resume(self, trigger)
            return
        if trigger is not self._waiting_on:
            return
        self._waiting_on = None  # type: ignore[assignment]
        ctx = tracer.begin_resume(self)
        s0 = sim._seq
        try:
            self._resume_body(trigger, sim, tracer)
        finally:
            tracer.end_resume(ctx, s0, sim._seq)

    def _resume_body(self, trigger: Event, sim: Simulator,
                     tracer: SanitizerRuntime) -> None:
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                trigger.defused = True
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as exc:
            self._ok = False
            self._value = exc
            self.defused = True
            heappush(sim._heap, (sim._now, sim._seq, self))
            sim._seq += 1
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self.fail(exc)
            return

        if not isinstance(target, Event):
            error = TypeError(
                f"process yielded {target!r}; processes must yield Events")
            self._crash(error)
            return

        if target._processed:
            relay = Event(sim)
            relay._ok = target._ok
            relay._value = target._value
            if relay._ok is False:
                target.defused = True
                relay.defused = True
            self._waiting_on = relay
            relay.callbacks.append(self._resume)
            seq = sim._seq
            sim.schedule(relay)
            # The completion push of ``target`` was consumed in an earlier
            # step; re-attach its final clock here or the join edge from
            # the finished process would be lost (a lost edge reads as a
            # false race downstream).
            tracer.attribute_relay(seq, target)
        else:
            if target._ok is False:
                target.defused = True
            self._waiting_on = target
            target.callbacks.append(self._resume)


class TracedSimulator(Simulator):
    """Simulator with sanitizer hooks and permutable same-time ties."""

    __slots__ = ("tracer", "tie_break")

    #: Narrowed from the base class seam (``Optional[Any]``): a traced
    #: simulator always carries a live runtime and policy.
    tracer: SanitizerRuntime
    tie_break: TieBreakPolicy

    def __init__(self, tracer: Optional[SanitizerRuntime] = None,
                 tie_break: Optional[TieBreakPolicy] = None,
                 start_time: float = 0.0) -> None:
        super().__init__(start_time)
        self.tracer = tracer if tracer is not None else SanitizerRuntime()
        self.tie_break = (tie_break if tie_break is not None
                          else FifoTieBreak())

    def process(self, generator: Generator[Any, Any, Any]) -> TracedProcess:
        return TracedProcess(self, generator)

    # -- tie-aware pop ----------------------------------------------------

    def _pop_next(self) -> Tuple[float, int, Event]:
        """Pop the next event, letting the policy pick among time ties.

        Tied entries surface in ascending sequence order (the heap's
        total order is unique), so ``choose() == 0`` reproduces the base
        kernel's schedule exactly.
        """
        heap = self._heap
        entry = heappop(heap)
        if heap and heap[0][0] == entry[0]:
            tied = [entry]
            time = entry[0]
            while heap and heap[0][0] == time:
                tied.append(heappop(heap))
            index = self.tie_break.choose(tied)
            if not 0 <= index < len(tied):  # defensive: bad policy
                index = 0
            entry = tied.pop(index)
            for other in tied:
                heappush(heap, other)
        return entry

    # -- event loop (non-inlined; correctness over speed) -----------------

    def step(self) -> None:
        time, seq, event = self._pop_next()
        self._now = time
        self.events_processed += 1
        tracer = self.tracer
        tracer.on_pop(seq, event)
        s0 = self._seq
        event._fire()
        tracer.end_fire(s0, self._seq)

    def run(self, until: Optional[float] = None) -> None:
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run backwards: until={until} < now={self._now}")
        heap = self._heap
        tracer = self.tracer
        seq0 = self._seq
        len0 = len(heap)
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                time, seq, event = self._pop_next()
                self._now = time
                tracer.on_pop(seq, event)
                s0 = self._seq
                event._fire()
                tracer.end_fire(s0, self._seq)
        finally:
            self.events_processed += self._seq - seq0 + len0 - len(heap)
        if until is not None and self._now < until:
            self._now = until

    def run_until_event(self, event: Event,
                        limit: Optional[float] = None) -> Any:
        heap = self._heap
        tracer = self.tracer
        seq0 = self._seq
        len0 = len(heap)
        try:
            while not event._processed:
                if not heap:
                    raise RuntimeError(
                        f"simulation queue drained before {event!r} fired")
                if limit is not None and heap[0][0] > limit:
                    raise RuntimeError(
                        f"simulated time limit {limit} reached before "
                        f"{event!r} fired")
                time, seq, popped = self._pop_next()
                self._now = time
                tracer.on_pop(seq, popped)
                s0 = self._seq
                popped._fire()
                tracer.end_fire(s0, self._seq)
        finally:
            self.events_processed += self._seq - seq0 + len0 - len(heap)
        if event._ok is False:
            raise event._value
        return event._value
