"""Reconciling dynamic witnesses with simlint's static ATM findings.

simlint's ATM001/ATM002 point at code *shaped* like an atomicity
violation; a sansim witness proves one *happened* under a concrete
schedule. The reconciliation report joins the two views:

* ``confirmed-by-witness`` — a static finding whose enclosing function
  also appears in a witness's access sites or application stack for the
  same file: the approximation was right, and the witness carries the
  replay seed that proves it.
* ``static-only`` — a static finding no trial confirmed. Not
  exonerated — the explorer's trial budget is finite — but lower
  priority than a confirmed one.
* ``dynamic-only`` — a witness the static rules missed entirely
  (e.g. the race spans files or flows the inliner cannot follow);
  these are candidate new simlint rules.

The JSON payload is self-contained; SARIF rendering reuses
``repro.analysis.sarif`` with the SAN rule descriptors so code-scanning
backends ingest dynamic witnesses exactly like static findings.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.engine import analyze_paths
from ..analysis.findings import Finding
from .explorer import ExplorationResult
from .rules import SANITIZER_RULES
from .witnesses import Site, Witness
from .workloads import STATIC_SCOPES

__all__ = [
    "ReconciliationReport",
    "build_report",
    "reconcile",
    "render_payload",
    "render_sarif_report",
    "render_text",
    "witness_to_finding",
]

#: Static rules whose bug class the sanitizer witnesses dynamically.
RECONCILED_RULES = ("ATM001", "ATM002")

CONFIRMED = "confirmed-by-witness"
STATIC_ONLY = "static-only"
DYNAMIC_ONLY = "dynamic-only"


def witness_to_finding(witness: Witness) -> Finding:
    """A witness as a :class:`Finding` (for SARIF/baseline machinery).

    The message is the witness's canonical message, so the finding's
    line-free fingerprint inherits the witness's stability properties.
    """
    return Finding(
        path=witness.acting.path,
        line=witness.acting.line,
        col=0,
        rule_id=witness.rule_id,
        severity="error",
        message=witness.message,
    )


# -- static-side helpers ----------------------------------------------------


def _enclosing_function(source_cache: Dict[str, Optional[ast.AST]],
                        path: str, line: int) -> str:
    """Name of the innermost function containing ``line`` in ``path``."""
    if path not in source_cache:
        try:
            source_cache[path] = ast.parse(
                Path(path).read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            source_cache[path] = None
    tree = source_cache[path]
    if tree is None:
        return ""
    best_name = ""
    best_span = None
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if node.lineno <= line <= end:
            span = end - node.lineno
            if best_span is None or span < best_span:
                best_span = span
                best_name = node.name
    return best_name


def _site_functions(site: Site) -> Set[Tuple[str, str]]:
    """(path, function) pairs a site touches, including its stack."""
    pairs = {(site.path, site.function)}
    for frame in site.frames:
        # Rendered as "path:line in function" by the runtime.
        head, sep, function = frame.partition(" in ")
        if not sep:
            continue
        path, _colon, _line = head.rpartition(":")
        if path:
            pairs.add((path, function))
    return pairs


def _witness_functions(witness: Witness) -> Set[Tuple[str, str]]:
    pairs = _site_functions(witness.acting) | _site_functions(witness.prior)
    if witness.foreign is not None:
        pairs |= _site_functions(witness.foreign)
    return pairs


# -- reconciliation ---------------------------------------------------------


class ReconciliationReport:
    """The joined static/dynamic view for one exploration run."""

    def __init__(self, witnesses: List[Witness],
                 static_findings: List[Finding],
                 entries: List[Dict[str, Any]],
                 scopes: List[str]) -> None:
        self.witnesses = witnesses
        self.static_findings = static_findings
        self.entries = entries
        self.scopes = scopes

    @property
    def summary(self) -> Dict[str, int]:
        counts = {CONFIRMED: 0, STATIC_ONLY: 0, DYNAMIC_ONLY: 0}
        for entry in self.entries:
            counts[entry["status"]] += 1
        return counts

    def to_json(self) -> Dict[str, Any]:
        return {
            "scopes": list(self.scopes),
            "rules": list(RECONCILED_RULES),
            "summary": self.summary,
            "entries": self.entries,
        }


def reconcile(witnesses: Sequence[Witness],
              static_findings: Sequence[Finding],
              scopes: Sequence[str]) -> ReconciliationReport:
    """Join witnesses to static findings by (file, enclosing function)."""
    source_cache: Dict[str, Optional[ast.AST]] = {}
    witness_pairs = [(w, _witness_functions(w)) for w in witnesses]
    entries: List[Dict[str, Any]] = []
    matched_fingerprints: Set[str] = set()
    for finding in static_findings:
        function = _enclosing_function(source_cache, finding.path,
                                       finding.line)
        matches = [
            w for w, pairs in witness_pairs
            if function and (finding.path, function) in pairs
        ]
        entry: Dict[str, Any] = {
            "status": CONFIRMED if matches else STATIC_ONLY,
            "static": finding.to_json(),
            "function": function,
            "witnesses": [w.fingerprint for w in matches],
        }
        matched_fingerprints.update(w.fingerprint for w in matches)
        entries.append(entry)
    for witness in witnesses:
        if witness.fingerprint not in matched_fingerprints:
            entries.append({
                "status": DYNAMIC_ONLY,
                "witness": witness.fingerprint,
                "rule": witness.rule_id,
                "location": witness.location,
            })
    return ReconciliationReport(list(witnesses), list(static_findings),
                                entries, list(scopes))


def _static_findings_for(scopes: Sequence[str]) -> List[Finding]:
    existing = [scope for scope in scopes if Path(scope).exists()]
    if not existing:
        return []
    findings, _files = analyze_paths(existing, select=list(RECONCILED_RULES))
    return findings


def build_report(results: Sequence[ExplorationResult]
                 ) -> ReconciliationReport:
    """Reconciliation across every explored workload's static scope."""
    scopes: List[str] = []
    for result in results:
        scope = STATIC_SCOPES.get(result.workload)
        if scope is not None and scope not in scopes:
            scopes.append(scope)
    witnesses: List[Witness] = []
    seen: Set[str] = set()
    for result in results:
        for witness in result.witnesses:
            if witness.fingerprint not in seen:
                seen.add(witness.fingerprint)
                witnesses.append(witness)
    return reconcile(witnesses, _static_findings_for(scopes), scopes)


# -- rendering --------------------------------------------------------------


def render_payload(results: Sequence[ExplorationResult],
                   report: ReconciliationReport) -> Dict[str, Any]:
    """The canonical JSON document ``repro sansim --format json`` emits."""
    return {
        "version": 1,
        "tool": "sansim",
        "runs": [
            {
                "workload": result.workload,
                "trials": result.trials,
                "seed": result.seed,
                "witnesses": [w.fingerprint for w in result.witnesses],
                "flagged_locations": sorted(result.flagged_locations),
                "trial_stats": result.trial_stats,
            }
            for result in results
        ],
        "witnesses": [w.to_json() for w in report.witnesses],
        "reconciliation": report.to_json(),
    }


def render_sarif_report(witnesses: Sequence[Witness]) -> str:
    """SARIF 2.1.0 for the witnesses, via the simlint emitter."""
    from ..analysis.sarif import render_sarif

    findings = sorted((witness_to_finding(w) for w in witnesses),
                      key=lambda f: f.sort_key)
    # SanitizerRule duck-types the severity/description surface the
    # emitter reads from analysis rules.
    return render_sarif(findings, dict(SANITIZER_RULES))  # type: ignore[arg-type]


def render_text(results: Sequence[ExplorationResult],
                report: ReconciliationReport,
                new_witnesses: Optional[Sequence[Witness]] = None,
                baselined: int = 0) -> str:
    shown = report.witnesses if new_witnesses is None else new_witnesses
    lines: List[str] = []
    for witness in shown:
        lines.append(witness.render())
        lines.append("")
    summary = report.summary
    for result in results:
        lines.append(
            f"sansim: {result.workload}: {len(result.witnesses)} "
            f"witness(es) in {result.trials} trial(s) (seed "
            f"{result.seed})")
    lines.append(
        f"sansim: reconciliation vs simlint "
        f"({', '.join(RECONCILED_RULES)}): "
        f"{summary[CONFIRMED]} confirmed-by-witness, "
        f"{summary[STATIC_ONLY]} static-only, "
        f"{summary[DYNAMIC_ONLY]} dynamic-only")
    if baselined:
        lines.append(f"sansim: {baselined} witness(es) baselined")
    return "\n".join(lines)
