"""sansim command line: ``python -m repro sansim [workloads ...]``.

Runs the schedule explorer over the named workloads, reconciles the
deduplicated witnesses with simlint's ATM findings, and renders the
report. Exit codes mirror simlint: 0 clean (or all witnesses
baselined), 1 new witnesses (or stale baseline entries under
``--fail-on-stale``), 2 usage error. Under ``--expect-witness`` the
polarity flips — the seeded-bug CI job *requires* a witness — and the
run exits 0 iff at least one witness was found.

``--replay workload:trial:policy:seed`` re-runs exactly one trial (the
spec every witness prints) instead of exploring; determinism of the
kernel plus the seeded policies makes the witness reproduce bit-for-bit.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..analysis.baseline import Baseline, BaselineError
from .explorer import (ExplorationResult, explore, parse_replay_spec,
                       replay_spec)
from .policies import POLICY_NAMES
from .report import (build_report, render_payload, render_sarif_report,
                     render_text, witness_to_finding)
from .witnesses import Witness
from .workloads import workload_names

__all__ = ["main", "build_parser"]

DEFAULT_WORKLOADS = ("retwis", "ycsb")


def build_parser(prog: str = "repro sansim") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=("sansim: happens-before race sanitizer with "
                     "systematic schedule exploration for the "
                     "SEMEL/MILANA simulation"))
    parser.add_argument("workloads", nargs="*",
                        default=list(DEFAULT_WORKLOADS),
                        help="workloads to explore "
                             f"(default: {' '.join(DEFAULT_WORKLOADS)}; "
                             f"see --list-workloads)")
    parser.add_argument("--trials", type=int, default=25,
                        help="schedule trials per workload (default: 25)")
    parser.add_argument("--seed", type=int, default=0,
                        help="exploration seed (default: 0)")
    parser.add_argument("--policy", choices=POLICY_NAMES,
                        help="force one tie-break policy for every trial "
                             "(default: trial 0 fifo, then alternating "
                             "random/targeted)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress witnesses recorded in this "
                             "baseline file (simlint baseline format)")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current witnesses as the new "
                             "baseline and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="prune --baseline entries that no longer "
                             "fire, rewriting the file in place")
    parser.add_argument("--fail-on-stale", action="store_true",
                        help="exit 1 if the baseline contains entries "
                             "that no longer fire")
    parser.add_argument("--expect-witness", action="store_true",
                        help="invert the exit polarity: succeed iff at "
                             "least one witness was found (seeded-bug "
                             "CI jobs)")
    parser.add_argument("--replay", metavar="SPEC",
                        help="re-run one trial from a witness's "
                             "workload:trial:policy:seed spec")
    parser.add_argument("--list-workloads", action="store_true",
                        help="print the workload catalogue and exit")
    return parser


def _list_workloads() -> int:
    from .workloads import STATIC_SCOPES
    for name in workload_names():
        scope = STATIC_SCOPES.get(name, "")
        print(f"{name:10s}  reconciled against: {scope}")
    return 0


def _explore_all(args: argparse.Namespace) -> List[ExplorationResult]:
    results = []
    for workload in args.workloads:
        result = explore(workload, trials=args.trials, seed=args.seed,
                         policy=args.policy)
        print(f"sansim: explored {workload}: {args.trials} trial(s), "
              f"{len(result.witnesses)} distinct witness(es)",
              file=sys.stderr)
        results.append(result)
    return results


def _replay_one(args: argparse.Namespace,
                parser: argparse.ArgumentParser
                ) -> List[ExplorationResult]:
    try:
        spec = parse_replay_spec(args.replay)
    except ValueError as exc:
        parser.error(str(exc))
        raise  # unreachable; keeps type-checkers happy
    trial = replay_spec(spec)
    print(f"sansim: replayed {spec.render()}: "
          f"{len(trial.witnesses)} witness(es)", file=sys.stderr)
    return [ExplorationResult(
        workload=spec.workload, trials=1, seed=spec.seed,
        witnesses=trial.witnesses,
        flagged_locations=set(trial.flagged_locations),
        trial_stats=[trial.stats])]


def _split_witnesses(baseline: Baseline, witnesses: Sequence[Witness]
                     ) -> Tuple[List[Witness], List[Witness]]:
    """Partition witnesses into (new, baselined) via Finding identity."""
    findings = [witness_to_finding(w) for w in witnesses]
    new_findings, _matched = baseline.split(findings)
    budget = Counter((f.rule_id, f.path, f.message) for f in new_findings)
    new: List[Witness] = []
    matched: List[Witness] = []
    for finding, witness in zip(findings, witnesses):
        key = (finding.rule_id, finding.path, finding.message)
        if budget[key] > 0:
            budget[key] -= 1
            new.append(witness)
        else:
            matched.append(witness)
    return new, matched


def _emit(document: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(document + "\n", encoding="utf-8")
    else:
        print(document)


def main(argv: Optional[Sequence[str]] = None,
         prog: str = "repro sansim") -> int:
    parser = build_parser(prog)
    args = parser.parse_args(argv)
    if args.list_workloads:
        return _list_workloads()
    if args.trials < 1:
        parser.error("--trials must be at least 1")
    known = set(workload_names())
    unknown = [w for w in args.workloads if w not in known]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}; "
                     f"expected one of {', '.join(sorted(known))}")
    if (args.update_baseline or args.fail_on_stale) and not args.baseline:
        parser.error("--update-baseline/--fail-on-stale require "
                     "--baseline FILE")
    if args.replay:
        results = _replay_one(args, parser)
    else:
        results = _explore_all(args)
    report = build_report(results)
    findings = [witness_to_finding(w) for w in report.witnesses]

    if args.write_baseline:
        Baseline.from_findings(findings).save(args.write_baseline)
        print(f"sansim: wrote {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0

    stale: Optional[int] = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, BaselineError) as exc:
            parser.error(str(exc))
            raise  # unreachable; keeps type-checkers happy
        new, baselined = _split_witnesses(baseline, report.witnesses)
        stale = len(baseline.stale_entries(findings))
        if args.update_baseline and stale:
            baseline.pruned(findings).save(args.baseline)
            print(f"sansim: pruned {stale} stale entr"
                  f"{'y' if stale == 1 else 'ies'} from {args.baseline}",
                  file=sys.stderr)
            stale = 0
    else:
        new, baselined = list(report.witnesses), []

    if args.output_format == "json":
        payload = render_payload(results, report)
        payload["new_witnesses"] = [w.fingerprint for w in new]
        payload["baselined"] = len(baselined)
        if stale is not None:
            payload["stale_baseline"] = stale
        _emit(json.dumps(payload, indent=2), args.output)
    elif args.output_format == "sarif":
        _emit(render_sarif_report(new), args.output)
    else:
        document = render_text(results, report, new_witnesses=new,
                               baselined=len(baselined))
        _emit(document, args.output)

    if args.expect_witness:
        if report.witnesses:
            return 0
        print("sansim: expected at least one witness, found none",
              file=sys.stderr)
        return 1
    if new:
        return 1
    if args.fail_on_stale and stale:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
