"""repro.sansim: dynamic happens-before race sanitizer for the sim kernel.

The static analyzer (``repro.analysis``, "simlint") approximates
interleavings from the AST; this package observes real ones. A
:class:`~repro.sansim.kernel.TracedSimulator` runs any workload under a
:class:`~repro.sansim.runtime.SanitizerRuntime` that maintains vector
clocks per simulation process, joins them along every event edge
(pushes, condition joins, process relays), and checks the tracked-state
accesses the SEMEL/MILANA servers and the lock service report:

* **SAN001** — stale-guard write: a section read a tracked location,
  suspended, and wrote it while a concurrent writer changed it in
  between (the dynamic twin of ATM002/TXN001).
* **SAN002** — unordered write-write race: two writes to the same
  tracked location with no happens-before edge and no common lock (the
  dynamic twin of ATM001); "exclusive" locations additionally assert a
  single-apply invariant (e.g. a transaction outcome applied twice).

The schedule explorer (:mod:`repro.sansim.explorer`) permutes
same-timestamp event ties through seeded tie-break policies and replays
any witness from its trial spec; :mod:`repro.sansim.report` reconciles
witnesses against simlint's ATM findings and renders JSON/SARIF via the
existing ``repro.analysis`` machinery. Everything is strictly zero-cost
when disabled: a plain :class:`~repro.sim.core.Simulator` carries
``tracer = None`` as a class attribute and no kernel hot path changes.
"""

from .explorer import TrialSpec, explore, run_trial
from .kernel import TracedProcess, TracedSimulator
from .policies import FifoTieBreak, RandomTieBreak, TargetedTieBreak
from .runtime import SanitizerRuntime
from .witnesses import Site, Witness

__all__ = [
    "FifoTieBreak",
    "RandomTieBreak",
    "SanitizerRuntime",
    "Site",
    "TargetedTieBreak",
    "TracedProcess",
    "TracedSimulator",
    "TrialSpec",
    "Witness",
    "explore",
    "run_trial",
]
