"""Tests for the ``repro bench`` harness (kernel suite, reports, gates)."""

import json

import pytest

from repro.bench import (
    BenchResult,
    check_against_baseline,
    load_report,
    run_suite,
    write_report,
)
from repro.bench.kernel import (
    bench_event_alloc,
    bench_event_dispatch,
    bench_store_handoff,
    bench_timeout_chain,
)
from repro.bench.runner import REPORT_SCHEMA, host_clock, host_metadata


TINY = 0.005  # scale factor keeping each microbench to ~1k units


class TestKernelBenchmarks:
    def test_event_dispatch_counts_every_event(self):
        result = bench_event_dispatch(TINY)
        assert result.name == "kernel/events"
        assert result.metric == "events_per_s"
        assert result.n == 1_000
        assert result.value > 0
        assert result.seconds >= 0

    def test_event_alloc_counts_every_event(self):
        result = bench_event_alloc(TINY)
        assert result.name == "kernel/alloc"
        assert result.n == 1_001  # n relays + the seed event
        assert result.value > 0

    def test_timeout_chain_reports_simulated_time(self):
        result = bench_timeout_chain(TINY)
        assert result.n == 50 * 20
        assert result.extra["processes"] == 50
        assert result.extra["sim_seconds"] > 0

    def test_store_handoff_moves_every_item(self):
        result = bench_store_handoff(TINY)
        assert result.n == 8 * 75
        assert result.value > 0


class TestRunner:
    def test_host_clock_advances(self):
        first = host_clock()
        second = host_clock()
        assert second >= first

    def test_run_suite_quick_filters_and_repeats(self):
        lines = []
        results = run_suite(quick=True, only="kernel/events",
                            report=lines.append)
        assert [r.name for r in results] == ["kernel/events"]
        assert results[0].extra["best_of"] == 3
        assert len(lines) == 1 and "kernel/events" in lines[0]

    def test_render_mentions_name_and_metric(self):
        result = BenchResult(name="kernel/x", metric="ops_per_s",
                             value=1234.5, n=10, seconds=0.01,
                             extra={"k": 1})
        rendered = result.render()
        assert "kernel/x" in rendered
        assert "ops_per_s" in rendered
        assert "k=1" in rendered


class TestReports:
    def _results(self):
        return [
            BenchResult(name="kernel/events", metric="events_per_s",
                        value=1000.0, n=100, seconds=0.1),
            BenchResult(name="kernel/rpc", metric="roundtrips_per_s",
                        value=50.0, n=5, seconds=0.1),
        ]

    def test_write_then_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_kernel.json")
        write_report(self._results(), path, quick=True)
        document = load_report(path)
        assert document["schema"] == REPORT_SCHEMA
        assert document["quick"] is True
        assert [e["name"] for e in document["results"]] == [
            "kernel/events", "kernel/rpc"]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"schema": 999, "results": []}, handle)
        with pytest.raises(ValueError, match="schema"):
            load_report(path)

    def test_check_passes_within_tolerance(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._results(), path)
        current = self._results()
        current[0].value = 800.0  # 20% down, tolerance 30%
        assert check_against_baseline(current, path, tolerance=0.30) == []

    def test_check_flags_regression(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._results(), path)
        current = self._results()
        current[0].value = 500.0  # 50% down
        problems = check_against_baseline(current, path, tolerance=0.30)
        assert len(problems) == 1
        assert "kernel/events" in problems[0]
        assert "50%" in problems[0]

    def test_check_flags_asymmetric_benchmark_sets(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._results(), path)
        current = self._results()[:1]
        current.append(BenchResult(name="kernel/new", metric="x_per_s",
                                   value=1.0, n=1, seconds=1.0))
        problems = check_against_baseline(current, path)
        assert any("kernel/new" in p and "not in baseline" in p
                   for p in problems)
        assert any("kernel/rpc" in p and "not produced" in p
                   for p in problems)

    def test_check_rejects_bad_tolerance(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._results(), path)
        with pytest.raises(ValueError, match="tolerance"):
            check_against_baseline(self._results(), path, tolerance=1.5)

    def test_report_records_host_metadata(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._results(), path)
        host = load_report(path)["host"]
        assert host == host_metadata()
        assert host["python"] and host["platform"]

    def test_schema1_report_still_loads(self, tmp_path):
        # Pre-host-metadata baselines keep working.
        path = str(tmp_path / "old.json")
        with open(path, "w") as handle:
            json.dump({"schema": 1, "quick": True, "results": []}, handle)
        assert load_report(path)["schema"] == 1


class TestPerMetricTolerances:
    def _mixed_results(self):
        return [
            BenchResult(name="kernel/events", metric="events_per_s",
                        value=1000.0, n=100, seconds=0.1),
            BenchResult(name="macro/retwis", metric="txns_per_host_s",
                        value=1000.0, n=100, seconds=0.1),
        ]

    def test_prefix_tolerances_split_kernel_and_macro(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._mixed_results(), path)
        current = self._mixed_results()
        current[0].value = 650.0  # kernel down 35%
        current[1].value = 650.0  # macro down 35%
        problems = check_against_baseline(
            current, path, tolerances={"kernel/": 0.30, "macro/": 0.50})
        assert len(problems) == 1
        assert "kernel/events" in problems[0]
        assert "tolerance 30%" in problems[0]

    def test_longest_prefix_wins(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._mixed_results(), path)
        current = self._mixed_results()
        current[0].value = 650.0  # down 35%; exact-name override allows
        problems = check_against_baseline(
            current, path,
            tolerances={"kernel/": 0.30, "kernel/events": 0.40})
        assert problems == []

    def test_global_tolerance_is_the_fallback(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._mixed_results(), path)
        current = self._mixed_results()
        current[1].value = 650.0  # down 35%, only kernel/ overridden
        problems = check_against_baseline(
            current, path, tolerance=0.30, tolerances={"kernel/": 0.10})
        assert len(problems) == 1
        assert "macro/retwis" in problems[0]

    def test_bad_mapped_tolerance_rejected(self, tmp_path):
        path = str(tmp_path / "base.json")
        write_report(self._mixed_results(), path)
        with pytest.raises(ValueError, match="macro/"):
            check_against_baseline(
                self._mixed_results(), path, tolerances={"macro/": 1.2})
