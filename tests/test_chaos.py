"""Chaos tests: the system stays correct under rolling failures."""

import pytest

from repro.durability import DurabilityConfig
from repro.harness.chaos import ChaosMonkey, FailurePlan
from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import COMMITTED
from repro.sim import SeededRng
from repro.workloads import RetwisInstance


def make_cluster(**overrides):
    defaults = dict(num_shards=2, replicas_per_shard=3, num_clients=4,
                    backend="dram", clock_preset="ptp-sw", seed=137,
                    populate_keys=200)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestFailurePlan:
    def test_executes_in_time_order(self):
        cluster = make_cluster()
        plan = (FailurePlan(cluster)
                .recover(30e-3, "srv-0-1")
                .crash(10e-3, "srv-0-1"))
        plan.start()
        cluster.sim.run(until=0.05)
        assert [(round(t, 4), action, node)
                for t, action, node in plan.executed] == [
            (0.01, "crash", "srv-0-1"),
            (0.03, "recover", "srv-0-1"),
        ]
        assert not cluster.network.is_crashed("srv-0-1")

    def test_backup_blip_does_not_lose_commits(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        (FailurePlan(cluster)
            .crash(5e-3, "srv-0-1")
            .recover(25e-3, "srv-0-1")
            .start())

        def work():
            outcomes = []
            for i in range(20):
                txn = client.begin()
                yield client.txn_get(txn, f"key:{i}")
                client.put(txn, f"key:{i}", f"gen-{i}")
                outcomes.append((yield client.commit(txn)))
                yield cluster.sim.timeout(2e-3)
            return outcomes

        outcomes = cluster.sim.run_until_event(
            cluster.sim.process(work()))
        # One backup down still leaves a quorum: everything commits.
        assert all(outcome == COMMITTED for outcome in outcomes)

        def audit():
            values = []
            for i in range(20):
                txn = client.begin()
                values.append((yield client.txn_get(txn, f"key:{i}")))
                yield client.commit(txn)
            return values

        values = cluster.sim.run_until_event(
            cluster.sim.process(audit()))
        assert values == [f"gen-{i}" for i in range(20)]


class TestChaosMonkey:
    def test_never_breaks_quorum(self):
        cluster = make_cluster()
        monkey = ChaosMonkey(cluster, SeededRng(139),
                             interval=20e-3, downtime=10e-3)
        monkey.start()
        cluster.sim.run(until=0.4)
        assert len(monkey.kills) >= 10
        # Primaries were never touched.
        primaries = set(cluster.directory.all_primaries())
        for _, victim in monkey.kills:
            assert victim not in primaries

    def test_workload_survives_rolling_backup_failures(self):
        cluster = make_cluster(num_clients=4)
        monkey = ChaosMonkey(cluster, SeededRng(149),
                             interval=25e-3, downtime=12e-3)
        monkey.start()
        instances = [
            RetwisInstance(cluster.sim, client, cluster.populated_keys,
                           cluster.rng.substream(f"chaos{i}"), alpha=0.5)
            for i, client in enumerate(cluster.clients)
        ]
        procs = [instance.run_transactions(40) for instance in instances]
        for proc in procs:
            cluster.sim.run_until_event(proc)
        committed = sum(i.stats.committed for i in instances)
        assert committed >= 150, (
            f"only {committed}/160 logical transactions committed under "
            "rolling backup failures")
        assert len(monkey.kills) > 0

    def test_validates_parameters(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            ChaosMonkey(cluster, SeededRng(0), interval=10e-3,
                        downtime=10e-3)

    def test_quorum_safety_consults_partitions(self):
        """A replica on the wrong side of a partition cannot ack
        replication, so it must count against the kill budget even
        though it is not crashed."""
        cluster = make_cluster(num_shards=1)
        faults = cluster.network.install_faults()
        # srv-0-1 is cut off: the only connected majority left is
        # {srv-0-0, srv-0-2}, so srv-0-2 must never be killed.
        faults.partition(["srv-0-1"], ["srv-0-0", "srv-0-2"])
        monkey = ChaosMonkey(cluster, SeededRng(7),
                             interval=20e-3, downtime=10e-3)
        monkey.start()
        cluster.sim.run(until=0.4)
        victims = {victim for _, victim in monkey.kills}
        assert monkey.kills
        assert victims == {"srv-0-1"}

    def test_amnesia_mode_wipes_and_restarts_victims(self):
        """``amnesia=True`` kills for real: victims go through
        crash_server → WAL replay → catch-up, never count toward a
        quorum mid-recovery, and committed data still survives."""
        cluster = make_cluster(num_clients=2, clock_preset="perfect",
                               durability=DurabilityConfig())
        monkey = ChaosMonkey(cluster, SeededRng(163),
                             interval=8e-3, downtime=4e-3,
                             amnesia=True)
        monkey.start()
        instances = [
            RetwisInstance(cluster.sim, client, cluster.populated_keys,
                           cluster.rng.substream(f"amn{i}"), alpha=0.5)
            for i, client in enumerate(cluster.clients)
        ]
        procs = [instance.run_transactions(80) for instance in instances]
        for proc in procs:
            cluster.sim.run_until_event(proc)
        assert monkey.kills
        # Every victim was really wiped: its WAL had to be replayed.
        victims = {victim for _, victim in monkey.kills}
        for victim in victims:
            assert cluster.servers[victim].wal.replays >= 1, victim
        committed = sum(i.stats.committed for i in instances)
        assert committed >= 120, (
            f"only {committed}/160 logical transactions committed under "
            "rolling amnesia crashes")

    def test_include_primaries_with_master_failover(self):
        """With a master running, the monkey may kill primaries too;
        failover promotes a backup and committed data survives."""
        cluster = make_cluster(num_shards=1, num_clients=2,
                               with_master=True, clock_preset="perfect")
        client = cluster.clients[0]

        def seed():
            for i in range(10):
                txn = client.begin()
                yield client.txn_get(txn, f"key:{i}")
                client.put(txn, f"key:{i}", f"pre-{i}")
                outcome = yield client.commit(txn)
                assert outcome == COMMITTED
                yield cluster.sim.timeout(1e-3)

        cluster.sim.run_until_event(cluster.sim.process(seed()))

        monkey = ChaosMonkey(cluster, SeededRng(151),
                             interval=150e-3, downtime=100e-3,
                             include_primaries=True)
        monkey.start()
        cluster.sim.run(until=cluster.sim.now + 0.8)
        primaries_killed = [victim for _, victim in monkey.kills
                            if victim.endswith("-0")]
        assert "srv-0-0" in {v for _, v in monkey.kills} or \
            cluster.master.failovers, \
            f"no primary ever killed: {monkey.kills}"
        assert cluster.master.failovers, primaries_killed

        # After the dust settles, every seeded write is still readable.
        cluster.sim.run(until=cluster.sim.now + 0.3)

        def audit():
            values = []
            for i in range(10):
                txn = client.begin()
                values.append((yield client.txn_get(txn, f"key:{i}")))
                yield client.commit(txn)
            return values

        values = cluster.sim.run_until_event(
            cluster.sim.process(audit()))
        assert values == [f"pre-{i}" for i in range(10)]
