"""Tests for the whole-program simlint engine.

Covers the project model (symbol table, call-graph resolution,
exception-propagation fixpoint, the InlineWalker event stream), the
interprocedural rule families via golden snapshots over
``tests/fixtures/analysis/``, the SUP001 useless-suppression meta-rule,
the baseline staleness lifecycle, and the SARIF/github output formats.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import ModuleContext, all_rules
from repro.analysis.project import InlineWalker, Project, uncaught
from repro.analysis.sarif import render_sarif

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "analysis"


def make_project(sources):
    """Build a Project from {path: source} mappings."""
    contexts = [ModuleContext(path, textwrap.dedent(source))
                for path, source in sources.items()]
    return Project(contexts)


def run_on(tmp_path, source, name="snippet.py", **kwargs):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    findings, files = analyze_paths([str(path)], **kwargs)
    assert files == 1
    return findings


# -- golden snapshots per rule family --------------------------------------


class TestGoldenFindings:
    @pytest.mark.parametrize("family", ["atm", "pro", "det", "dur"])
    def test_family_matches_golden(self, family):
        root = FIXTURES / family
        golden = json.loads((root / "golden.json").read_text())
        findings, files = analyze_paths([str(root)],
                                        select=golden["select"])
        assert files >= 1
        # Golden paths are relative to the family dir so the snapshot
        # does not depend on the directory pytest was launched from.
        prefix = root.as_posix() + "/"
        got = []
        for f in findings:
            entry = f.to_json()
            entry.pop("fingerprint")
            full = Path(entry["path"]).resolve().as_posix()
            assert full.startswith(prefix), entry
            entry["path"] = full[len(prefix):]
            got.append(entry)
        assert got == golden["findings"]

    def test_each_family_catches_a_seeded_bug(self):
        for family, rules in [("atm", {"ATM001", "ATM002"}),
                              ("pro", {"PRO001", "PRO002", "PRO003",
                                       "PRO004"}),
                              ("det", {"DET101"}),
                              ("dur", {"DUR001", "DUR002", "DUR003",
                                       "DUR004", "DUR005"})]:
            golden = json.loads(
                (FIXTURES / family / "golden.json").read_text())
            fired = {entry["rule"] for entry in golden["findings"]}
            assert fired, family
            assert fired <= rules, family


# -- DUR: crash-consistency rules ------------------------------------------


class TestDurRules:
    """Unit tests for the DUR family over miniature projects; the golden
    snapshot covers the fixture corpus end to end."""

    HANDLER = """\
        class SemelPutReply:
            def __init__(self, applied=False):
                self.applied = applied


        class Server:
            def __init__(self, sim, node, backend, wal):
                self.sim = sim
                self.node = node
                self.backend = backend
                self.wal = wal
                self.node.register("semel.put", self._handle_put)

            def _handle_put(self, request):
                yield self.backend.put(request.key, request.value,
                                       request.version)
                {append}
                yield from self._replicate(request)
                return SemelPutReply(applied={applied})

            def _replicate(self, request):
                yield self.node.call("b1", "semel.replicate", request,
                                     timeout=0.01)
    """

    def _check(self, rule_id, source):
        project = make_project({"milana/mod.py": source})
        return list(all_rules()[rule_id].check_project(project))

    def test_dur001_nosync_append_before_claiming_ack(self):
        source = self.HANDLER.format(
            append=("yield from self.wal.append_put(\n"
                    "            request.key, request.value,"
                    " request.version, sync=False)"),
            applied="True")
        findings = self._check("DUR001", source)
        assert len(findings) == 1
        assert "sync=False" in findings[0].message
        assert "_replicate" in findings[0].message

    def test_dur001_config_sync_append_is_clean(self):
        source = self.HANDLER.format(
            append=("yield from self.wal.append_put(\n"
                    "            request.key, request.value,"
                    " request.version,\n"
                    "            sync=self.wal.config.sync_semel)"),
            applied="True")
        assert self._check("DUR001", source) == []

    def test_dur001_non_claiming_reply_is_exempt(self):
        # applied=False renounces durability: nothing acked can be lost.
        source = self.HANDLER.format(
            append=("yield from self.wal.append_put(\n"
                    "            request.key, request.value,"
                    " request.version, sync=False)"),
            applied="False")
        assert self._check("DUR001", source) == []

    def test_dur002_unlogged_mutation_on_wal_enabled_path(self):
        source = self.HANDLER.format(append="pass", applied="True")
        findings = self._check("DUR002", source)
        assert len(findings) == 1
        assert "no WAL append" in findings[0].message

    def test_dur002_logged_mutation_is_clean(self):
        source = self.HANDLER.format(
            append=("yield from self.wal.append_put(\n"
                    "            request.key, request.value,"
                    " request.version, sync=False)"),
            applied="True")
        assert self._check("DUR002", source) == []

    def test_dur002_wal_free_class_is_out_of_scope(self):
        # No self.wal anywhere: not a WAL-enabled surface, no debt.
        source = self.HANDLER.format(
            append="pass", applied="True").replace(
            "                self.wal = wal\n", "")
        assert self._check("DUR002", source) == []

    DUR003 = """\
        class Server:
            def __init__(self, sim):
                self.sim = sim
                self._inflight = {{}}

            def _handle(self, request):
                try:
                    yield self.sim.timeout(0.01)
                finally:
                    {cleanup}
                return None

            def crash(self):
                self._inflight = {{}}
    """

    def test_dur003_pop_without_default(self):
        findings = self._check(
            "DUR003",
            self.DUR003.format(cleanup="self._inflight.pop(request.key)"))
        assert len(findings) == 1
        assert ".pop(key, None)" in findings[0].message

    def test_dur003_pop_with_default_is_clean(self):
        findings = self._check(
            "DUR003",
            self.DUR003.format(
                cleanup="self._inflight.pop(request.key, None)"))
        assert findings == []

    def test_dur003_only_applies_to_crashable_classes(self):
        source = self.DUR003.format(
            cleanup="self._inflight.pop(request.key)")
        source = source.replace(
            "            def crash(self):\n"
            "                self._inflight = {}\n", "")
        assert self._check("DUR003", source) == []

    def test_dur004_direct_wallclock_payload(self):
        findings = self._check("DUR004", """\
            import time


            class Server:
                def flush_daemon(self):
                    while True:
                        yield self.sim.timeout(1.0)
                        yield from self.wal.append(
                            "txn", ("stamp", time.time()), sync=True)
        """)
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_dur005_dynamic_kind_is_skipped(self):
        # A pass-through kind variable cannot be cross-checked.
        findings = self._check("DUR005", """\
            KNOWN = "known"


            class Server:
                def log(self, kind, payload):
                    yield from self.wal.append(kind, payload, sync=True)

                def replay_wal(self):
                    for entry in self.wal.durable_records():
                        if entry.kind == KNOWN:
                            yield self.backend.put(entry.payload)
        """)
        assert findings == []

    def test_dur005_silent_without_a_replay_dispatcher(self):
        # Partial analyses must not indict kinds whose arms they never read.
        findings = self._check("DUR005", """\
            class Server:
                def log(self, payload):
                    yield from self.wal.append("orphan", payload,
                                               sync=True)
        """)
        assert findings == []

    def test_dur001_counterpart_names_the_dynamic_twin(self):
        rule = all_rules()["DUR001"]
        assert "test_durability" in rule.counterpart

    def test_dur001_fixture_window_matches_lost_write_witness(self):
        """The acceptance coupling: the DUR001 golden finding's suspend
        window is the replication wait — the exact seam where the lossy
        nemesis control in test_durability.py loses the acked write."""
        golden = json.loads(
            (FIXTURES / "dur" / "golden.json").read_text())
        entry = next(e for e in golden["findings"]
                     if e["rule"] == "DUR001")
        fixture = FIXTURES / "dur" / "milana" / "ack_before_fsync.py"
        lines = fixture.read_text().splitlines()
        witness = next(i for i, line in enumerate(lines, 1)
                       if "lost-write crash window" in line)
        # The suspend is the multi-line yield ending at the comment.
        assert f"line {witness - 1} loses the acked write" \
            in entry["message"]


# -- project model ---------------------------------------------------------


class TestProjectModel:
    def test_symbol_table_and_qualnames(self):
        project = make_project({"pkg/mod.py": """\
            class Server:
                def handle(self):
                    yield from self._helper()

                def _helper(self):
                    yield None

            def free():
                return 1
        """})
        names = set(project.functions)
        assert "pkg.mod.Server.handle" in names
        assert "pkg.mod.Server._helper" in names
        assert "pkg.mod.free" in names
        handle = project.functions["pkg.mod.Server.handle"]
        assert handle.is_generator

    def test_self_call_resolution_through_inheritance(self):
        project = make_project({"pkg/mod.py": """\
            class Base:
                def _shared(self):
                    return 1

            class Child(Base):
                def run(self):
                    return self._shared()
        """})
        run_info = project.functions["pkg.mod.Child.run"]
        call = run_info.call_sites[0]
        assert call.callee is not None
        assert call.callee.qualname == "pkg.mod.Base._shared"

    def test_transitive_raises_crosses_functions(self):
        project = make_project({"pkg/mod.py": """\
            class QuorumError(Exception):
                pass

            class S:
                def outer(self):
                    yield from self.inner()

                def inner(self):
                    if True:
                        raise QuorumError("lost")
                    yield None

                def guarded(self):
                    try:
                        yield from self.inner()
                    except QuorumError:
                        pass
        """})
        outer = project.functions["pkg.mod.S.outer"]
        guarded = project.functions["pkg.mod.S.guarded"]
        assert "QuorumError" in project.transitive_raises(outer)
        assert "QuorumError" not in project.transitive_raises(guarded)

    def test_transitive_raises_terminates_on_cycles(self):
        project = make_project({"pkg/mod.py": """\
            class S:
                def ping(self, n):
                    if n:
                        return self.pong(n - 1)
                    raise ValueError("done")

                def pong(self, n):
                    return self.ping(n)
        """})
        ping = project.functions["pkg.mod.S.ping"]
        pong = project.functions["pkg.mod.S.pong"]
        assert "ValueError" in project.transitive_raises(ping)
        assert "ValueError" in project.transitive_raises(pong)

    def test_except_rpcerror_does_not_cover_quorumerror(self):
        assert uncaught({"QuorumError"}, {"RpcError"})
        assert not uncaught({"QuorumError"}, {"Exception"})
        assert not uncaught({"RpcTimeout", "AppError"}, {"RpcError"})

    def test_inline_walker_sees_through_helpers(self):
        project = make_project({"milana/mod.py": """\
            class S:
                def root_daemon(self):
                    while True:
                        yield self.sim.timeout(1)
                        yield from self._work()

                def _work(self):
                    if "k" not in self.table:
                        return
                    yield self.sim.timeout(1)
                    self.table["k"] = 1
        """})
        root = project.functions["milana.mod.S.root_daemon"]
        events = InlineWalker(project).walk(root)
        kinds = [(e.kind, e.family) for e in events
                 if e.family == "table" or e.kind == "suspend"]
        guard = kinds.index(("guard_read", "table"))
        write = kinds.index(("write", "table"))
        assert guard < write
        assert any(k == ("suspend", None) for k in kinds[guard:write])

    def test_early_return_branch_suspensions_are_rolled_back(self):
        project = make_project({"milana/mod.py": """\
            class S:
                def root_daemon(self):
                    while True:
                        if "k" in self.cache:
                            yield from self._flush()
                            return
                        self.cache["k"] = 1

                def _flush(self):
                    yield self.sim.timeout(1)
        """})
        root = project.functions["milana.mod.S.root_daemon"]
        events = InlineWalker(project).walk(root)
        # The suspension lives only inside the abandoned early-return
        # branch, so it is marked dead: the write after the branch must
        # not look like it happened "after a yield" on a path that was
        # never taken alongside it.
        assert any(e.kind == "dead_suspend" for e in events)
        assert all(e.kind != "suspend" for e in events)
        assert any(e.kind == "write" and e.family == "cache"
                   for e in events)
        # ... and ATM002 agrees: no finding on this module.
        rule = all_rules()["ATM002"]
        assert list(rule.check_project(project)) == []


# -- SUP001: useless suppressions ------------------------------------------


class TestUselessSuppressions:
    def test_unused_named_suppression_reported(self, tmp_path):
        findings = run_on(tmp_path, """\
            def f():
                return 1  # simlint: disable=DET001
        """)
        assert [f.rule_id for f in findings] == ["SUP001"]
        assert "DET001" in findings[0].message

    def test_used_suppression_not_reported(self, tmp_path):
        findings = run_on(tmp_path, """\
            import time

            def f():
                return time.time()  # simlint: disable=DET001
        """)
        assert findings == []

    def test_unused_blanket_suppression_reported(self, tmp_path):
        findings = run_on(tmp_path, """\
            def f():
                return 1  # simlint: disable
        """)
        assert [f.rule_id for f in findings] == ["SUP001"]
        assert "blanket" in findings[0].message

    def test_unknown_rule_id_in_suppression_reported(self, tmp_path):
        findings = run_on(tmp_path, """\
            def f():
                return 1  # simlint: disable=NOPE999
        """)
        assert [f.rule_id for f in findings] == ["SUP001"]
        assert "NOPE999" in findings[0].message

    def test_unused_file_suppression_reported(self, tmp_path):
        findings = run_on(tmp_path, """\
            # simlint: disable-file=DET002
            def f():
                return 1
        """)
        assert [f.rule_id for f in findings] == ["SUP001"]
        assert "file" in findings[0].message

    def test_filtered_runs_skip_usefulness_judgement(self, tmp_path):
        # With --select the suppressed rule may simply not be running;
        # only unknown ids are still reported.
        findings = run_on(tmp_path, """\
            def f():
                return 1  # simlint: disable=DET001
        """, select=["SUP001"])
        assert findings == []

    def test_sup001_suppressible_per_file(self, tmp_path):
        findings = run_on(tmp_path, """\
            # simlint: disable-file=SUP001
            def f():
                return 1  # simlint: disable=DET001
        """)
        assert findings == []


# -- baseline lifecycle ----------------------------------------------------


class TestBaselineLifecycle:
    def _violating(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import time\n\ndef f():\n"
                        "    return time.time()\n")
        return path

    def test_stale_entries_detected_and_pruned(self, tmp_path):
        path = self._violating(tmp_path)
        findings, _ = analyze_paths([str(path)])
        baseline = Baseline.from_findings(findings)
        assert baseline.stale_entries(findings) == []
        path.write_text("def f():\n    return 0.0\n")
        clean, _ = analyze_paths([str(path)])
        stale = baseline.stale_entries(clean)
        assert len(stale) == len(findings)
        assert len(baseline.pruned(clean)) == 0
        # Pruning with the findings still firing keeps the entries.
        assert len(baseline.pruned(findings)) == len(findings)

    def test_cli_fail_on_stale_and_update(self, tmp_path, capsys):
        path = self._violating(tmp_path)
        base = tmp_path / "base.json"
        assert cli_main([str(path), "--write-baseline", str(base)]) == 0
        path.write_text("def f():\n    return 0.0\n")
        assert cli_main([str(path), "--baseline", str(base)]) == 0
        assert cli_main([str(path), "--baseline", str(base),
                         "--fail-on-stale"]) == 1
        assert cli_main([str(path), "--baseline", str(base),
                         "--update-baseline"]) == 0
        assert len(Baseline.load(base)) == 0
        assert cli_main([str(path), "--baseline", str(base),
                         "--fail-on-stale"]) == 0
        capsys.readouterr()

    def test_stale_count_in_json_output(self, tmp_path, capsys):
        path = self._violating(tmp_path)
        base = tmp_path / "base.json"
        cli_main([str(path), "--write-baseline", str(base)])
        path.write_text("def f():\n    return 0.0\n")
        capsys.readouterr()
        cli_main([str(path), "--baseline", str(base), "--format",
                  "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["stale_baseline"] == 1


# -- output formats --------------------------------------------------------


class TestOutputFormats:
    def test_sarif_document_shape(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import time\n\ndef f():\n"
                        "    return time.time()\n")
        findings, _ = analyze_paths([str(path)])
        log = json.loads(render_sarif(findings, all_rules()))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simlint"
        ids = {r["id"] for r in driver["rules"]}
        assert {"DET001", "ATM001", "PRO001", "DET101", "SUP001"} <= ids
        result = run["results"][0]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 4
        assert result["partialFingerprints"]["simlint/v1"]

    def test_sarif_cli_output_file(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f():\n    return 1\n")
        out = tmp_path / "report.sarif"
        assert cli_main([str(path), "--format", "sarif",
                         "--output", str(out)]) == 0
        log = json.loads(out.read_text())
        assert log["runs"][0]["results"] == []

    def test_github_annotations(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("import time\n\ndef f():\n"
                        "    return time.time()\n")
        assert cli_main([str(path), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=simlint DET001::" in out
