"""Tests for the offline correctness checkers, including an end-to-end
linearizability check of SEMEL's single-key RPCs."""

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.net import AppError
from repro.semel import SemelClient
from repro.verify import (
    Op,
    TxnEntry,
    check_linearizability,
    check_serializability,
)


class TestSerializabilityChecker:
    def test_empty_history(self):
        assert check_serializability([]) == (True, None)

    def test_simple_chain_ok(self):
        history = [
            TxnEntry("t1", reads={}, writes={"x": (1.0, 1)}, ts=1.0),
            TxnEntry("t2", reads={"x": (1.0, 1)},
                     writes={"x": (2.0, 2)}, ts=2.0),
        ]
        assert check_serializability(history)[0]

    def test_lost_update_cycle_detected(self):
        """Both transactions read the initial version and both write:
        classic lost update — t1 -> t2 (ww) and t2 -> t1 (rw)."""
        history = [
            TxnEntry("t1", reads={"x": None},
                     writes={"x": (1.0, 1)}, ts=1.0),
            TxnEntry("t2", reads={"x": None},
                     writes={"x": (2.0, 2)}, ts=2.0),
        ]
        ok, witness = check_serializability(history)
        assert not ok
        assert witness[0] == "cycle"

    def test_write_skew_cycle_detected(self):
        """t1 reads y and writes x; t2 reads x and writes y; both read
        pre-images: the classic write-skew cycle."""
        history = [
            TxnEntry("t1", reads={"y": None},
                     writes={"x": (1.0, 1)}, ts=1.0),
            TxnEntry("t2", reads={"x": None},
                     writes={"y": (2.0, 2)}, ts=2.0),
        ]
        ok, _ = check_serializability(history)
        assert not ok

    def test_snapshot_read_of_older_version_ok(self):
        """A reader serialized before a later writer is fine even though
        it committed afterwards (MVCC's whole point)."""
        history = [
            TxnEntry("w1", writes={"x": (1.0, 1)}, ts=1.0),
            TxnEntry("w2", writes={"x": (3.0, 2)}, ts=3.0),
            TxnEntry("r", reads={"x": (1.0, 1)}, writes={}, ts=4.0),
        ]
        assert check_serializability(history)[0]


class TestLinearizabilityChecker:
    def test_empty(self):
        assert check_linearizability([])

    def test_sequential_history(self):
        ops = [
            Op("write", "a", 0.0, 1.0),
            Op("read", "a", 2.0, 3.0),
            Op("write", "b", 4.0, 5.0),
            Op("read", "b", 6.0, 7.0),
        ]
        assert check_linearizability(ops)

    def test_stale_read_rejected(self):
        ops = [
            Op("write", "a", 0.0, 1.0),
            Op("write", "b", 2.0, 3.0),
            Op("read", "a", 4.0, 5.0),   # b already complete: stale
        ]
        assert not check_linearizability(ops)

    def test_concurrent_read_may_see_either(self):
        overlap_old = [
            Op("write", "a", 0.0, 1.0),
            Op("write", "b", 2.0, 4.0),
            Op("read", "a", 2.5, 3.0),   # concurrent with write b
        ]
        overlap_new = [
            Op("write", "a", 0.0, 1.0),
            Op("write", "b", 2.0, 4.0),
            Op("read", "b", 2.5, 3.0),
        ]
        assert check_linearizability(overlap_old)
        assert check_linearizability(overlap_new)

    def test_initial_value_read(self):
        ops = [
            Op("read", None, 0.0, 0.5),
            Op("write", "a", 1.0, 2.0),
        ]
        assert check_linearizability(ops, initial=None)

    def test_read_from_nowhere_rejected(self):
        ops = [Op("read", "ghost", 0.0, 1.0)]
        assert not check_linearizability(ops)

    def test_length_guard(self):
        ops = [Op("write", i, i, i + 0.5) for i in range(25)]
        with pytest.raises(ValueError, match="too long"):
            check_linearizability(ops)

    def test_op_validation(self):
        with pytest.raises(ValueError):
            Op("swap", 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            Op("read", 1, 2.0, 1.0)


class TestSemelLinearizability:
    """End-to-end: record a concurrent SEMEL history and check it."""

    def _history(self, clock_preset, seed):
        cluster = Cluster(ClusterConfig(
            num_shards=1, replicas_per_shard=3, num_clients=0,
            backend="dram", clock_preset=clock_preset, seed=seed,
            populate_keys=0))
        sim = cluster.sim
        clients = [
            SemelClient(sim, cluster.network, cluster.directory,
                        cluster.clock_ensemble.clock_for(f"c{i}"),
                        client_id=i + 1)
            for i in range(3)
        ]
        ops = []

        def writer(client, count, spacing):
            for i in range(count):
                start = sim.now
                try:
                    yield client.put("reg", f"{client.client_id}-{i}")
                except AppError:
                    # Stale write rejected: it never took effect, so it
                    # does not enter the history (at-most-once, §3.3).
                    yield sim.timeout(spacing)
                    continue
                ops.append(Op("write", f"{client.client_id}-{i}",
                              start, sim.now))
                yield sim.timeout(spacing)

        def reader(client, count, spacing):
            for _ in range(count):
                start = sim.now
                result = yield client.get("reg")
                value = result[1] if result is not None else None
                ops.append(Op("read", value, start, sim.now))
                yield sim.timeout(spacing)

        procs = [
            sim.process(writer(clients[0], 4, 0.9e-3)),
            sim.process(writer(clients[1], 4, 1.1e-3)),
            sim.process(reader(clients[2], 8, 0.5e-3)),
        ]
        for proc in procs:
            sim.run_until_event(proc)
        return ops

    def test_current_time_ops_linearizable_with_synced_clocks(self):
        ops = self._history("ptp-sw", seed=179)
        assert len(ops) >= 12
        assert check_linearizability(ops, initial=None)

    def test_perfect_clock_history_linearizable(self):
        ops = self._history("perfect", seed=181)
        assert check_linearizability(ops, initial=None)
