"""Smoke tests: every shipped example must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.stem for path in EXAMPLES])
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}")
    assert result.stdout.strip(), f"{example.name} printed nothing"
