"""Nemesis subsystem tests: link faults, clock anomalies, RPC backoff,
fault plans, protocol hardening under faults, and post-heal audits."""

import pytest

from repro.faults import (
    FaultyClock,
    LinkFaults,
    NemesisPlan,
    clock_storm,
    partition_primary_from_backups,
    run_audit,
    run_nemesis,
    nemesis_config,
)
from repro.harness.cluster import Cluster, ClusterConfig
from repro.milana import ABORTED, COMMITTED, PREPARED, TransactionRecord
from repro.net.rpc import RpcTimeout
from repro.sim import SeededRng
from repro.verify import TxnEntry
from repro.versioning import Version
from repro.wire import MilanaTxnStatus


def make_cluster(**overrides):
    defaults = dict(num_shards=1, replicas_per_shard=3, num_clients=2,
                    backend="dram", clock_preset="perfect", seed=23,
                    populate_keys=20)
    defaults.update(overrides)
    return Cluster(ClusterConfig(**defaults))


class TestLinkFaults:
    def test_block_is_directional(self):
        faults = LinkFaults(SeededRng(1))
        faults.block("a", "b")
        dropped, _ = faults.apply("a", "b")
        assert dropped
        dropped, _ = faults.apply("b", "a")
        assert not dropped
        assert faults.stats.messages_blocked == 1

    def test_partition_symmetric_and_heal(self):
        faults = LinkFaults(SeededRng(1))
        faults.partition(["a"], ["b", "c"])
        assert faults.is_blocked("a", "b")
        assert faults.is_blocked("b", "a")
        assert not faults.is_blocked("b", "c")
        faults.heal_partition(["a"], ["b", "c"])
        assert not faults.active

    def test_asymmetric_partition_blocks_one_direction(self):
        faults = LinkFaults(SeededRng(1))
        faults.partition(["a"], ["b"], symmetric=False)
        assert faults.is_blocked("a", "b")
        assert not faults.is_blocked("b", "a")

    def test_loss_is_probabilistic_and_seeded(self):
        outcomes = []
        for _ in range(2):
            faults = LinkFaults(SeededRng(77))
            faults.set_loss(0.5)
            outcomes.append([faults.apply("a", "b")[0]
                             for _ in range(100)])
        assert outcomes[0] == outcomes[1]
        lost = sum(outcomes[0])
        assert 20 < lost < 80
        assert faults.stats.messages_lost == lost

    def test_extra_latency_reported_not_dropped(self):
        faults = LinkFaults(SeededRng(1))
        faults.set_extra_latency(2e-3, "a", "b")
        dropped, extra = faults.apply("a", "b")
        assert not dropped
        assert extra == 2e-3
        assert faults.apply("b", "a") == (False, 0.0)
        assert faults.stats.messages_delayed == 1

    def test_heal_clears_everything(self):
        faults = LinkFaults(SeededRng(1))
        faults.block("a", "b")
        faults.set_loss(0.1)
        faults.set_extra_latency(1e-3)
        assert faults.active
        faults.heal()
        assert not faults.active
        assert faults.apply("a", "b") == (False, 0.0)


class TestNetworkFaultIntegration:
    def test_faults_lazy_until_installed(self):
        cluster = make_cluster()
        assert cluster.network.faults is None

    def test_blocked_link_times_out_and_heals(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        faults = cluster.network.install_faults()
        faults.block(client.node.name, "srv-0-0")

        def probe():
            try:
                yield client.node.call(
                    "srv-0-0", "milana.txn_status",
                    MilanaTxnStatus(txn_id="t"), timeout=5e-3)
            except RpcTimeout:
                return "timeout"
            return "ok"

        assert cluster.sim.run_until_event(
            cluster.sim.process(probe())) == "timeout"
        faults.heal()
        assert cluster.sim.run_until_event(
            cluster.sim.process(probe())) == "ok"

    def test_can_communicate_sees_blocks_and_crashes(self):
        cluster = make_cluster()
        network = cluster.network
        assert network.can_communicate("srv-0-0", "srv-0-1")
        network.install_faults().block("srv-0-0", "srv-0-1")
        assert not network.can_communicate("srv-0-0", "srv-0-1")
        assert network.can_communicate("srv-0-1", "srv-0-0")
        network.crash("srv-0-1")
        assert not network.can_communicate("srv-0-1", "srv-0-0")


class TestFaultyClock:
    def test_ensemble_clocks_are_wrapped(self):
        cluster = make_cluster()
        clock = cluster.clock_ensemble.clock_for("client-0")
        assert isinstance(clock, FaultyClock)
        assert not clock.faulted

    def test_step_shifts_now(self):
        cluster = make_cluster()
        clock = cluster.clock_ensemble.clock_for("client-0")
        base = clock.now()
        clock.step(5e-3)
        assert clock.faulted
        assert clock.now() == pytest.approx(base + 5e-3, abs=1e-9)

    def test_spike_expires(self):
        cluster = make_cluster()
        clock = cluster.clock_ensemble.clock_for("client-0")
        clock.spike(2e-3, duration=5e-3)
        assert clock.now() >= cluster.sim.now + 2e-3 - 1e-9
        cluster.sim.run(until=cluster.sim.now + 20e-3)
        assert not clock.faulted
        assert clock.now() == pytest.approx(cluster.sim.now, abs=1e-9)

    def test_drift_accumulates_and_clear_restores(self):
        cluster = make_cluster()
        clock = cluster.clock_ensemble.clock_for("client-0")
        clock.set_drift(0.5)
        cluster.sim.run(until=cluster.sim.now + 10e-3)
        skew = clock.now() - cluster.sim.now
        assert skew == pytest.approx(5e-3, rel=0.01)
        clock.clear()
        assert not clock.faulted
        # The monotonic guard absorbs the backward jump; once simulated
        # time passes the old high-water mark the clock reads true again.
        cluster.sim.run(until=cluster.sim.now + 20e-3)
        assert clock.now() == pytest.approx(cluster.sim.now, abs=1e-9)


class TestRetryBackoff:
    def test_retries_back_off_between_attempts(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        cluster.fail_server("srv-0-1")

        def probe():
            start = cluster.sim.now
            try:
                yield client.node.call(
                    "srv-0-1", "milana.txn_status",
                    MilanaTxnStatus(txn_id="t"), timeout=5e-3, retries=3)
            except RpcTimeout:
                pass
            return cluster.sim.now - start

        elapsed = cluster.sim.run_until_event(
            cluster.sim.process(probe()))
        # 4 attempts x 5 ms plus three jittered backoff sleeps.
        assert elapsed > 4 * 5e-3
        assert elapsed < 4 * 5e-3 + 3 * 8e-3

    def test_backoff_is_deterministic(self):
        def measure():
            cluster = make_cluster()
            client = cluster.clients[0]
            cluster.fail_server("srv-0-1")

            def probe():
                start = cluster.sim.now
                try:
                    yield client.node.call(
                        "srv-0-1", "milana.txn_status",
                        MilanaTxnStatus(txn_id="t"), timeout=5e-3,
                        retries=4)
                except RpcTimeout:
                    pass
                return cluster.sim.now - start

            return cluster.sim.run_until_event(
                cluster.sim.process(probe()))

        assert measure() == measure()


class TestNemesisPlan:
    def test_events_fire_in_time_order(self):
        cluster = make_cluster()
        plan = NemesisPlan(cluster)
        plan.heal_partition(30e-3, ["srv-0-0"], ["srv-0-1"])
        plan.partition(10e-3, ["srv-0-0"], ["srv-0-1"])
        plan.start()
        cluster.sim.run(until=20e-3)
        assert cluster.network.faults.is_blocked("srv-0-0", "srv-0-1")
        cluster.sim.run(until=50e-3)
        assert not cluster.network.faults.active
        assert [label.split()[0] for _, label in plan.timeline] == \
            ["partition", "heal"]

    def test_clock_storm_is_seeded(self):
        def build():
            cluster = make_cluster(num_clients=3)
            plan = clock_storm(cluster, SeededRng(5), 0.0, 0.1)
            plan.start()
            cluster.sim.run(until=0.15)
            return plan.timeline

        assert build() == build()

    def test_end_time(self):
        cluster = make_cluster()
        plan = partition_primary_from_backups(
            cluster, "shard0", 10e-3, 25e-3)
        assert plan.end_time == pytest.approx(35e-3)


class TestProtocolHardening:
    def test_lost_prepare_reply_yields_unknown_and_reliable_abort(self):
        """Responses from the primary are lost: the client cannot tell
        whether the prepare landed. The vote must be UNKNOWN (not a
        blind ABORT) and the abort decision must be delivered reliably
        once the link heals, clearing the prepared record."""
        cluster = make_cluster()
        client = cluster.clients[0]
        faults = cluster.network.install_faults()

        def commit_one():
            txn = client.begin()
            yield client.txn_get(txn, "key:0")
            client.put(txn, "key:0", "in-doubt")
            # The reply path dies between the read and the 2PC.
            faults.block("srv-0-0", client.node.name)
            return (yield client.commit(txn))

        outcome = cluster.sim.run_until_event(
            cluster.sim.process(commit_one()))
        assert outcome == ABORTED
        assert client.stats.unknown_votes >= 1
        assert client.stats.reliable_decides >= 1
        server = cluster.servers["srv-0-0"]
        assert server.txn_table  # the prepare did land

        faults.heal()
        cluster.sim.run(until=cluster.sim.now + 0.3)
        statuses = {r.status for r in server.txn_table.values()}
        assert statuses == {ABORTED}
        assert server.key_states.peek("key:0").prepared is None

    def test_reliable_decide_mode_commits_with_acked_delivery(self):
        cluster = make_cluster()
        client = cluster.clients[0]
        client.reliable_decide = True

        def commit_one():
            txn = client.begin()
            yield client.txn_get(txn, "key:1")
            client.put(txn, "key:1", "acked")
            return (yield client.commit(txn))

        outcome = cluster.sim.run_until_event(
            cluster.sim.process(commit_one()))
        assert outcome == COMMITTED
        assert client.stats.reliable_decides >= 1
        cluster.sim.run(until=cluster.sim.now + 50e-3)
        assert cluster.servers["srv-0-0"].txn_table[
            next(iter(cluster.servers["srv-0-0"].txn_table))
        ].status == COMMITTED

    def test_client_answers_termination_queries(self):
        cluster = make_cluster()
        client = cluster.clients[0]

        def commit_then_query():
            txn = client.begin()
            yield client.txn_get(txn, "key:2")
            client.put(txn, "key:2", "v")
            yield client.commit(txn)
            server = cluster.servers["srv-0-1"]
            reply = yield server.node.call(
                client.node.name, "milana.txn_outcome",
                MilanaTxnStatus(txn_id=txn.txn_id), timeout=5e-3)
            return reply.status

        assert cluster.sim.run_until_event(
            cluster.sim.process(commit_then_query())) == COMMITTED


class TestAuditChecks:
    def _history_cluster(self):
        return Cluster(nemesis_config(
            num_shards=1, num_clients=1, populate_keys=10, seed=5))

    def test_clean_cluster_passes(self):
        cluster = self._history_cluster()
        report = run_audit(cluster)
        assert report.passed
        assert report.committed_txns == 0

    def test_detects_lost_committed_write(self):
        cluster = self._history_cluster()
        cluster.clients[0].history.append(TxnEntry(
            txn_id="phantom", reads={},
            writes={"key:0": Version(50.0, 1)}, ts=50.0))
        report = run_audit(cluster)
        assert not report.passed
        assert report.lost_writes == [("phantom", "key:0", (50.0, 1))]

    def test_detects_stuck_prepared(self):
        cluster = self._history_cluster()
        primary = cluster.primary_server("shard0")
        primary.txn_table["wedged"] = TransactionRecord(
            txn_id="wedged", client_id=9, client_name="ghost",
            ts_commit=1.0, reads=[], writes=[("key:1", "x")],
            participants=["shard0"], status=PREPARED)
        report = run_audit(cluster)
        assert not report.passed
        assert report.stuck_prepared == [(primary.name, "wedged")]

    def test_detects_replica_divergence(self):
        cluster = self._history_cluster()
        version = Version(60.0, 1)
        primary = cluster.primary_server("shard0")
        primary.backend.bulk_load([("key:2", "only-here", version)])
        cluster.clients[0].history.append(TxnEntry(
            txn_id="skewed", reads={}, writes={"key:2": version},
            ts=60.0))
        report = run_audit(cluster)
        assert not report.passed
        assert not report.lost_writes  # the primary does have it
        assert len(report.divergent) == 2  # both backups lag


class TestNemesisScenarios:
    def test_asymmetric_partition_acceptance(self):
        """The PR's acceptance scenario: clients reach the primary but
        the primary cannot reach its backups; the workload runs to
        completion, the partition heals, and every audit check holds."""
        result = run_nemesis("asymmetric-partition", duration=0.25)
        assert result.passed, result.audit.summary()
        assert result.audit.committed_txns > 0
        assert result.audit.checked_writes > 0
        assert result.fault_stats.messages_blocked > 0
        assert any("asymmetric partition" in label
                   for _, label in result.timeline)
        assert any("heal" in label for _, label in result.timeline)

    def test_loss_storm_under_ycsb(self):
        result = run_nemesis("loss-storm", workload="ycsb",
                             duration=0.15, fault_duration=0.08)
        assert result.passed, result.audit.summary()
        assert result.fault_stats.messages_lost > 0

    def test_runs_are_deterministic(self):
        first = run_nemesis("clock-storm", duration=0.15)
        second = run_nemesis("clock-storm", duration=0.15)
        assert first.summary() == second.summary()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_nemesis("nope")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_nemesis("partition", workload="tpcc")
