"""Edge-case tests for the simulation kernel beyond the basics."""

import pytest

from repro.sim import (
    Interrupt,
    Resource,
    SeededRng,
    Simulator,
    Store,
)


class TestEventEdgeCases:
    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(RuntimeError, match="already triggered"):
            event.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            sim.event().value

    def test_defused_failure_does_not_raise(self):
        sim = Simulator()
        event = sim.event()
        event.defused = True
        event.fail(ValueError("swallowed"))
        sim.run()  # no raise

    def test_any_of_failure_propagates_to_waiter(self):
        sim = Simulator()

        def failer():
            yield sim.timeout(1.0)
            raise ValueError("child failed")

        def waiter():
            child = sim.process(failer())
            slow = sim.timeout(10.0)
            try:
                yield sim.any_of([child, slow])
            except ValueError as exc:
                return f"caught: {exc}"

        proc = sim.process(waiter())
        sim.run_until_event(proc)
        assert proc.value == "caught: child failed"

    def test_all_of_failure_propagates(self):
        sim = Simulator()

        def failer():
            yield sim.timeout(1.0)
            raise KeyError("boom")

        def waiter():
            children = [sim.process(failer()), sim.timeout(0.5)]
            try:
                yield sim.all_of(children)
            except KeyError:
                return "caught"

        proc = sim.process(waiter())
        sim.run_until_event(proc)
        assert proc.value == "caught"


class TestRunUntilEvent:
    def test_limit_respected(self):
        sim = Simulator()

        def slow():
            yield sim.timeout(100.0)

        # Keep the queue alive so the drain check never triggers first.
        def heartbeat():
            for _ in range(1000):
                yield sim.timeout(0.5)

        sim.process(heartbeat())
        proc = sim.process(slow())
        with pytest.raises(RuntimeError, match="limit"):
            sim.run_until_event(proc, limit=10.0)

    def test_queue_drain_detected(self):
        sim = Simulator()
        never = sim.event()

        def waiter():
            yield never

        proc = sim.process(waiter())
        with pytest.raises(RuntimeError, match="drained"):
            sim.run_until_event(proc)

    def test_failed_event_reraises(self):
        sim = Simulator()

        def failer():
            yield sim.timeout(1.0)
            raise OSError("disk on fire")

        proc = sim.process(failer())
        proc.defused = True
        with pytest.raises(OSError, match="disk on fire"):
            sim.run_until_event(proc)


class TestInterruptEdgeCases:
    def test_interrupt_while_waiting_on_store(self):
        sim = Simulator()
        store = Store(sim)
        outcome = []

        def consumer():
            try:
                yield store.get()
            except Interrupt as exc:
                outcome.append(("interrupted", exc.cause))

        proc = sim.process(consumer())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt("shutdown")

        sim.process(interrupter())
        sim.run()
        assert outcome == [("interrupted", "shutdown")]

    def test_stale_event_after_interrupt_ignored(self):
        """The event a process was waiting on when interrupted may fire
        later; it must not resume the process a second time."""
        sim = Simulator()
        resumes = []

        def sleeper():
            try:
                yield sim.timeout(5.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
                yield sim.timeout(10.0)
                resumes.append("after")

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        assert resumes == ["interrupt", "after"]

    def test_interrupt_cause_none(self):
        sim = Simulator()
        seen = []

        def sleeper():
            try:
                yield sim.timeout(10.0)
            except Interrupt as exc:
                seen.append(exc.cause)

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(0.5)
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        assert seen == [None]


class TestStoreFairness:
    def test_getters_served_fifo(self):
        sim = Simulator()
        store = Store(sim)
        served = []

        def getter(name, delay):
            yield sim.timeout(delay)
            item = yield store.get()
            served.append((name, item))

        sim.process(getter("first", 0.1))
        sim.process(getter("second", 0.2))

        def producer():
            yield sim.timeout(1.0)
            yield store.put("a")
            yield store.put("b")

        sim.process(producer())
        sim.run()
        assert served == [("first", "a"), ("second", "b")]

    def test_putters_unblock_fifo(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        order = []

        def putter(name, delay):
            yield sim.timeout(delay)
            yield store.put(name)
            order.append(name)

        sim.process(putter("fill", 0.0))
        sim.process(putter("w1", 0.1))
        sim.process(putter("w2", 0.2))

        def consumer():
            yield sim.timeout(1.0)
            yield store.get()
            yield sim.timeout(1.0)
            yield store.get()

        sim.process(consumer())
        sim.run()
        assert order == ["fill", "w1", "w2"]


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def run_once():
            sim = Simulator()
            rng = SeededRng(17)
            log = []
            resource = Resource(sim, capacity=2)

            def worker(index):
                stream = rng.substream(f"w{index}")
                for _ in range(5):
                    yield sim.timeout(stream.uniform(0.1, 1.0))
                    yield resource.acquire()
                    yield sim.timeout(stream.uniform(0.01, 0.1))
                    log.append((round(sim.now, 9), index))
                    resource.release()

            for index in range(4):
                sim.process(worker(index))
            sim.run()
            return log

        assert run_once() == run_once()


class TestRunLoopEdgeCases:
    def test_run_until_now_is_a_noop_for_time(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run(until=1.0)
        assert sim.now == 1.0
        # Running "until now" must neither advance time nor fire the
        # future event scheduled beyond it.
        sim.timeout(5.0)
        sim.run(until=1.0)
        assert sim.now == 1.0
        assert sim.peek() == 6.0

    def test_run_until_now_fires_events_scheduled_at_now(self):
        sim = Simulator()
        fired = []
        event = sim.event()
        event.callbacks.append(lambda e: fired.append(e))
        event.succeed()
        sim.run(until=sim.now)
        assert fired == [event]

    def test_peek_on_empty_heap_is_infinite(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(2.5)
        assert sim.peek() == 2.5
        sim.run()
        assert sim.peek() == float("inf")

    def test_run_until_event_within_limit_returns_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker())
        assert sim.run_until_event(proc, limit=2.0) == "done"
        assert sim.now == 1.0

    def test_events_processed_counts_every_pop(self):
        sim = Simulator()
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.events_processed == 5

    def test_events_processed_accumulates_across_runs(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.timeout(3.0)
        sim.run(until=2.0)
        assert sim.events_processed == 1
        sim.run()
        assert sim.events_processed == 2

    def test_events_processed_counts_cascading_immediates(self):
        sim = Simulator()

        def ping_pong():
            for _ in range(3):
                yield sim.timeout(0.0)

        proc = sim.process(ping_pong())
        sim.run_until_event(proc)
        # bootstrap + three timeouts + the process completion event.
        assert sim.events_processed == 5

    def test_step_processes_single_event(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.step()
        assert sim.now == 1.0
        assert sim.events_processed == 1


class TestKernelFastPathGuards:
    """Pin behaviours the batched/cached fast paths could regress.

    ``run``/``run_until_event`` drain same-timestamp events in an inner
    batch loop, single-callback events take a cheaper dispatch branch,
    ``Process`` caches its resume callback as a bound method, and
    ``Store.put``/``get`` inline the immediate-success case. Each test
    here fails if one of those shortcuts changes observable behaviour.
    """

    def test_same_timestamp_cascade_drains_within_run_until(self):
        # Events that keep scheduling more work at the *same* timestamp
        # must all fire inside the batch-drain loop before time moves.
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append((sim.now, depth))
            if depth < 5:
                nxt = sim.event()
                nxt.callbacks.append(lambda _ev, d=depth + 1: chain(d))
                sim.schedule(nxt, 0.0)

        root = sim.event()
        root.callbacks.append(lambda _ev: chain(0))
        sim.schedule(root, 1.0)
        sim.run(until=1.0)
        assert [d for _, d in fired] == [0, 1, 2, 3, 4, 5]
        assert all(t == 1.0 for t, _ in fired)
        assert sim.now == 1.0

    def test_until_boundary_does_not_leak_later_events(self):
        # The batch drain compares timestamps, not "close enough":
        # events strictly after `until` stay queued.
        sim = Simulator()
        seen = []
        early = sim.event()
        early.callbacks.append(lambda _ev: seen.append("early"))
        late = sim.event()
        late.callbacks.append(lambda _ev: seen.append("late"))
        sim.schedule(early, 1.0)
        sim.schedule(late, 1.0 + 1e-9)
        sim.run(until=1.0)
        assert seen == ["early"]
        sim.run()
        assert seen == ["early", "late"]

    def test_multi_callback_event_fires_all_in_order(self):
        # The single-callback fast dispatch must not apply to (or drop)
        # the multi-callback case.
        sim = Simulator()
        seen = []
        event = sim.event()
        for tag in ("a", "b", "c"):
            event.callbacks.append(
                lambda _ev, tag=tag: seen.append(tag))
        sim.schedule(event, 0.5)
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_callback_added_during_dispatch_is_not_fired(self):
        # Dispatch snapshots the callback list (clear-then-call): a
        # callback appended while the event fires belongs to nobody.
        sim = Simulator()
        seen = []
        event = sim.event()

        def first(_ev):
            seen.append("first")
            event.callbacks.append(lambda _ev: seen.append("late"))

        event.callbacks.append(first)
        sim.schedule(event, 0.0)
        sim.run()
        assert seen == ["first"]

    def test_run_until_event_with_limit_triggers_exactly_at_limit(self):
        # The limit-set loop admits events at exactly t == limit.
        sim = Simulator()

        def worker():
            yield sim.timeout(10.0)
            return "done"

        proc = sim.process(worker())
        assert sim.run_until_event(proc, limit=10.0) == "done"
        assert sim.now == 10.0

    def test_interrupt_removes_cached_resume_callback(self):
        # Process caches its resume bound method; interrupt() must
        # detach exactly that callback from the waited-on event, so the
        # original wakeup never double-resumes the generator.
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(5.0)
                log.append("timeout fired")
            except Interrupt as exc:
                log.append(f"interrupted: {exc.cause}")
                yield sim.timeout(10.0)
                log.append("slept after interrupt")

        proc = sim.process(sleeper())

        def nemesis():
            yield sim.timeout(1.0)
            proc.interrupt("bump")

        sim.process(nemesis())
        sim.run()
        # The 5s timeout still fires at t=5 but must find no callback;
        # the process resumes only from its post-interrupt timeout.
        assert log == ["interrupted: bump", "slept after interrupt"]
        assert sim.now == 11.0

    def test_store_put_handoff_triggers_both_events(self):
        # Store.put inlines the getter-waiting branch; both the getter's
        # event and the put event must still fire, getter first.
        sim = Simulator()
        store = Store(sim)
        order = []

        def consumer():
            item = yield store.get()
            order.append(("got", item))

        def producer():
            yield sim.timeout(0.1)
            yield store.put("x")
            order.append(("put-ack", "x"))

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert order == [("got", "x"), ("put-ack", "x")]

    def test_store_get_from_buffer_admits_waiting_putter(self):
        # Store.get inlines the items-available branch; it must still
        # admit a capacity-blocked putter.
        sim = Simulator()
        store = Store(sim, capacity=1)
        order = []

        def producer():
            yield store.put("first")
            order.append("first in")
            yield store.put("second")
            order.append("second in")

        def consumer():
            yield sim.timeout(1.0)
            item = yield store.get()
            order.append(f"took {item}")

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert order == ["first in", "took first", "second in"]
