"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure9" in out
        assert "ycsb F" in out

    def test_experiment_registry_covers_all_figures(self):
        for name in ("table1", "figure1", "figure6", "figure7",
                     "figure8", "figure9"):
            assert name in EXPERIMENTS


class TestExperimentCommand:
    def test_quick_figure1(self, capsys, tmp_path):
        out_file = tmp_path / "fig1.txt"
        assert main(["experiment", "figure1", "--scale", "quick",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Impact of Clock Skew" in out
        assert out_file.exists()
        assert "reject rate" in out_file.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure42"])


class TestWorkloadCommands:
    def test_retwis_run(self, capsys):
        assert main(["retwis", "--clients", "2", "--keys", "100",
                     "--duration", "0.05", "--backend", "dram",
                     "--replicas", "1"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "latency p99" in out

    def test_retwis_without_local_validation(self, capsys):
        assert main(["retwis", "--clients", "2", "--keys", "100",
                     "--duration", "0.05", "--backend", "dram",
                     "--replicas", "1", "--no-local-validation"]) == 0

    def test_ycsb_run(self, capsys):
        assert main(["ycsb", "--workload", "C", "--clients", "2",
                     "--keys", "100", "--duration", "0.05",
                     "--backend", "dram", "--replicas", "1"]) == 0
        out = capsys.readouterr().out
        assert "YCSB-C" in out
        assert "ops/s" in out

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["retwis", "--backend", "tape"])
